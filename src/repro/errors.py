"""Structured failure taxonomy for the co-designed VM.

VEAL's virtualised contract is that acceleration may *never* change
program semantics: any loop the system cannot translate, admit, or
execute correctly must keep running on the baseline core (Section 4.1's
schedulability check is the first such guard).  Every component that can
refuse or mis-execute a loop therefore reports through this hierarchy so
the runtime can react mechanically — fall back to scalar, blacklist,
deoptimize — instead of pattern-matching ad-hoc strings.

The taxonomy has two trunks:

* :class:`TranslationError` — the translator could not produce a kernel
  image (structural, resource, scheduling, register or budget reasons).
  These are *expected* outcomes; :func:`~repro.vm.translator.translate_loop`
  converts them into a failed :class:`~repro.vm.translator.TranslationResult`
  rather than raising to callers.
* :class:`ExecutionError` — a translated kernel misbehaved at run time
  (a structural invariant tripped, or the differential guard observed a
  semantic divergence).  These trigger deoptimization in the guarded
  runtime (:mod:`repro.vm.guard`).
* :class:`InfrastructureError` — the *experiment infrastructure* (the
  on-disk translation cache, the worker pool) misbehaved.  These never
  change a result: the resilience layer (:mod:`repro.resilience`)
  quarantines, retries or degrades to the serial/rebuild path, and
  records an incident under the same ``kind`` taxonomy so guard deopts
  and infrastructure faults share one observability surface.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class of every structured failure in the reproduction.

    ``kind`` is a stable, machine-readable tag (the blacklist and the
    campaign reports aggregate on it); ``details`` carries arbitrary
    structured context for diagnostics.
    """

    kind: str = "error"

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details = details

    def __str__(self) -> str:
        return self.message

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` which drops
        # every keyword attribute (loop_name, details, ...); carry the
        # full instance dict so cached failures survive a disk
        # round-trip intact.
        return (self.__class__, (self.message,), self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


# -- translation-time failures ------------------------------------------------

class TranslationError(ReproError):
    """The translator could not produce a kernel image for a loop."""

    kind = "translation"

    def __init__(self, message: str, loop_name: Optional[str] = None,
                 **details: Any) -> None:
        super().__init__(message, **details)
        self.loop_name = loop_name


class SchedulabilityError(TranslationError):
    """The loop's structure disqualifies it (Figure 2 categories)."""

    kind = "schedulability"

    def __init__(self, message: str, category: Optional[str] = None,
                 reasons: Optional[list[str]] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.category = category
        self.reasons = list(reasons or [])


class StreamLimitError(TranslationError):
    """More load/store streams than the accelerator provides."""

    kind = "stream-limit"

    def __init__(self, message: str, stream_kind: str = "",
                 required: int = 0, available: int = 0, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.stream_kind = stream_kind
        self.required = required
        self.available = available


class ResourceClassError(TranslationError):
    """The loop needs a function-unit class the accelerator lacks."""

    kind = "resource-class"

    def __init__(self, message: str, resource: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.resource = resource


class SchedulingError(TranslationError):
    """Modulo scheduling failed at every II up to the maximum.

    ``schedule_failure`` is the scheduler's
    :class:`~repro.scheduler.sms.ScheduleFailure`, carrying per-attempt
    diagnostics (which resource or recurrence blocked each II) for the
    blacklist and the CLI.
    """

    kind = "scheduling"

    def __init__(self, message: str, schedule_failure: Any = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.schedule_failure = schedule_failure


class RegisterPressureError(TranslationError):
    """Register demand exceeds the accelerator's register files."""

    kind = "register-pressure"

    def __init__(self, message: str, int_required: int = 0,
                 fp_required: int = 0, int_available: int = 0,
                 fp_available: int = 0, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.int_required = int_required
        self.fp_required = fp_required
        self.int_available = int_available
        self.fp_available = fp_available


class TranslationBudgetExceeded(TranslationError):
    """Translation work passed the configured budget and was aborted.

    A pathological loop (SMS backtracking blow-up, enormous bodies) must
    abort cleanly and fall back to scalar rather than hang a sweep; the
    :class:`~repro.vm.costmodel.TranslationMeter` raises this as soon as
    its charged work units pass ``budget_units``.
    """

    kind = "budget"

    def __init__(self, message: str, budget_units: int = 0,
                 spent_units: int = 0, phase: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.budget_units = budget_units
        self.spent_units = spent_units
        self.phase = phase


# -- run-time failures --------------------------------------------------------

class ExecutionError(ReproError):
    """A translated kernel misbehaved during execution."""

    kind = "execution"


class AcceleratorFault(ExecutionError, RuntimeError):
    """Execution violated a structural invariant of the machine model.

    (Address generator disagreement, FIFO misuse, a value read before
    its producer ran.)  Subclasses ``RuntimeError`` for backward
    compatibility with the original definition in
    :mod:`repro.accelerator.machine`.
    """

    kind = "accelerator-fault"


class GuardViolation(ExecutionError):
    """The differential guard observed a semantic divergence.

    Raised (or recorded) when a checked execution's live-outs or touched
    memory differ from the scalar reference — the signal that drives
    deoptimization.
    """

    kind = "guard-violation"

    def __init__(self, message: str, loop_name: Optional[str] = None,
                 mismatches: Optional[list] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.loop_name = loop_name
        self.mismatches = list(mismatches or [])


# -- configuration failures ---------------------------------------------------

class SettingsError(ReproError):
    """A configuration value (env var or explicit override) is invalid.

    Raised by :meth:`repro.api.Settings.from_env` so a mistyped
    ``REPRO_JOBS=banana`` fails loudly at startup with the offending
    variable named, instead of silently defaulting — the same posture
    :class:`CacheConfigError` takes for an unusable cache directory.
    """

    kind = "settings"

    def __init__(self, message: str, name: Optional[str] = None,
                 value: Optional[str] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.name = name
        self.value = value


# -- service failures ---------------------------------------------------------

class ServiceError(ReproError):
    """The loop-acceleration service could not process a request."""

    kind = "service"


class ServiceClosed(ServiceError):
    """A request arrived after the service stopped accepting work."""

    kind = "service-closed"


class ServiceOverload(ServiceError):
    """Admission control rejected a request (backpressure).

    Raised at submission time when the bounded request queue is full —
    the typed signal a client uses to back off and retry.  Every
    rejection is also an incident record, so overload shows up on the
    same observability surface as cache corruption and worker losses.
    """

    kind = "service-overload"

    def __init__(self, message: str, session: Optional[str] = None,
                 queue_depth: Optional[int] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.session = session
        self.queue_depth = queue_depth


class AdmissionRejected(ServiceOverload):
    """Admission control refused a request, with a retry hint.

    Replaces blanket queue-full shedding: the decision tag says *why*
    (``queue-full``, ``throttled``, ``shed-low-priority``,
    ``saturated``) and ``retry_after`` tells a well-behaved client how
    long to back off before resubmitting.  Subclasses
    :class:`ServiceOverload` so existing backpressure handlers keep
    working; the matching incident record carries the same queue
    depth / session / decision triple for post-hoc diagnosis.
    """

    kind = "admission-rejected"

    def __init__(self, message: str, decision: str = "queue-full",
                 retry_after: float = 0.0, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.decision = decision
        self.retry_after = retry_after


class SessionBudgetExceeded(ServiceOverload):
    """A session spent its translation-work budget; request rejected.

    Per-session admission control: translation work units (the
    :class:`~repro.vm.costmodel.TranslationMeter` accounting) are
    charged against the session's budget as results complete, and a
    session past its budget is refused further work instead of starving
    its neighbours.
    """

    kind = "session-budget"

    def __init__(self, message: str, budget_units: int = 0,
                 spent_units: int = 0, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.budget_units = budget_units
        self.spent_units = spent_units


# -- network transport failures -----------------------------------------------

class TransportError(ServiceError):
    """The network transport to/from the service failed.

    Connection refused/reset, a read or connect deadline expired, or
    the retry budget ran out.  Transport failures say nothing about
    the *request*: thanks to single-flight dedup keyed on the
    content-addressed transcache digest, resubmitting an identical
    request is always safe (exactly-once translation), which is what
    lets :class:`~repro.service.client.LoopClient` retry these
    mechanically.
    """

    kind = "transport"

    def __init__(self, message: str, op: Optional[str] = None,
                 attempts: int = 0, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.op = op
        self.attempts = attempts


class ProtocolError(TransportError):
    """A wire frame violated the framed/checksummed protocol.

    ``reason`` is a stable sub-tag mirroring the disk-cache integrity
    taxonomy: ``bad-magic``, ``version-mismatch``, ``truncated``,
    ``checksum-mismatch``, ``empty-payload``, ``oversize`` or
    ``bad-json``.  A protocol error means the stream can no longer be
    trusted to be frame-aligned, so both sides respond by closing the
    connection; the retrying client then reconnects cleanly.
    """

    kind = "protocol"

    def __init__(self, message: str, reason: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.reason = reason


class ShardMovedError(ServiceError):
    """The contacted shard does not own the request's digest.

    A cluster shard checks every keyed request against its copy of the
    shard map (rendezvous hashing over live shards) and redirects work
    it does not own instead of serving it — otherwise two shards could
    translate the same digest and the exactly-once accounting would
    lie.  The error carries the owner's coordinates and the redirecting
    shard's current map, so one round trip both redirects the request
    and refreshes a stale client.  Not a transport failure: the
    connection stays healthy and the breaker records a success.
    """

    kind = "shard-moved"

    def __init__(self, message: str, shard_id: Optional[int] = None,
                 owner_id: Optional[int] = None,
                 owner_host: Optional[str] = None,
                 owner_port: Optional[int] = None,
                 shard_map: Optional[dict] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.shard_id = shard_id
        self.owner_id = owner_id
        self.owner_host = owner_host
        self.owner_port = owner_port
        self.shard_map = shard_map


class CircuitOpenError(TransportError):
    """The client's circuit breaker is open; the call failed fast.

    After ``breaker_threshold`` consecutive transport failures the
    client stops hammering a dead or struggling server and fails
    immediately until the cooldown elapses (then one half-open probe
    is allowed through).
    """

    kind = "circuit-open"


# -- infrastructure failures --------------------------------------------------

class InfrastructureError(ReproError):
    """The experiment infrastructure (cache, worker pool) misbehaved.

    Unlike translation/execution failures these say nothing about the
    *workload*: the resilience layer recovers (quarantine + rebuild,
    retry + serial fallback) and results stay bit-identical.  They are
    raised to callers only when recovery itself is impossible (a task
    that fails deterministically, an explicitly configured cache
    directory that cannot be used).
    """

    kind = "infrastructure"


class CacheIntegrityError(InfrastructureError):
    """An on-disk cache entry failed its integrity checks.

    ``reason`` is a stable sub-tag: ``bad-magic``, ``version-mismatch``,
    ``truncated``, ``checksum-mismatch``, ``unpickle`` or
    ``wrong-type``.  The cache never lets this escape a lookup — the
    entry is quarantined and the lookup degrades to a miss — but the
    typed form is what the quarantine step records in the incident log.
    """

    kind = "cache-corruption"

    def __init__(self, message: str, path: Optional[str] = None,
                 reason: Optional[str] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.path = path
        self.reason = reason


class CacheConfigError(InfrastructureError):
    """An explicitly configured cache location is unusable.

    Raised at attach time when ``REPRO_CACHE_DIR`` (or an explicit
    ``attach_disk(path, strict=True)``) points somewhere that cannot be
    created or written — a loud early error beats silently degrading a
    location the user asked for by name.
    """

    kind = "cache-config"

    def __init__(self, message: str, path: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.path = path


class ArtifactError(InfrastructureError):
    """An explicitly named AOT artifact cannot be used at all.

    Raised only when the artifact was configured by name
    (``REPRO_ARTIFACT`` / ``serve --artifact`` / ``aot build -o``) and
    the file is missing or its directory unwritable — a loud early
    error, like :class:`CacheConfigError`.  A *corrupt* or
    version-stale artifact is never this: it is quarantined with an
    incident record and the run transparently falls back to dynamic
    translation.
    """

    kind = "artifact"

    def __init__(self, message: str, path: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(message, **kw)
        self.path = path


class WorkerTaskError(InfrastructureError):
    """A sweep task raised inside a worker (or on the serial path).

    Deterministic task failures are not retried — the same inputs would
    fail again — so the original exception is re-raised in this typed
    form with the originating item attached (``item_index`` into the
    fan-out batch plus the caller's human-readable ``point`` label,
    e.g. ``"fig3a:IEx (1 CCA)[x=8]"``).  The original exception rides
    on ``__cause__``.
    """

    kind = "worker-task"

    def __init__(self, message: str, item_index: Optional[int] = None,
                 point: Optional[str] = None, **kw: Any) -> None:
        super().__init__(message, **kw)
        self.item_index = item_index
        self.point = point


class WorkerLostError(InfrastructureError):
    """A worker process died (crash, OOM kill, signal) mid-task.

    Recorded per loss; raised only if the bounded retry budget and the
    serial fallback both fail, which indicates the parent process
    itself is unhealthy.
    """

    kind = "worker-lost"


class WorkerStallError(InfrastructureError):
    """The pool made no progress for longer than the stall deadline."""

    kind = "worker-timeout"


__all__ = [
    "AcceleratorFault",
    "AdmissionRejected",
    "ArtifactError",
    "CacheConfigError",
    "CacheIntegrityError",
    "CircuitOpenError",
    "ExecutionError",
    "GuardViolation",
    "InfrastructureError",
    "ProtocolError",
    "RegisterPressureError",
    "ReproError",
    "ResourceClassError",
    "SchedulabilityError",
    "SchedulingError",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverload",
    "SessionBudgetExceeded",
    "SettingsError",
    "ShardMovedError",
    "StreamLimitError",
    "TranslationBudgetExceeded",
    "TranslationError",
    "TransportError",
    "WorkerLostError",
    "WorkerStallError",
    "WorkerTaskError",
]

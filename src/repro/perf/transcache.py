"""Content-addressed cache of translation products.

Keys are digests of (loop DFG structure, the *schedule-relevant
projection* of the :class:`~repro.accelerator.config.LAConfig`, and the
:class:`~repro.vm.translator.TranslationOptions`); values are
:class:`CoreEntry` records holding everything the translation pipeline
produced *before* the register-capacity check (see
``repro.vm.translator`` for why capacities are factored out of the key:
register files only gate the final ``fits`` comparison, so one cached
schedule serves every point of a register sweep).

Two layers:

* in-memory dict — shared by every ``VirtualMachine`` in the process
  (and, via fork, by parallel sweep workers);
* optional on-disk files under ``benchmarks/results/.cache/`` (or
  ``REPRO_CACHE_DIR``) — shared across processes and CLI invocations.

The disk layer treats its own files as untrusted (DESIGN.md, "Failure
model & recovery"): every entry is framed with a format version and a
sha256 checksum (:mod:`repro.resilience.integrity`), written via
atomic temp-file+rename, and any entry that fails validation — torn,
truncated, bit-rotted, or written by an older format — is *quarantined*
(moved aside with an incident record) and the lookup degrades to a
miss, so the entry is transparently rebuilt.  Disk I/O failures are
never fatal; the cache degrades to memory-only and records the
incident.  The one loud failure is an explicitly configured
``REPRO_CACHE_DIR`` that cannot be used, which raises
:class:`~repro.errors.CacheConfigError` at attach time.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro import obs
from repro.errors import CacheConfigError, CacheIntegrityError

DEFAULT_DISK_DIR = os.path.join("benchmarks", "results", ".cache")

#: Environment override for the disk layer's location, validated
#: strictly at attach time (a mistyped path the user asked for by name
#: must fail loudly, not silently degrade).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Disk-layer size budget in bytes (``REPRO_CACHE_BUDGET`` overrides).
DEFAULT_GC_BUDGET = 256 * 1024 * 1024
CACHE_BUDGET_ENV = "REPRO_CACHE_BUDGET"

#: The version-stamp file the GC sweep keys on.  Digests bake
#: ``DIGEST_VERSION`` into the *pre-hash*, so a filename cannot reveal
#: which version wrote it — without this stamp, entries stranded by a
#: version bump (``veal-perf-1`` -> ``veal-perf-2``) are
#: indistinguishable from live ones and accumulate as dead files
#: forever.
STAMP_NAME = "digest.version"

_gc_budget_override: Optional[int] = None


def set_gc_budget(budget: Optional[int]) -> None:
    """Process-wide disk-budget override (None restores env/default)."""
    global _gc_budget_override
    _gc_budget_override = None if budget is None else max(0, int(budget))


def effective_gc_budget() -> int:
    if _gc_budget_override is not None:
        return _gc_budget_override
    raw = os.environ.get(CACHE_BUDGET_ENV)
    if raw:
        # Permissive like REPRO_JOBS: Settings.from_env rejects loudly.
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_GC_BUDGET


def default_disk_dir() -> str:
    """The disk layer's default location (``REPRO_CACHE_DIR`` wins)."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_DISK_DIR


def gc_disk_dir(path: str, budget: Optional[int] = None) -> dict:
    """Version-stale + size-budget sweep of one cache directory.

    Two passes, both counted in ``cache.gc.*`` metrics and summarised
    in the returned dict:

    * **stale** — when the directory's :data:`STAMP_NAME` stamp names
      a different ``DIGEST_VERSION`` than this process, every entry is
      unreachable dead weight (keys embed the version pre-hash) and is
      removed; the stamp is then rewritten.  A missing stamp (a
      pre-GC-era directory) is adopted as-is: the stamp is written and
      only the size budget applies.
    * **evicted** — remaining entries beyond *budget* bytes are removed
      oldest-``mtime``-first.

    ``quarantine/`` is never touched (quarantined entries are
    diagnostic evidence), and ``.tmp`` orphans are left for the chaos
    campaign's crash-evidence scan.  I/O failures degrade silently —
    GC is best-effort hygiene, never a correctness dependency.
    """
    from repro.perf.digest import DIGEST_VERSION
    from repro.resilience import integrity
    if budget is None:
        budget = effective_gc_budget()
    summary = {"dir": path, "stale": 0, "evicted": 0, "bytes_freed": 0,
               "kept": 0, "kept_bytes": 0, "budget_bytes": budget}
    try:
        names = os.listdir(path)
    except OSError:
        return summary
    stamp_path = os.path.join(path, STAMP_NAME)
    try:
        with open(stamp_path, "r") as handle:
            stamped: Optional[str] = handle.read().strip()
    except OSError:
        stamped = None
    entries = []
    for name in names:
        if not name.endswith(".pkl"):
            continue  # quarantine/, .tmp orphans, the stamp: all kept
        full = os.path.join(path, name)
        try:
            status = os.stat(full)
        except OSError:
            continue
        entries.append((status.st_mtime, status.st_size, full))
    if stamped is not None and stamped != DIGEST_VERSION:
        for _mtime, size, full in entries:
            try:
                os.unlink(full)
            except OSError:
                continue
            summary["stale"] += 1
            summary["bytes_freed"] += size
        entries = []
    if stamped != DIGEST_VERSION:
        try:
            integrity.write_atomic(
                stamp_path, (DIGEST_VERSION + "\n").encode("utf-8"),
                fsync=False)
        except OSError:
            pass
    entries.sort()  # oldest mtime first: evict the coldest entries
    total = sum(size for _mtime, size, _full in entries)
    while entries and total > budget:
        _mtime, size, full = entries.pop(0)
        try:
            os.unlink(full)
        except OSError:
            continue
        total -= size
        summary["evicted"] += 1
        summary["bytes_freed"] += size
    summary["kept"] = len(entries)
    summary["kept_bytes"] = total
    if summary["stale"]:
        obs.inc("cache.gc.stale", summary["stale"])
    if summary["evicted"]:
        obs.inc("cache.gc.evicted", summary["evicted"])
    if summary["bytes_freed"]:
        obs.inc("cache.gc.bytes_freed", summary["bytes_freed"])
    if summary["stale"] or summary["evicted"]:
        from repro.resilience.incidents import record_incident
        record_incident(
            "cache-gc", "transcache",
            f"disk cache sweep of {path}: {summary['stale']} "
            f"version-stale + {summary['evicted']} over-budget "
            f"entries removed ({summary['bytes_freed']} bytes)",
            **{k: v for k, v in summary.items() if k != "dir"},
            path=path)
    return summary


def validate_cache_dir(path: str) -> None:
    """Prove *path* is a usable cache directory or raise
    :class:`CacheConfigError` with a clear, actionable message."""
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        raise CacheConfigError(
            f"cache directory {path!r} cannot be created: {exc}",
            path=path) from exc
    if not os.path.isdir(path):
        raise CacheConfigError(
            f"cache path {path!r} exists but is not a directory",
            path=path)
    try:
        fd, probe = tempfile.mkstemp(dir=path, suffix=".probe")
        os.close(fd)
        os.unlink(probe)
    except OSError as exc:
        raise CacheConfigError(
            f"cache directory {path!r} is not writable: {exc}",
            path=path) from exc


@dataclass
class MeterSnapshot:
    """Immutable copy of a TranslationMeter's charge state."""

    units: dict[str, int]
    total: int

    @staticmethod
    def of(meter) -> "MeterSnapshot":
        return MeterSnapshot(units=dict(meter.units),
                             total=meter.total_units())

    def restore(self):
        """A fresh TranslationMeter carrying these charges."""
        from repro.vm.costmodel import TranslationMeter
        meter = TranslationMeter()
        meter.units = dict(self.units)
        meter._total = self.total
        return meter


@dataclass
class CoreEntry:
    """One cached capacity-independent translation outcome.

    Exactly one of (``image``, ``failure``) is set... with one
    exception: a translation-budget failure *after* register
    requirements were computed keeps ``requirements`` populated so the
    finalisation step can reproduce the reference pipeline's
    check order (capacity check before the rotation charge).
    """

    loop_name: str
    #: Register demand, present when the pipeline reached regalloc.
    requirements: Optional[object] = None
    #: Meter state just after requirements (before rotation charges) —
    #: what a capacity failure reports.
    meter_at_requirements: Optional[MeterSnapshot] = None
    #: Successful kernel image (its ``config`` is rebound per caller).
    image: Optional[object] = None
    #: Typed terminal failure raised before/independent of capacities.
    failure: Optional[Exception] = None
    #: True when the failure came from the modulo scheduler exhausting
    #: the (possibly clamped) II search — the one outcome that must be
    #: re-derived exactly when the true max II is larger than the clamp.
    ii_exhausted: bool = False
    meter_final: MeterSnapshot = field(
        default_factory=lambda: MeterSnapshot({}, 0))


@dataclass
class TransCacheStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    invalidations: int = 0
    #: Times a clamped-key failure forced an exact-key retranslation.
    exact_fallbacks: int = 0
    #: Corrupt/stale disk entries moved aside (each is an incident).
    quarantined: int = 0
    #: Disk I/O failures survived by degrading (each is an incident).
    disk_errors: int = 0

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0


class TranslationCache:
    """Memory + optional-disk store of :class:`CoreEntry` by digest."""

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._entries: dict[str, CoreEntry] = {}
        self.disk_dir: Optional[str] = None
        self.stats = TransCacheStats()
        #: Last-resort lookup layer: a callable ``key -> CoreEntry | None``
        #: that asks the fleet's artifact registry (a designated peer
        #: shard) before this process pays a cold translation.  Installed
        #: by the service when a registry address is configured.
        self._fetcher: Optional[Callable[[str], Optional[CoreEntry]]] = None
        self._fetching = False
        #: Keys seeded from an AOT artifact, so hits on them can be
        #: attributed (``aot.artifact_hits``) separately from entries
        #: this process translated or pulled from disk.
        self._artifact_keys: set[str] = set()
        if disk_dir is not None:
            self.attach_disk(disk_dir)

    # -- disk layer --------------------------------------------------------

    def attach_disk(self, path: Optional[str] = None,
                    strict: Optional[bool] = None) -> str:
        """Attach the on-disk layer.

        With no *path*, the location comes from ``REPRO_CACHE_DIR`` or
        the default; an env-provided location is validated strictly
        (the user named it — a typo must raise
        :class:`~repro.errors.CacheConfigError`, not silently degrade).
        Pass ``strict=True`` to get the same loud validation for an
        explicit *path*.
        """
        if strict is None:
            strict = path is None and bool(os.environ.get(CACHE_DIR_ENV))
        self.disk_dir = path or default_disk_dir()
        try:
            validate_cache_dir(self.disk_dir)
        except CacheConfigError:
            if strict:
                self.disk_dir = None
                raise
            self.disk_dir = None
        if self.disk_dir is not None:
            # Lifecycle sweep at attach: drop entries stranded by a
            # DIGEST_VERSION bump and enforce the size budget.
            gc_disk_dir(self.disk_dir)
        return self.disk_dir or ""

    def detach_disk(self) -> None:
        self.disk_dir = None

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _io_incident(self, op: str, path: str, exc: Exception) -> None:
        from repro.resilience.incidents import record_incident
        self.stats.disk_errors += 1
        record_incident(
            "io-error", "transcache",
            f"disk {op} failed, degrading to memory-only for this "
            f"entry: {exc}", op=op, path=path,
            error=f"{type(exc).__name__}: {exc}")

    def _quarantine(self, path: str, reason: str, detail: str
                    ) -> None:
        from repro.resilience import integrity
        from repro.resilience.incidents import record_incident
        moved = integrity.quarantine(path, reason)
        self.stats.quarantined += 1
        record_incident(
            "cache-corruption", "transcache",
            f"quarantined cache entry ({reason}): {detail}",
            path=path, reason=reason, quarantined_to=moved)

    def _disk_load(self, key: str) -> Optional[CoreEntry]:
        """Load + validate one entry; any failure is a miss, never an
        exception — corruption is quarantined, I/O errors recorded."""
        if self.disk_dir is None:
            return None
        from repro.faults import infra
        from repro.resilience import integrity
        path = self._disk_path(key)
        try:
            infra.check_io("load", path)
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None  # a plain miss, not an incident
        except OSError as exc:
            self._io_incident("load", path, exc)
            return None
        try:
            payload = integrity.unframe(blob, path=path)
        except CacheIntegrityError as exc:
            self._quarantine(path, exc.reason or "invalid", exc.message)
            return None
        try:
            entry = pickle.loads(payload)
        except (pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError) as exc:
            # Checksum-valid bytes that no longer unpickle: written by
            # an incompatible code revision under the same format
            # version — stale, not torn, but quarantined all the same.
            self._quarantine(path, "unpickle",
                             f"{type(exc).__name__}: {exc}")
            return None
        if not isinstance(entry, CoreEntry):
            self._quarantine(path, "wrong-type",
                             f"payload is {type(entry).__name__}")
            return None
        return entry

    def _disk_store(self, key: str, entry: CoreEntry) -> None:
        if self.disk_dir is None:
            return
        from repro.faults import infra
        from repro.resilience import integrity
        path = self._disk_path(key)
        try:
            payload = pickle.dumps(entry,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError) as exc:
            self._io_incident("store", path, exc)
            return
        try:
            infra.check_io("store", path)
            integrity.write_atomic(path, integrity.frame(payload))
        except OSError as exc:
            self._io_incident("store", path, exc)

    # -- artifact / registry layers ----------------------------------------

    def adopt_artifact(self, entries: Mapping[str, CoreEntry]) -> int:
        """Seed AOT-artifact entries, statistics-untouched.

        First-writer-wins like :meth:`seed` — an entry this process
        already translated is authoritative over the artifact's copy
        (they are byte-identical by construction, but the live one has
        already been handed out).  Returns the number adopted.
        """
        adopted = 0
        for key, entry in entries.items():
            if key not in self._entries:
                self._entries[key] = entry
                self._artifact_keys.add(key)
                adopted += 1
        obs.set_gauge("aot.artifact_entries", len(self._artifact_keys))
        return adopted

    def set_fetcher(self, fetcher: Optional[Callable[[str],
                    Optional[CoreEntry]]]
                    ) -> Optional[Callable[[str], Optional[CoreEntry]]]:
        """Install (or clear) the registry fetcher; returns the old one."""
        previous = self._fetcher
        self._fetcher = fetcher
        return previous

    def _remote_fetch(self, key: str) -> Optional[CoreEntry]:
        """Ask the registry for *key*; never raises, never recurses.

        The reentrancy guard matters because the fetcher's transport
        may itself translate (e.g. building a request that consults
        this cache): a nested lookup degrades to a local miss rather
        than deadlocking or looping.
        """
        if self._fetcher is None or self._fetching:
            return None
        self._fetching = True
        try:
            entry = self._fetcher(key)
        except Exception:
            # The fetcher is expected to catch its own transport
            # errors; this backstop keeps a buggy fetcher from turning
            # a cache miss into a run failure.
            obs.inc("aot.registry_errors")
            return None
        finally:
            self._fetching = False
        if entry is None:
            obs.inc("aot.registry_misses")
            return None
        if not isinstance(entry, CoreEntry):
            obs.inc("aot.registry_errors")
            return None
        obs.inc("aot.registry_hits")
        return entry

    def fetch_remote(self, key: str) -> bool:
        """Stats-neutral registry prefetch (admission-hint path).

        Pulls *key* into memory if the registry has it; hit/miss
        counters stay untouched so prefetching cannot skew the
        figure-facing cache statistics.
        """
        if key in self._entries:
            return True
        if self.peek(key) is not None:
            return True
        entry = self._remote_fetch(key)
        if entry is None:
            return False
        self._entries[key] = entry
        return True

    # -- lookup/insert -----------------------------------------------------

    def get(self, key: str) -> Optional[CoreEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            obs.inc("transcache.hits")
            if key in self._artifact_keys:
                obs.inc("aot.artifact_hits")
            return entry
        entry = self._disk_load(key)
        if entry is not None:
            self._entries[key] = entry
            self.stats.hits += 1
            self.stats.disk_hits += 1
            obs.inc("transcache.hits")
            obs.inc("transcache.disk_hits")
            return entry
        entry = self._remote_fetch(key)
        if entry is not None:
            # A registry pull is a hit for exactly-once accounting —
            # some fleet member paid the core run; this process must
            # not pay it again.
            self._entries[key] = entry
            self.stats.hits += 1
            obs.inc("transcache.hits")
            return entry
        self.stats.misses += 1
        obs.inc("transcache.misses")
        return None

    def peek(self, key: str) -> Optional[CoreEntry]:
        """Lookup that leaves the hit/miss statistics untouched.

        Used for secondary probes (the max-II canonical alias), where
        the primary key already recorded the access; disk entries are
        still promoted into memory.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = self._disk_load(key)
            if entry is not None:
                self._entries[key] = entry
        return entry

    def put(self, key: str, entry: CoreEntry) -> None:
        self._entries[key] = entry
        self.stats.stores += 1
        obs.inc("transcache.stores")
        self._disk_store(key, entry)

    def seed(self, key: str, entry: CoreEntry) -> None:
        """Adopt a worker-computed entry, statistics-untouched.

        The service's process pool translates in children and ships the
        new ``(key, entry)`` pairs home; folding them in must not count
        as stores (the worker already reported its counter delta) and
        must not overwrite — the parent may have raced to the same
        digest, and first-writer-wins keeps the two copies identical.
        """
        self._entries.setdefault(key, entry)

    def invalidate(self, key: str) -> bool:
        """Deoptimisation support: drop one translation everywhere."""
        found = self._entries.pop(key, None) is not None
        self._artifact_keys.discard(key)
        if self.disk_dir is not None:
            try:
                os.unlink(self._disk_path(key))
                found = True
            except OSError:
                pass
        if found:
            self.stats.invalidations += 1
            obs.inc("transcache.invalidations")
        return found

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left in place).

        The registry fetcher survives — ``perf.clear_caches`` resets
        entries between cold runs, and a service worker must keep its
        registry link across those resets.
        """
        self._entries.clear()
        self._artifact_keys.clear()
        self.stats = TransCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

"""Content-addressed cache of translation products.

Keys are digests of (loop DFG structure, the *schedule-relevant
projection* of the :class:`~repro.accelerator.config.LAConfig`, and the
:class:`~repro.vm.translator.TranslationOptions`); values are
:class:`CoreEntry` records holding everything the translation pipeline
produced *before* the register-capacity check (see
``repro.vm.translator`` for why capacities are factored out of the key:
register files only gate the final ``fits`` comparison, so one cached
schedule serves every point of a register sweep).

Two layers:

* in-memory dict — shared by every ``VirtualMachine`` in the process
  (and, via fork, by parallel sweep workers);
* optional on-disk pickle files under ``benchmarks/results/.cache/`` —
  shared across processes and CLI invocations.  Disk I/O failures are
  never fatal; the cache silently degrades to memory-only.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Optional

DEFAULT_DISK_DIR = os.path.join("benchmarks", "results", ".cache")


@dataclass
class MeterSnapshot:
    """Immutable copy of a TranslationMeter's charge state."""

    units: dict[str, int]
    total: int

    @staticmethod
    def of(meter) -> "MeterSnapshot":
        return MeterSnapshot(units=dict(meter.units),
                             total=meter.total_units())

    def restore(self):
        """A fresh TranslationMeter carrying these charges."""
        from repro.vm.costmodel import TranslationMeter
        meter = TranslationMeter()
        meter.units = dict(self.units)
        meter._total = self.total
        return meter


@dataclass
class CoreEntry:
    """One cached capacity-independent translation outcome.

    Exactly one of (``image``, ``failure``) is set... with one
    exception: a translation-budget failure *after* register
    requirements were computed keeps ``requirements`` populated so the
    finalisation step can reproduce the reference pipeline's
    check order (capacity check before the rotation charge).
    """

    loop_name: str
    #: Register demand, present when the pipeline reached regalloc.
    requirements: Optional[object] = None
    #: Meter state just after requirements (before rotation charges) —
    #: what a capacity failure reports.
    meter_at_requirements: Optional[MeterSnapshot] = None
    #: Successful kernel image (its ``config`` is rebound per caller).
    image: Optional[object] = None
    #: Typed terminal failure raised before/independent of capacities.
    failure: Optional[Exception] = None
    #: True when the failure came from the modulo scheduler exhausting
    #: the (possibly clamped) II search — the one outcome that must be
    #: re-derived exactly when the true max II is larger than the clamp.
    ii_exhausted: bool = False
    meter_final: MeterSnapshot = field(
        default_factory=lambda: MeterSnapshot({}, 0))


@dataclass
class TransCacheStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    invalidations: int = 0
    #: Times a clamped-key failure forced an exact-key retranslation.
    exact_fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0


class TranslationCache:
    """Memory + optional-disk store of :class:`CoreEntry` by digest."""

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._entries: dict[str, CoreEntry] = {}
        self.disk_dir: Optional[str] = None
        self.stats = TransCacheStats()
        if disk_dir is not None:
            self.attach_disk(disk_dir)

    # -- disk layer --------------------------------------------------------

    def attach_disk(self, path: Optional[str] = None) -> str:
        self.disk_dir = path or DEFAULT_DISK_DIR
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
        except OSError:
            self.disk_dir = None
        return self.disk_dir or ""

    def detach_disk(self) -> None:
        self.disk_dir = None

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _disk_load(self, key: str) -> Optional[CoreEntry]:
        if self.disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return entry if isinstance(entry, CoreEntry) else None

    def _disk_store(self, key: str, entry: CoreEntry) -> None:
        if self.disk_dir is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._disk_path(key))  # atomic vs readers
        except (OSError, pickle.PickleError, TypeError):
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- lookup/insert -----------------------------------------------------

    def get(self, key: str) -> Optional[CoreEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        entry = self._disk_load(key)
        if entry is not None:
            self._entries[key] = entry
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return entry
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> Optional[CoreEntry]:
        """Lookup that leaves the hit/miss statistics untouched.

        Used for secondary probes (the max-II canonical alias), where
        the primary key already recorded the access; disk entries are
        still promoted into memory.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = self._disk_load(key)
            if entry is not None:
                self._entries[key] = entry
        return entry

    def put(self, key: str, entry: CoreEntry) -> None:
        self._entries[key] = entry
        self.stats.stores += 1
        self._disk_store(key, entry)

    def invalidate(self, key: str) -> bool:
        """Deoptimisation support: drop one translation everywhere."""
        found = self._entries.pop(key, None) is not None
        if self.disk_dir is not None:
            try:
                os.unlink(self._disk_path(key))
                found = True
            except OSError:
                pass
        if found:
            self.stats.invalidations += 1
        return found

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left in place)."""
        self._entries.clear()
        self.stats = TransCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

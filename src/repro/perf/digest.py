"""Stable content digests for translation inputs.

A digest is a SHA-256 over a canonical, order-stable rendering of the
object — *what* the translator/timing model reads, not object identity.
Two structurally identical loops built in different processes digest
identically, which is what lets the translation cache persist on disk
across runs and be shared by parallel sweep workers.

Cosmetic fields (``Operation.comment``) are excluded; everything with
semantic weight (opcode, operands, predicates, CCA inner ops, stream
ids, array shapes/aliasing, trip counts, annotations) is included.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.ir.loop import ArrayDecl, Loop
from repro.ir.opcodes import LatencyModel
from repro.ir.ops import Imm, Operation, Reg

#: Bump when digest composition or cached-value layout changes, so a
#: stale on-disk cache can never resurface under a new code version.
DIGEST_VERSION = "veal-perf-2"

_LOOP_DIGEST_ATTR = "_veal_loop_digest"


def _canon(value: Any) -> Any:
    """Render *value* as nested primitive tuples, deterministically."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        if isinstance(value, float):
            return ("f", repr(value))
        return value
    if isinstance(value, Reg):
        return ("reg", value.name, value.space)
    if isinstance(value, Imm):
        return ("imm", _canon(value.value))
    if isinstance(value, Operation):
        return (
            "op", value.opid, value.opcode.name,
            tuple(_canon(d) for d in value.dests),
            tuple(_canon(s) for s in value.srcs),
            _canon(value.predicate),
            tuple(_canon(i) for i in value.inner),
            value.stream_id,
        )
    if isinstance(value, ArrayDecl):
        return ("array", value.name, value.length, value.is_float,
                value.may_alias)
    if isinstance(value, LatencyModel):
        return ("latency", tuple(sorted(
            (op.name, lat) for op, lat in value.overrides.items())))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(
            (repr(_canon(k)), _canon(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(_canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canon(v)) for v in value)))
    # Fall back to repr for enums and small config dataclasses whose
    # repr is value-based (frozen dataclasses).
    return ("repr", repr(value))


def digest_of(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of *parts*."""
    payload = repr((DIGEST_VERSION,) + tuple(_canon(p) for p in parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def loop_digest(loop: Loop) -> str:
    """Content digest of a loop, memoised on the instance.

    Loops are treated as immutable once built (every transform goes
    through :meth:`Loop.rebuild` / :meth:`Operation.copy`, which create
    fresh objects), so caching the digest on the object is safe; the
    attribute is excluded from pickling.
    """
    cached = loop.__dict__.get(_LOOP_DIGEST_ATTR)
    if cached is not None:
        return cached
    value = digest_of(
        "loop", loop.name,
        tuple(loop.body), tuple(loop.live_ins), tuple(loop.live_outs),
        tuple(loop.arrays), loop.trip_count, loop.invocations,
        loop.annotations,
    )
    loop.__dict__[_LOOP_DIGEST_ATTR] = value
    return value


def options_digest(options) -> str:
    """Digest of a :class:`~repro.vm.translator.TranslationOptions`."""
    return digest_of(
        "options", options.use_static_cca, options.use_static_priority,
        options.use_static_mii, options.priority_kind,
        options.latency_model, options.work_budget,
    )


def cpu_key(config, latency_model: LatencyModel) -> tuple:
    """Hashable identity of a scalar-pipeline timing model."""
    return (config, tuple(sorted(
        (op.name, lat) for op, lat in latency_model.overrides.items())))

"""The performance engine: switches, shared caches, parallelism.

Three layers make the experiment pipeline fast without changing any
result bit (see DESIGN.md, "Performance engineering"):

1. a compiled interpreter fast path (:mod:`repro.cpu.compiled`),
2. content-addressed memoisation of translation products and scalar
   timing (:mod:`repro.perf.transcache`, :mod:`repro.perf.digest`),
3. process-parallel experiment fan-out (:mod:`repro.perf.parallel`).

This module owns the global switches those layers consult: whether the
engine is on at all (``REPRO_ENGINE=0`` or :func:`engine_disabled`
reverts every hot path to the reference implementation), how many
worker processes sweeps may use (``--jobs`` / ``REPRO_JOBS``), and the
process-wide cache instances with their aggregate statistics.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_engine_enabled = os.environ.get("REPRO_ENGINE", "1") not in ("0", "false")


def _jobs_from_env() -> int:
    # Permissive on purpose: a malformed REPRO_JOBS must not blow up
    # `import repro`.  The loud, validated rejection happens in
    # repro.api.Settings.from_env, which every entry point runs.
    try:
        return int(os.environ.get("REPRO_JOBS", "1") or "1")
    except ValueError:
        return 1


_jobs = _jobs_from_env()

#: Set in worker processes so nested parallel_map calls stay serial.
IN_WORKER_ENV = "REPRO_IN_WORKER"


def engine_enabled() -> bool:
    """Whether the compiled/cached fast paths are active."""
    return _engine_enabled


def set_engine_enabled(value: bool) -> None:
    global _engine_enabled
    _engine_enabled = bool(value)


@contextmanager
def engine_disabled() -> Iterator[None]:
    """Run a block on the pre-engine reference paths (used by
    ``python -m repro bench`` to time the serial baseline honestly)."""
    global _engine_enabled
    previous = _engine_enabled
    _engine_enabled = False
    try:
        yield
    finally:
        _engine_enabled = previous


def get_jobs() -> int:
    """Worker processes experiment fan-out may use (1 = serial)."""
    if os.environ.get(IN_WORKER_ENV):
        return 1
    return max(1, _jobs)


def set_jobs(jobs: Optional[int]) -> None:
    global _jobs
    if jobs is not None:
        _jobs = max(1, int(jobs))


# -- process-wide caches ------------------------------------------------------

_translation_cache = None
#: (cpu digest, loop digest, kind, extra) -> float cycle counts from the
#: in-order pipeline model; keyed by content so every VirtualMachine
#: instance in the process (and every sweep point) shares one simulation.
cycles_cache: dict[tuple, float] = {}
#: suite digest -> (baseline runs, infinite-speedup map) for the
#: design-space sweeps' fraction-of-infinite normalisation.
baseline_cache: dict[str, tuple] = {}
#: Config-independent translation front-end products (DFG +
#: schedulability + partition, and CCA mapping results) keyed by loop
#: content — shared across every sweep point that translates the same
#: loop, with the meter charges replayed exactly.  Only consulted when
#: no translation budget/deadline is active (bulk charge replay would
#: move a mid-phase budget abort).
analysis_cache: dict[tuple, tuple] = {}


def translation_cache():
    """The process-wide content-addressed translation cache."""
    global _translation_cache
    if _translation_cache is None:
        from repro.perf.transcache import TranslationCache
        _translation_cache = TranslationCache()
    return _translation_cache


def enable_disk_cache(path: Optional[str] = None) -> str:
    """Attach the on-disk layer (default ``benchmarks/results/.cache``)."""
    cache = translation_cache()
    return cache.attach_disk(path)


def clear_caches() -> None:
    """Drop every memoised product (used between bench passes)."""
    translation_cache().clear()
    cycles_cache.clear()
    baseline_cache.clear()
    analysis_cache.clear()


#: The translation-cache counters that worker processes report back to
#: the parent (see :func:`repro.perf.parallel.parallel_map`): cache
#: *entries* stay worker-local, but the aggregate hit/miss accounting
#: must describe the whole run, whatever the job count.
COUNTER_FIELDS = ("hits", "misses", "disk_hits", "stores",
                  "exact_fallbacks", "quarantined", "disk_errors")


def counter_snapshot() -> dict:
    """Current values of the mergeable translation-cache counters."""
    stats = translation_cache().stats
    return {name: getattr(stats, name) for name in COUNTER_FIELDS}


def counter_delta(before: dict) -> dict:
    """Counter increments since *before* (a :func:`counter_snapshot`)."""
    now = counter_snapshot()
    return {name: now[name] - before.get(name, 0)
            for name in COUNTER_FIELDS}


def merge_counters(delta: dict) -> None:
    """Fold a worker's counter increments into this process's stats."""
    stats = translation_cache().stats
    for name in COUNTER_FIELDS:
        setattr(stats, name, getattr(stats, name) + delta.get(name, 0))


def cache_stats() -> dict:
    """Aggregate statistics for ``BENCH_experiments.json``."""
    from repro.resilience.incidents import incident_log
    t = translation_cache().stats
    return {
        "translation": {
            "hits": t.hits, "misses": t.misses,
            "disk_hits": t.disk_hits, "stores": t.stores,
            "exact_fallbacks": t.exact_fallbacks,
            "hit_rate": t.hit_rate,
            "quarantined": t.quarantined,
            "disk_errors": t.disk_errors,
        },
        "cycles_entries": len(cycles_cache),
        "baseline_entries": len(baseline_cache),
        "analysis_entries": len(analysis_cache),
        #: kind -> count of resilience-layer recoveries this process
        #: took (quarantines, worker losses, serial fallbacks, ...).
        "incidents": incident_log().counts(),
    }

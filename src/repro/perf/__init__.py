"""The performance engine: switches, shared caches, parallelism.

Three layers make the experiment pipeline fast without changing any
result bit (see DESIGN.md, "Performance engineering"):

1. a compiled interpreter fast path (:mod:`repro.cpu.compiled`),
2. content-addressed memoisation of translation products and scalar
   timing (:mod:`repro.perf.transcache`, :mod:`repro.perf.digest`),
3. process-parallel experiment fan-out (:mod:`repro.perf.parallel`).

This module owns the global switches those layers consult: the engine
*level* (``REPRO_ENGINE``: ``0`` = reference interpreter only, ``1`` =
compiled per-op closures and caching, ``2`` = specialized kernels from
:mod:`repro.accelerator.jit`; :func:`engine_disabled` reverts every hot
path to the reference implementation), how many worker processes sweeps
may use (``--jobs`` / ``REPRO_JOBS``), and the process-wide cache
instances with their aggregate statistics.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

#: Highest engine tier (and the default): specialized kernels.
MAX_ENGINE_LEVEL = 2


def parse_engine_level(value: Union[str, bool, int, None]) -> int:
    """Normalise an engine switch to a level in [0, MAX_ENGINE_LEVEL].

    Accepts the historical boolean spellings (``"0"``/``"false"``/
    ``"off"`` disable everything; ``"true"``/``"on"`` mean the full
    engine) alongside the numeric tiers.  Raises ValueError on junk.
    """
    if value is None:
        return MAX_ENGINE_LEVEL
    if isinstance(value, bool):
        return MAX_ENGINE_LEVEL if value else 0
    if isinstance(value, int):
        return max(0, min(MAX_ENGINE_LEVEL, value))
    text = str(value).strip().lower()
    if text in ("", "true", "on"):
        return MAX_ENGINE_LEVEL
    if text in ("false", "off"):
        return 0
    return max(0, min(MAX_ENGINE_LEVEL, int(text)))


def _level_from_env() -> int:
    # Permissive on purpose (like REPRO_JOBS below): a malformed value
    # must not blow up `import repro`; Settings.from_env rejects loudly.
    try:
        return parse_engine_level(os.environ.get("REPRO_ENGINE"))
    except ValueError:
        return MAX_ENGINE_LEVEL


_engine_level = _level_from_env()


def _jobs_from_env() -> int:
    # Permissive on purpose: a malformed REPRO_JOBS must not blow up
    # `import repro`.  The loud, validated rejection happens in
    # repro.api.Settings.from_env, which every entry point runs.
    try:
        return int(os.environ.get("REPRO_JOBS", "1") or "1")
    except ValueError:
        return 1


_jobs = _jobs_from_env()

#: Set in worker processes so nested parallel_map calls stay serial.
IN_WORKER_ENV = "REPRO_IN_WORKER"


def engine_level() -> int:
    """The active engine tier (0 reference, 1 compiled, 2 specialized)."""
    return _engine_level


def set_engine_level(level: Union[int, bool]) -> None:
    global _engine_level
    _engine_level = parse_engine_level(level)


def engine_enabled() -> bool:
    """Whether the compiled/cached fast paths are active (level >= 1)."""
    return _engine_level >= 1


def set_engine_enabled(value: Union[bool, int]) -> None:
    """Back-compat boolean switch: False -> level 0, True -> full engine."""
    set_engine_level(value)


@contextmanager
def engine_at(level: int) -> Iterator[None]:
    """Run a block at a specific engine tier (bench pass isolation)."""
    global _engine_level
    previous = _engine_level
    _engine_level = parse_engine_level(level)
    try:
        yield
    finally:
        _engine_level = previous


@contextmanager
def engine_disabled() -> Iterator[None]:
    """Run a block on the pre-engine reference paths (used by
    ``python -m repro bench`` to time the serial baseline honestly)."""
    with engine_at(0):
        yield


def get_jobs() -> int:
    """Worker processes experiment fan-out may use (1 = serial)."""
    if os.environ.get(IN_WORKER_ENV):
        return 1
    return max(1, _jobs)


def set_jobs(jobs: Optional[int]) -> None:
    global _jobs
    if jobs is not None:
        _jobs = max(1, int(jobs))


# -- process-wide caches ------------------------------------------------------

_translation_cache = None
#: (cpu digest, loop digest, kind, extra) -> float cycle counts from the
#: in-order pipeline model; keyed by content so every VirtualMachine
#: instance in the process (and every sweep point) shares one simulation.
cycles_cache: dict[tuple, float] = {}
#: suite digest -> (baseline runs, infinite-speedup map) for the
#: design-space sweeps' fraction-of-infinite normalisation.
baseline_cache: dict[str, tuple] = {}
#: Config-independent translation front-end products (DFG +
#: schedulability + partition, and CCA mapping results) keyed by loop
#: content — shared across every sweep point that translates the same
#: loop, with the meter charges replayed exactly.  Only consulted when
#: no translation budget/deadline is active (bulk charge replay would
#: move a mid-phase budget abort).
analysis_cache: dict[tuple, tuple] = {}


def translation_cache():
    """The process-wide content-addressed translation cache."""
    global _translation_cache
    if _translation_cache is None:
        from repro.perf.transcache import TranslationCache
        _translation_cache = TranslationCache()
    return _translation_cache


def enable_disk_cache(path: Optional[str] = None) -> str:
    """Attach the on-disk layer (default ``benchmarks/results/.cache``)."""
    cache = translation_cache()
    return cache.attach_disk(path)


def clear_caches() -> None:
    """Drop every memoised product (used between bench passes)."""
    translation_cache().clear()
    cycles_cache.clear()
    baseline_cache.clear()
    analysis_cache.clear()
    from repro.accelerator import jit
    jit.clear_code_cache()
    from repro.workloads import suite
    suite._fission_cache.clear()


#: The translation-cache counters that worker processes report back to
#: the parent (see :func:`repro.perf.parallel.parallel_map`): cache
#: *entries* stay worker-local, but the aggregate hit/miss accounting
#: must describe the whole run, whatever the job count.
COUNTER_FIELDS = ("hits", "misses", "disk_hits", "stores",
                  "exact_fallbacks", "quarantined", "disk_errors")


def counter_snapshot() -> dict:
    """Current values of the mergeable translation-cache counters."""
    stats = translation_cache().stats
    return {name: getattr(stats, name) for name in COUNTER_FIELDS}


def counter_delta(before: dict) -> dict:
    """Counter increments since *before* (a :func:`counter_snapshot`)."""
    now = counter_snapshot()
    return {name: now[name] - before.get(name, 0)
            for name in COUNTER_FIELDS}


def merge_counters(delta: dict) -> None:
    """Fold a worker's counter increments into this process's stats."""
    stats = translation_cache().stats
    for name in COUNTER_FIELDS:
        setattr(stats, name, getattr(stats, name) + delta.get(name, 0))


def _specialized_stats() -> dict:
    from repro.accelerator import jit
    return jit.code_cache_stats()


def cache_stats() -> dict:
    """Aggregate statistics for ``BENCH_experiments.json``."""
    from repro.resilience.incidents import incident_log
    t = translation_cache().stats
    return {
        "translation": {
            "hits": t.hits, "misses": t.misses,
            "disk_hits": t.disk_hits, "stores": t.stores,
            "exact_fallbacks": t.exact_fallbacks,
            "hit_rate": t.hit_rate,
            "quarantined": t.quarantined,
            "disk_errors": t.disk_errors,
        },
        "cycles_entries": len(cycles_cache),
        "baseline_entries": len(baseline_cache),
        "analysis_entries": len(analysis_cache),
        "specialized": _specialized_stats(),
        #: kind -> count of resilience-layer recoveries this process
        #: took (quarantines, worker losses, serial fallbacks, ...).
        "incidents": incident_log().counts(),
    }

"""Process-parallel experiment fan-out with deterministic merge order.

``parallel_map(fn, items)`` is the single primitive every sweep and
suite runner uses: with ``--jobs 1`` (the default) it is a plain list
comprehension, bit-identical to the pre-engine serial path; with more
jobs it fans the items over a supervised process pool
(:func:`repro.resilience.supervisor.supervised_map`) and returns
results **in item order**, so merged output is byte-identical
regardless of worker count, completion order, crashes or retries.

Workers inherit the parent's in-memory caches on fork-capable
platforms, mark themselves via ``REPRO_IN_WORKER`` so nested
``parallel_map`` calls inside a worker run serially instead of
oversubscribing the machine, and report their translation-cache
counter increments back with each result so the parent's aggregate
statistics describe the whole run at any job count.

Failure handling is two-tier (see DESIGN.md, "Failure model &
recovery"):

* *Infrastructure* failures — an unpicklable payload, a pool that
  cannot start, a worker killed mid-task, a hung pool — are recovered
  by salvage + bounded retry and, ultimately, degradation to the
  serial path.  Each recovery is an incident record, never a silently
  swallowed exception.
* *Task* failures — ``fn`` itself raised — are deterministic and
  re-raised immediately as :class:`~repro.errors.WorkerTaskError` with
  the originating item attached, identically at every job count.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Optional, Sequence, TypeVar

from repro import obs, perf
from repro.resilience.incidents import record_incident
from repro.resilience.supervisor import (
    SupervisorConfig,
    raise_task_error,
    supervised_map,
)

T = TypeVar("T")
R = TypeVar("R")


def _worker_init() -> None:
    os.environ[perf.IN_WORKER_ENV] = "1"


class _Instrumented:
    """Picklable per-item task closure shipped to pool workers.

    Piggybacks the translation-cache counter increments on each result
    so the parent can merge them (cache *entries* stay worker-local,
    but hit/miss accounting must cover the run), and gives the chaos
    injectors their worker-kill hook — armed faults fire here, inside
    a real worker, never in the parent.
    """

    def __init__(self, fn: Callable, items: Sequence) -> None:
        self.fn = fn
        self.items = list(items)

    def __call__(self, index: int):
        from repro.faults import infra
        infra.maybe_kill_worker(index)
        in_worker = bool(os.environ.get(perf.IN_WORKER_ENV))
        before = perf.counter_snapshot()
        obs_before = obs.metrics_snapshot()
        result = self.fn(self.items[index])
        # When the supervisor degraded to running this task in the
        # parent, its increments are already in the parent's stats —
        # report a zero delta so they are not merged twice.  The same
        # applies to the obs metrics registry (fork-inherited state is
        # subtracted out by the before/after delta).
        if in_worker:
            delta = perf.counter_delta(before)
            obs_delta = obs.metrics_delta(obs_before)
        else:
            delta = {name: 0 for name in perf.COUNTER_FIELDS}
            obs_delta = obs.empty_delta()
        return result, delta, obs_delta


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None,
                 label_of: Optional[Callable[[int], str]] = None,
                 supervision: Optional[SupervisorConfig] = None
                 ) -> list[R]:
    """Apply *fn* to every item, preserving item order in the result.

    ``jobs=None`` consults the global ``--jobs`` setting.  ``label_of``
    maps an item index to a human-readable sweep-point label attached
    to typed task failures.  Exceptions raised by *fn* surface as
    :class:`~repro.errors.WorkerTaskError` in both modes.
    """
    items = list(items)
    jobs = perf.get_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(items)) if items else 1
    if jobs <= 1 or len(items) <= 1:
        return _serial(fn, items, label_of)
    task = _Instrumented(fn, items)
    try:
        # Pre-flight the payload: an unpicklable fn or item can never
        # cross a process boundary, so degrade to serial up front
        # instead of tearing down a pool per item.
        pickle.dumps(task)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        record_incident(
            "serial-fallback", "parallel",
            f"payload not picklable ({type(exc).__name__}); running "
            f"{len(items)} items serially", items=len(items))
        return _serial(fn, items, label_of)
    triples = supervised_map(task, len(items), jobs, config=supervision,
                             initializer=_worker_init, label_of=label_of)
    # Merge strictly in item order: obs histogram/counter folding is
    # commutative, but a fixed order makes the aggregate reproducible
    # byte-for-byte at any job count and completion order.
    for _result, delta, obs_delta in triples:
        perf.merge_counters(delta)
        obs.merge_metrics(obs_delta)
    return [result for result, _delta, _obs in triples]


def _serial(fn: Callable[[T], R], items: Sequence[T],
            label_of: Optional[Callable[[int], str]]) -> list[R]:
    results: list[R] = []
    for index, item in enumerate(items):
        try:
            results.append(fn(item))
        except Exception as exc:
            raise_task_error(exc, index, label_of)
    return results

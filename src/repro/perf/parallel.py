"""Process-parallel experiment fan-out with deterministic merge order.

``parallel_map(fn, items)`` is the single primitive every sweep and
suite runner uses: with ``--jobs 1`` (the default) it is a plain list
comprehension, bit-identical to the pre-engine serial path; with more
jobs it fans the items over a :class:`ProcessPoolExecutor` and returns
results **in item order** (``Executor.map`` semantics), so merged output
is byte-identical regardless of worker count or completion order.

Workers inherit the parent's in-memory caches on fork-capable
platforms, mark themselves via ``REPRO_IN_WORKER`` so nested
``parallel_map`` calls inside a worker run serially instead of
oversubscribing the machine, and report their translation-cache
counter increments back with each result so the parent's aggregate
statistics describe the whole run at any job count.  Any pool-level failure (unpicklable
payloads, missing semaphores in restricted sandboxes) degrades to the
serial path rather than failing the experiment.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence, TypeVar

from repro import perf

T = TypeVar("T")
R = TypeVar("R")


def _worker_init() -> None:
    os.environ[perf.IN_WORKER_ENV] = "1"


def _instrumented(payload):
    """Run one item in a worker, piggybacking the translation-cache
    counter increments so the parent can merge them: cache *entries*
    stay worker-local, but hit/miss accounting must cover the run."""
    fn, item = payload
    before = perf.counter_snapshot()
    result = fn(item)
    return result, perf.counter_delta(before)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None) -> list[R]:
    """Apply *fn* to every item, preserving item order in the result.

    ``jobs=None`` consults the global ``--jobs`` setting.  Exceptions
    raised by *fn* propagate to the caller in both modes.
    """
    items = list(items)
    jobs = perf.get_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(items)) if items else 1
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=jobs,
                                 initializer=_worker_init) as pool:
            pairs = list(pool.map(_instrumented,
                                  [(fn, item) for item in items],
                                  chunksize=1))
    except (OSError, ValueError, AttributeError, ImportError,
            pickle.PicklingError):
        return [fn(item) for item in items]
    for _result, delta in pairs:
        perf.merge_counters(delta)
    return [result for result, _delta in pairs]

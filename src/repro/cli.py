"""Command-line interface.

``python -m repro <command>`` regenerates any paper artifact or
inspects a kernel's translation without writing code:

    python -m repro list                       # what can I run?
    python -m repro fig10                      # the headline figure
    python -m repro fig8 --output results.txt
    python -m repro translate adpcm_dec        # one loop, full detail
    python -m repro kernels                    # the workload library
    python -m repro faults -n 120 --seed 2008  # guarded-mode fault campaign
    python -m repro fig3a --jobs 4             # parallel sweep evaluation
    python -m repro bench --jobs 2             # time engine vs reference
    python -m repro chaos -n 24 --seed 2008    # infrastructure chaos campaign
    python -m repro trace fig8 --jobs 2        # figure + JSONL span trace
    python -m repro stats TRACE_fig8.jsonl     # summarise a trace file
    python -m repro serve --workers 2          # service smoke: serve + drain
    python -m repro serve --port 0             # same smoke over TCP loopback
    python -m repro loadgen                    # service scaling/dedup bench
    python -m repro netchaos -n 20 --seed 2008 # network-fault chaos campaign
    python -m repro serve --shards 3           # supervised shard cluster smoke
    python -m repro clusterchaos --seed 2008   # shard-fault chaos campaign
    python -m repro aot build                  # precompile the workload suite
    python -m repro aot inspect                # show an artifact's manifest
    python -m repro serve --artifact suite.rvaf  # boot warm from an artifact
    python -m repro cache gc                   # sweep stale/over-budget cache
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

# The registry lives with the experiments (repro.experiments.figures);
# re-exported here because generations of callers import it from the CLI.
from repro.experiments.figures import FIGURES


def _kernel_by_name(name: str):
    from repro.workloads import kernels as K
    factories = {
        "fir": lambda: K.fir_filter(taps=8), "iir": K.iir_biquad,
        "adpcm_dec": K.adpcm_decode, "adpcm_enc": K.adpcm_encode,
        "dct": K.dct_butterfly, "sad": K.sad_16, "quant": K.quantize,
        "gf_mult": K.gf_mult, "viterbi": K.viterbi_acs,
        "colorconv": K.color_convert, "bitpack": K.bitpack,
        "checksum": K.checksum, "upsample": K.upsample,
        "vmax": K.vector_max, "daxpy": K.daxpy, "ddot": K.dot_product,
        "stencil5": K.stencil5, "mgrid_resid": K.mgrid_resid,
        "swim_update": K.swim_update, "mesa_xform": K.mesa_transform,
        "tomcatv_res": K.tomcatv_residual, "while_scan": K.while_scan,
        "libm_loop": K.libm_loop, "fig5": None,
    }
    if name == "fig5":
        from repro.workloads.example_fig5 import fig5_loop
        return fig5_loop()
    factory = factories.get(name)
    if factory is None:
        raise KeyError(f"unknown kernel {name!r}; try: "
                       + ", ".join(sorted(factories)))
    return factory()


def cmd_translate(name: str) -> str:
    """Translate one kernel for the proposed LA and report everything."""
    from repro.accelerator import PROPOSED_LA
    from repro.scheduler import ModuloReservationTable, sched_resource
    from repro.vm import translate_loop

    from repro.errors import SchedulingError

    loop = _kernel_by_name(name)
    lines = [loop.dump(), ""]
    result = translate_loop(loop, PROPOSED_LA)
    if not result.ok:
        lines.append(f"REJECTED [{result.failure_kind}]: {result.failure}")
        reason = result.failure_reason
        if isinstance(reason, SchedulingError) \
                and reason.schedule_failure is not None:
            lines.append(reason.schedule_failure.describe())
        return "\n".join(lines)
    image = result.image
    lines.append(
        f"II={image.ii} (ResMII {image.schedule.res_mii}, RecMII "
        f"{image.schedule.rec_mii})  stages={image.stage_count}  "
        f"streams={image.streams.num_load_streams}L/"
        f"{image.streams.num_store_streams}S  "
        f"regs={image.registers.int_regs}i/{image.registers.fp_regs}f")
    lines.append(f"translation: {result.instructions:,.0f} modelled "
                 f"instructions")
    mrt = ModuloReservationTable(image.ii, PROPOSED_LA.units())
    placements = {opid: (t, sched_resource(image.dfg.op(opid)))
                  for opid, t in image.schedule.times.items()}
    lines.append("")
    lines.append(mrt.render(placements))
    return "\n".join(lines)


def cmd_faults(injections: int, seed: int, mode: str):
    """Run a seeded fault-injection campaign through the guarded
    runtime; returns the report so the caller can gate its exit code
    on ``report.ok`` rather than scraping the formatted text."""
    from repro.faults import CampaignConfig, run_campaign
    from repro.vm.guard import GuardConfig

    guard = GuardConfig(mode=mode, max_failures=10_000,
                        backoff_invocations=2)
    config = CampaignConfig(injections=injections, seed=seed, guard=guard)
    return run_campaign(
        config, progress=lambda msg: print(f"... {msg}", file=sys.stderr))


def cmd_serve(workers: int, sessions: int,
              artifact: Optional[str] = None) -> tuple[str, bool]:
    """Boot the loop-acceleration service, drive a short multi-session
    workload through it, and drain.

    Every session submits the same translate corpus, so the run
    demonstrates the service's whole contract in a few hundred
    milliseconds: concurrent duplicates collapse to one core
    translation each (single-flight), all sessions share the process
    cache, and the drain leaves nothing queued.  Returns the printable
    summary and whether the service drained with every request served.
    """
    import time

    from repro.errors import ServiceOverload
    from repro.service import LoopService, ServiceConfig
    from repro.service.loadgen import request_corpus

    corpus = request_corpus()
    service = LoopService(ServiceConfig(
        workers=workers, artifact_path=artifact or None)).start()
    try:
        handles = [service.open_session(f"session-{i}")
                   for i in range(sessions)]
        futures = []
        for session in handles:
            for loop, config, options in corpus:
                # Admission control pushes back when the queue is full;
                # a well-behaved client waits and retries.
                while True:
                    try:
                        futures.append(
                            session.translate(loop, config, options))
                        break
                    except ServiceOverload:
                        time.sleep(0.001)
        served = sum(1 for future in futures
                     if future.result(timeout=600) is not None)
    finally:
        stats = service.close()
    lines = [
        f"service: {workers} worker(s), {sessions} sessions x "
        f"{len(corpus)} translate requests",
        f"  submitted {stats.submitted}  completed {stats.completed}  "
        f"served {served}",
        f"  core translations {stats.translated}  "
        f"single-flight dedup hits {stats.dedup_hits}",
        f"  drained: {'yes' if stats.drained else 'NO'}",
    ]
    ok = stats.drained and served == len(futures)
    return "\n".join(lines), ok


def cmd_serve_net(host: str, port: int, workers: int,
                  sessions: int,
                  secret: Optional[str] = None,
                  artifact: Optional[str] = None) -> tuple[str, bool]:
    """The ``serve`` smoke over TCP: boot the network front end, drive
    the same multi-session translate corpus through ``LoopClient``
    connections (framed wire protocol, retries, admission hints all
    exercised on a real socket), and drain.  Returns the printable
    summary and whether everything was served with zero orphaned
    connections.
    """
    from repro.service.client import LoopClient
    from repro.service.loadgen import request_corpus
    from repro.service.net import NetConfig, NetServer
    from repro.service.server import ServiceConfig

    corpus = request_corpus()
    served = 0
    retries = 0
    server = NetServer(NetConfig(
        host=host, port=port, auth_secret=secret,
        service=ServiceConfig(workers=workers,
                              artifact_path=artifact or None))).start()
    bound = f"{server.host}:{server.port}"
    try:
        for i in range(sessions):
            with LoopClient(server.host, server.port,
                            session=f"session-{i}",
                            secret=secret) as client:
                for loop, config, options in corpus:
                    if client.translate(loop, config, options,
                                        deadline_s=600.0) is not None:
                        served += 1
                retries += client.stats.retries
    finally:
        stats = server.stop()
        orphans = server.active_connections()
    expected = sessions * len(corpus)
    lines = [
        f"service: {workers} worker(s) on {bound}, {sessions} "
        f"sessions x {len(corpus)} translate requests over TCP",
        f"  submitted {stats.submitted}  completed {stats.completed}  "
        f"served {served}/{expected}",
        f"  core translations {stats.translated}  "
        f"single-flight dedup hits {stats.dedup_hits}  "
        f"client transport retries {retries}",
        f"  drained: {'yes' if stats.drained else 'NO'}  "
        f"orphaned connections: {orphans}",
    ]
    ok = stats.drained and served == expected and orphans == 0
    return "\n".join(lines), ok


def cmd_serve_cluster(host: str, shards: int, sessions: int,
                      secret: Optional[str] = None,
                      artifact: Optional[str] = None) -> tuple[str, bool]:
    """The ``serve`` smoke as a sharded cluster: boot a supervised
    N-shard fleet, drive the multi-session translate corpus through
    failover :class:`~repro.service.cluster.ClusterClient` connections
    (digest routing, shard-moved redirects and the shard map all
    exercised on real sockets), kill one shard mid-workload to prove
    supervised failover, and stop.  Returns the printable summary and
    whether everything was served, the fleet healed, and zero shard
    processes were orphaned.
    """
    from repro.service.cluster import (
        ClusterClient,
        ClusterConfig,
        ShardSupervisor,
    )
    from repro.service.loadgen import request_corpus
    from repro.service.server import ServiceConfig

    corpus = request_corpus()
    served = 0
    failovers = 0
    moved = 0
    supervisor = ShardSupervisor(ClusterConfig(
        shards=shards, host=host, auth_secret=secret,
        service=ServiceConfig(
            workers=1, artifact_path=artifact or None))).start()
    try:
        seed_host, seed_port = supervisor.seed_address()
        killed = False
        for i in range(sessions):
            with ClusterClient(seed_host, seed_port,
                               session=f"session-{i}",
                               secret=secret).connect() as client:
                for index, item in enumerate(corpus):
                    if (not killed and shards > 1
                            and i == sessions - 1
                            and index == len(corpus) // 2):
                        # Mid-workload SIGKILL: the rest of this
                        # session must ride the failover path.
                        supervisor.kill_shard(0)
                        killed = True
                    if client.translate(*item,
                                        deadline_s=600.0) is not None:
                        served += 1
                failovers += client.stats.failovers
                moved += client.stats.moved
        healed = supervisor.wait_converged(90.0)
        final_map = supervisor.map
    finally:
        supervisor.stop()
    orphans = supervisor.orphan_pids()
    expected = sessions * len(corpus)
    lines = [
        f"cluster: {shards} shard(s) on {host}, {sessions} sessions x "
        f"{len(corpus)} translate requests through failover clients",
        f"  served {served}/{expected}  failovers {failovers}  "
        f"shard-moved redirects {moved}",
        f"  shard 0 SIGKILLed mid-workload: "
        f"{'yes' if killed else 'no (single shard)'}  "
        f"healed: {'yes' if healed else 'NO'} "
        f"(map v{final_map.version})",
        f"  orphaned shard processes: {len(orphans)}",
    ]
    ok = served == expected and healed and not orphans
    return "\n".join(lines), ok


def cmd_kernels() -> str:
    from repro.workloads.suite import all_benchmarks
    rows = []
    for bench in all_benchmarks():
        for loop in bench.kernels:
            rows.append(f"{bench.name:14s} {loop.name:16s} "
                        f"{len(loop.body):3d} ops  trip {loop.trip_count:5d}"
                        f"  x{loop.invocations}")
    return "\n".join(rows)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VEAL (ISCA 2008) reproduction — regenerate paper "
                    "figures or inspect kernel translations.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available figures")
    sub.add_parser("kernels", help="list the workload kernels")
    translate = sub.add_parser("translate",
                               help="translate one kernel and print its "
                                    "reservation table")
    translate.add_argument("kernel")
    faults = sub.add_parser("faults",
                            help="seeded fault-injection campaign against "
                                 "the guarded runtime")
    faults.add_argument("--injections", "-n", type=int, default=120,
                        help="bit flips to inject (default 120)")
    faults.add_argument("--seed", type=int, default=2008,
                        help="campaign RNG seed (default 2008)")
    faults.add_argument("--guard", choices=("checked", "off"),
                        default="checked",
                        help="guard mode under test (default checked)")
    chaos = sub.add_parser("chaos",
                           help="seeded infrastructure-fault campaign "
                                "against the experiment engine")
    chaos.add_argument("--faults", "-n", type=int, default=24,
                       help="minimum faults to inject (default 24)")
    chaos.add_argument("--seed", type=int, default=2008,
                       help="campaign RNG seed (default 2008)")
    chaos.add_argument("--figures", default=None,
                       help="comma-separated figure names "
                            "(default: fig3a,fig3b,fig4a,fig4b)")
    chaos.add_argument("--jobs", "-j", type=int, default=2,
                       help="worker processes for faulted sweeps "
                            "(default 2; >= 2 so kill faults can land)")
    chaos.add_argument("--workdir", default=None,
                       help="campaign scratch directory (default: a "
                            "fresh temp dir; holds the JSONL incident "
                            "log and the attacked cache)")
    bench = sub.add_parser("bench",
                           help="benchmark the experiment engine vs the "
                                "reference serial path")
    bench.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for sweep fan-out "
                            "(default: REPRO_JOBS or 1)")
    bench.add_argument("--figures", default=None,
                       help="comma-separated figure names (default: "
                            "fig3a,fig3b,fig4a,fig4b,utilization)")
    bench.add_argument("--output", "-o", default=None,
                       help="JSON report path (default "
                            "benchmarks/results/BENCH_experiments.json)")
    bench.add_argument("--skip-reference", action="store_true",
                       help="skip the slow engine-off reference pass")
    bench.add_argument("--disk-cache", action="store_true",
                       help="attach the on-disk translation cache layer")
    bench.add_argument("--compare", action="store_true",
                       help="regression gate: exit nonzero when a "
                            "figure's warm speedup drops >10%% below "
                            "the committed report (deprecated: use "
                            "`repro xp compare`)")
    xp = sub.add_parser(
        "xp",
        help="experiment manager: named configs, timestamped run "
             "records, median/IQR aggregation, regression gate")
    xp.add_argument("action",
                    choices=("run", "report", "compare", "baseline",
                             "list"),
                    help="run a config; report median/IQR over its "
                         "records; compare the latest run against the "
                         "committed baseline; write that baseline; or "
                         "list presets")
    xp.add_argument("--preset", "-p", default=None,
                    help="named configuration (default 'default'; see "
                         "`repro xp list`)")
    xp.add_argument("--figures", default=None,
                    help="override the preset's figure set (changes "
                         "the config digest, so baselines won't match)")
    xp.add_argument("--jobs", "-j", type=int, default=None,
                    help="override the preset's sweep fan-out")
    xp.add_argument("--repeat", "-n", type=int, default=None,
                    help="repeats per run (default: REPRO_BENCH_REPEAT "
                         "or 1)")
    xp.add_argument("--dir", default=None,
                    help="results root holding runs/ and baselines/ "
                         "(default: REPRO_BENCH_DIR or "
                         "benchmarks/results)")
    xp.add_argument("--baseline-path", default=None,
                    help="explicit baseline file (default "
                         "<dir>/baselines/<config>.json)")
    xp.add_argument("--threshold", type=float, default=None,
                    help="relative regression threshold for compare "
                         "(default 0.10)")
    xp.add_argument("--strict", action="store_true",
                    help="compare: a missing baseline is a failure, "
                         "not a warning")
    xp.add_argument("--all", action="store_true", dest="all_records",
                    help="report: aggregate every stored record for "
                         "the config, not just the latest run")
    xp.add_argument("--summary", action="store_true",
                    help="run: regenerate the legacy "
                         "BENCH_experiments.json as a summary of this "
                         "run (figures configs only)")
    trace = sub.add_parser("trace",
                           help="run one figure with span tracing on and "
                                "write a JSONL trace file")
    trace.add_argument("figure", choices=sorted(FIGURES),
                       help="figure to run under tracing")
    trace.add_argument("--output", "-o", default=None,
                       help="trace file path (default benchmarks/results/"
                            "TRACE_<figure>.jsonl)")
    trace.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for sweep fan-out "
                            "(default: REPRO_JOBS or 1)")
    serve = sub.add_parser("serve",
                           help="boot the loop-acceleration service, "
                                "serve a short multi-session workload, "
                                "drain")
    serve.add_argument("--workers", "-w", type=int, default=1,
                       help="translation worker processes (default 1)")
    serve.add_argument("--sessions", type=int, default=3,
                       help="concurrent client sessions (default 3)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port mode "
                            "(default 127.0.0.1)")
    serve.add_argument("--port", "-p", type=int, default=None,
                       help="serve over TCP on this port (0 = pick a "
                            "free one); omit for the in-process smoke")
    serve.add_argument("--secret", default=os.environ.get(
                           "REPRO_SERVICE_SECRET"),
                       help="shared frame-auth secret (HMAC); required "
                            "for any non-loopback --host (default: "
                            "REPRO_SERVICE_SECRET)")
    serve.add_argument("--shards", type=int, default=None,
                       help="boot a supervised N-shard cluster and "
                            "drive the workload through failover "
                            "clients, with a mid-workload shard kill "
                            "(default: REPRO_SHARDS or 1)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="also write a JSONL span trace to PATH")
    serve.add_argument("--artifact", default=os.environ.get(
                           "REPRO_ARTIFACT"),
                       help="AOT artifact file loaded into each "
                            "server/shard at startup (default: "
                            "REPRO_ARTIFACT)")
    aot = sub.add_parser("aot",
                         help="build or inspect ahead-of-time "
                              "translation artifacts")
    aot.add_argument("action", choices=("build", "inspect"),
                     help="build: translate the workload suite into an "
                          "artifact; inspect: print an artifact's "
                          "manifest")
    aot.add_argument("path", nargs="?", default=None,
                     help="artifact file (default benchmarks/results/"
                          "suite.rvaf)")
    aot.add_argument("--output", "-o", default=None,
                     help="build output path (overrides the positional "
                          "path)")
    cache = sub.add_parser("cache",
                           help="disk translation-cache maintenance")
    cache.add_argument("action", choices=("gc",),
                       help="gc: sweep version-stale and over-budget "
                            "entries")
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR "
                            "or benchmarks/results/.cache)")
    cache.add_argument("--budget", type=int, default=None,
                       help="size budget in bytes (default: "
                            "REPRO_CACHE_BUDGET or 256 MiB)")
    loadgen = sub.add_parser("loadgen",
                             help="multi-client service load driver: "
                                  "throughput scaling, single-flight "
                                  "dedup and figure-identity checks")
    loadgen.add_argument("--workers", "-w", default=None,
                         help="comma-separated worker counts to compare "
                              "(default 1,2)")
    loadgen.add_argument("--shards", default=None,
                         help="comma-separated shard counts for the "
                              "cluster throughput series + failover "
                              "probe (default 1,2,4; 0 disables)")
    loadgen.add_argument("--clients", type=int, default=None,
                         help="client threads (default 3)")
    loadgen.add_argument("--runs", type=int, default=None,
                         help="measured loop executions per client "
                              "(default 6)")
    loadgen.add_argument("--output", "-o", default=None,
                         help="JSON report path (default "
                              "benchmarks/results/BENCH_service.json)")
    netchaos = sub.add_parser("netchaos",
                              help="seeded network-fault campaign "
                                   "against the TCP transport")
    netchaos.add_argument("--faults", "-n", type=int, default=20,
                          help="minimum wire faults to inject "
                               "(default 20)")
    netchaos.add_argument("--seed", type=int, default=2008,
                          help="campaign RNG seed (default 2008)")
    netchaos.add_argument("--figure", default="fig2",
                          help="figure rendered through the faulty "
                               "transport (default fig2)")
    netchaos.add_argument("--workdir", default=None,
                          help="campaign scratch directory (default: a "
                               "fresh temp dir; holds the JSONL "
                               "incident log and fault sentinels)")
    netchaos.add_argument("--trace", default=None, metavar="PATH",
                          help="also write a JSONL span trace to PATH")
    cchaos = sub.add_parser("clusterchaos",
                            help="seeded shard-fault campaign against "
                                 "the sharded cluster")
    cchaos.add_argument("--faults", "-n", type=int, default=8,
                        help="minimum shard faults to inject "
                             "(default 8)")
    cchaos.add_argument("--seed", type=int, default=2008,
                        help="campaign RNG seed (default 2008)")
    cchaos.add_argument("--shards", type=int, default=3,
                        help="shard processes in the attacked fleet "
                             "(default 3)")
    cchaos.add_argument("--figure", default="fig2",
                        help="figure rendered through the cluster "
                             "while a shard is SIGKILLed mid-sweep "
                             "(default fig2)")
    cchaos.add_argument("--workdir", default=None,
                        help="campaign scratch directory (default: a "
                             "fresh temp dir; holds the JSONL "
                             "incident log, fault sentinels and the "
                             "live chaos spec file)")
    cchaos.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a JSONL span trace to PATH")
    stats = sub.add_parser("stats",
                           help="summarise a JSONL trace/metrics dump")
    stats.add_argument("path", nargs="?", default=None,
                       help="trace file (default benchmarks/results/"
                            "TRACE_fig8.jsonl)")
    stats.add_argument("--strict", action="store_true",
                       help="validate every record against the span "
                            "schema; non-zero exit on violations")
    for name, (description, _fn) in FIGURES.items():
        fig = sub.add_parser(name, help=description)
        fig.add_argument("--output", "-o", default=None,
                         help="also write the table to this file")
        fig.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes for sweep fan-out "
                              "(default: REPRO_JOBS or 1)")
        fig.add_argument("--trace", default=None, metavar="PATH",
                         help="also write a JSONL span trace to PATH")
    args = parser.parse_args(argv)

    # One validated Settings loader covers every knob (--jobs,
    # REPRO_JOBS, REPRO_CACHE_DIR, REPRO_INCIDENT_LOG); an unusable
    # explicit override is a configuration error the user must see at
    # startup, not a silent fallback.
    from repro.api import Settings
    from repro.errors import (ArtifactError, CacheConfigError,
                              SettingsError)
    environ = None
    if args.command in ("aot", "cache"):
        # Building or GC'ing must not require REPRO_ARTIFACT to name an
        # existing file — `aot build` is how it comes to exist.
        environ = {k: v for k, v in os.environ.items()
                   if k != "REPRO_ARTIFACT"}
    try:
        Settings.from_env(environ,
                          jobs=getattr(args, "jobs", None)).apply()
    except (SettingsError, CacheConfigError, ArtifactError) as exc:
        print(f"error: [{exc.kind}] {exc}", file=sys.stderr)
        return 2

    if args.command in (None, "list"):
        width = max(len(n) for n in FIGURES)
        for name, (description, _fn) in FIGURES.items():
            print(f"  {name.ljust(width)}  {description}")
        print(f"  {'translate'.ljust(width)}  translate a kernel "
              f"(see 'kernels')")
        print(f"  {'faults'.ljust(width)}  fault-injection campaign "
              f"(guarded runtime)")
        print(f"  {'chaos'.ljust(width)}  infrastructure-fault campaign "
              f"(experiment engine)")
        print(f"  {'trace'.ljust(width)}  run a figure with span tracing "
              f"(JSONL trace file)")
        print(f"  {'stats'.ljust(width)}  summarise a JSONL trace/metrics "
              f"dump")
        print(f"  {'serve'.ljust(width)}  loop-acceleration service smoke "
              f"(serve a workload, drain; --port for TCP)")
        print(f"  {'loadgen'.ljust(width)}  service load driver "
              f"(scaling, dedup, identity, saturation)")
        print(f"  {'netchaos'.ljust(width)}  network-fault campaign "
              f"(TCP transport)")
        print(f"  {'clusterchaos'.ljust(width)}  shard-fault campaign "
              f"(sharded cluster)")
        print(f"  {'aot'.ljust(width)}  build/inspect ahead-of-time "
              f"translation artifacts")
        print(f"  {'cache'.ljust(width)}  disk translation-cache "
              f"maintenance (gc)")
        print(f"  {'xp'.ljust(width)}  experiment manager "
              f"(run/report/compare/baseline/list)")
        return 0
    if args.command == "kernels":
        print(cmd_kernels())
        return 0
    if args.command == "translate":
        try:
            print(cmd_translate(args.kernel))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0
    if args.command == "faults":
        from repro.faults import format_campaign
        report = cmd_faults(args.injections, args.seed, args.guard)
        print(format_campaign(report))
        # CI gates on this: any unexpected failure is a non-zero exit.
        return 0 if report.ok else 1
    if args.command == "chaos":
        from repro.resilience.chaos import (
            ChaosConfig,
            SWEEP_FIGURES,
            format_chaos,
            run_chaos,
        )
        figures = (tuple(args.figures.split(","))
                   if args.figures else SWEEP_FIGURES)
        config = ChaosConfig(faults=args.faults, seed=args.seed,
                             figures=figures, jobs=max(1, args.jobs),
                             workdir=args.workdir)
        report = run_chaos(
            config,
            progress=lambda msg: print(f"... {msg}", file=sys.stderr))
        print(format_chaos(report))
        return 0 if report.ok else 1
    if args.command == "bench":
        from repro.experiments.bench import (
            DEFAULT_OUTPUT,
            compare_report,
            format_bench,
            load_baseline,
            run_bench,
            write_report,
        )
        from repro.xp.store import results_dir
        output = args.output or (
            os.path.join(results_dir(), "BENCH_experiments.json")
            if os.environ.get("REPRO_BENCH_DIR") else DEFAULT_OUTPUT)
        # The committed report is the --compare baseline; read it
        # before write_report overwrites it with this run.
        baseline = load_baseline(output) if args.compare else None
        figures = (args.figures.split(",") if args.figures else None)
        report = run_bench(
            figures=figures, jobs=args.jobs,
            skip_reference=args.skip_reference,
            disk_cache=args.disk_cache,
            progress=lambda msg: print(f"... {msg}", file=sys.stderr))
        path = write_report(report, output)
        print(format_bench(report))
        print(f"report written to {path}")
        if args.compare:
            problems = compare_report(report, baseline)
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            if baseline is None:
                print("--compare: no committed baseline report; "
                      "identity checks only", file=sys.stderr)
            if problems:
                return 1
        return 0 if report.all_identical else 1
    if args.command == "xp":
        from repro import xp as xpm
        say = (lambda msg: print(f"... {msg}", file=sys.stderr))
        if args.action == "list":
            width = max(len(n) for n in xpm.PRESETS)
            for name, config in sorted(xpm.PRESETS.items()):
                print(f"  {name.ljust(width)}  [{config.kind}] "
                      f"{config.description}")
            return 0
        try:
            config = xpm.preset(args.preset or xpm.DEFAULT_PRESET)
            overrides = {}
            if args.figures:
                overrides["figures"] = tuple(args.figures.split(","))
            if args.jobs is not None:
                overrides["jobs"] = args.jobs
            if overrides:
                config = config.with_(**overrides)
            if args.action == "run":
                run = xpm.run_config(config, repeat=args.repeat,
                                     directory=args.dir, progress=say)
                agg = run.aggregate()
                print(xpm.format_aggregate(agg))
                print(f"{len(run.records)} record(s) -> {run.path}")
                if args.summary and config.kind == "figures":
                    path = xpm.write_experiments_summary(
                        run.records, directory=args.dir)
                    print(f"legacy summary written to {path}")
                return 0 if agg.all_ok else 1
            records = xpm.load_records(config.name,
                                       xpm.config_digest(config),
                                       directory=args.dir)
            if not getattr(args, "all_records", False):
                records = xpm.latest_run_records(records)
            if args.action == "report":
                if not records:
                    print(f"no run records for config {config.name!r}; "
                          f"run `repro xp run --preset {config.name}` "
                          f"first", file=sys.stderr)
                    return 1
                print(xpm.format_aggregate(
                    xpm.aggregate_records(records)))
                return 0
            if args.action == "baseline":
                if not records:
                    print(f"no run records for config {config.name!r}; "
                          f"run `repro xp run --preset {config.name}` "
                          f"first", file=sys.stderr)
                    return 1
                path = xpm.write_baseline(
                    xpm.aggregate_records(records),
                    path=args.baseline_path, directory=args.dir)
                print(f"baseline written to {path}")
                return 0
            # compare
            from repro.api import compare as api_compare
            result = api_compare(config=config,
                                 baseline_path=args.baseline_path,
                                 directory=args.dir,
                                 threshold=args.threshold,
                                 strict=args.strict)
            print(result.format())
            return 0 if result.ok else 1
        except SettingsError as exc:
            print(f"error: [{exc.kind}] {exc}", file=sys.stderr)
            return 2
    if args.command == "trace":
        from repro import obs
        path = args.output or os.path.join(
            "benchmarks", "results", f"TRACE_{args.figure}.jsonl")
        _description, fn = FIGURES[args.figure]
        # The figure text goes to stdout exactly as an untraced run
        # would print it (the byte-identical contract); the trace path
        # note goes to stderr so piping the figure stays clean.
        obs.start_trace(path)
        try:
            with obs.span("figure", component="cli", figure=args.figure):
                text = fn()
            obs.write_metrics_record()
        finally:
            obs.stop_trace()
        print(text)
        print(f"trace written to {path}", file=sys.stderr)
        return 0
    if args.command == "aot":
        from repro import aot as aot_mod
        try:
            if args.action == "build":
                path = (args.output or args.path
                        or aot_mod.DEFAULT_ARTIFACT)
                report = aot_mod.build_artifact(
                    path, progress=lambda msg: print(
                        f"... {msg}", file=sys.stderr))
                print(aot_mod.format_build(report))
                return 0
            path = args.path or aot_mod.DEFAULT_ARTIFACT
            artifact = aot_mod.load_artifact(path)
            if artifact is None:
                print(f"artifact {path!r} failed validation and was "
                      f"quarantined (see the incident log)",
                      file=sys.stderr)
                return 1
            print(aot_mod.format_artifact(artifact))
            return 0
        except ArtifactError as exc:
            print(f"error: [{exc.kind}] {exc}", file=sys.stderr)
            return 2
    if args.command == "cache":
        from repro.perf import transcache
        path = args.dir or transcache.default_disk_dir()
        summary = transcache.gc_disk_dir(path, budget=args.budget)
        print(f"cache gc {summary['dir']}: removed {summary['stale']} "
              f"version-stale + {summary['evicted']} over-budget "
              f"entries ({summary['bytes_freed']} bytes freed); kept "
              f"{summary['kept']} entries ({summary['kept_bytes']} "
              f"bytes of {summary['budget_bytes']} budget)")
        return 0
    if args.command == "serve":
        from repro.errors import TransportError
        shards = (args.shards if args.shards is not None
                  else int(os.environ.get("REPRO_SHARDS", "1")))

        def _serve() -> tuple[str, bool]:
            try:
                if shards > 1:
                    return cmd_serve_cluster(args.host, shards,
                                             args.sessions,
                                             secret=args.secret,
                                             artifact=args.artifact)
                if args.port is not None:
                    return cmd_serve_net(args.host, args.port,
                                         args.workers, args.sessions,
                                         secret=args.secret,
                                         artifact=args.artifact)
                return cmd_serve(args.workers, args.sessions,
                                 artifact=args.artifact)
            except (TransportError, ArtifactError) as exc:
                # A refused bind (non-loopback without --secret) or a
                # missing named artifact is a configuration error, not
                # a crash.
                return f"error: [{exc.kind}] {exc}", False
        if args.trace:
            from repro import obs
            obs.start_trace(args.trace)
        try:
            if args.trace:
                from repro import obs
                with obs.span("serve", component="cli",
                              workers=args.workers,
                              sessions=args.sessions):
                    text, ok = _serve()
                obs.write_metrics_record()
            else:
                text, ok = _serve()
        finally:
            if args.trace:
                from repro import obs
                obs.stop_trace()
        print(text)
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        return 0 if ok else 1
    if args.command == "netchaos":
        from repro.resilience.netchaos import (
            NetChaosConfig,
            format_netchaos,
            run_netchaos,
        )
        config = NetChaosConfig(faults=args.faults, seed=args.seed,
                                figure=args.figure,
                                workdir=args.workdir)
        if args.trace:
            from repro import obs
            obs.start_trace(args.trace)
        try:
            if args.trace:
                from repro import obs
                with obs.span("netchaos", component="cli",
                              faults=args.faults, seed=args.seed):
                    report = run_netchaos(
                        config, progress=lambda msg: print(
                            f"... {msg}", file=sys.stderr))
                obs.write_metrics_record()
            else:
                report = run_netchaos(
                    config, progress=lambda msg: print(
                        f"... {msg}", file=sys.stderr))
        finally:
            if args.trace:
                from repro import obs
                obs.stop_trace()
        print(format_netchaos(report))
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        return 0 if report.ok else 1
    if args.command == "clusterchaos":
        from repro.resilience.clusterchaos import (
            ClusterChaosConfig,
            format_clusterchaos,
            run_clusterchaos,
        )
        config = ClusterChaosConfig(
            faults=args.faults, seed=args.seed, shards=args.shards,
            figure=args.figure, workdir=args.workdir)
        if args.trace:
            from repro import obs
            obs.start_trace(args.trace)
        try:
            if args.trace:
                from repro import obs
                with obs.span("clusterchaos", component="cli",
                              faults=args.faults, seed=args.seed,
                              shards=args.shards):
                    report = run_clusterchaos(
                        config, progress=lambda msg: print(
                            f"... {msg}", file=sys.stderr))
                obs.write_metrics_record()
            else:
                report = run_clusterchaos(
                    config, progress=lambda msg: print(
                        f"... {msg}", file=sys.stderr))
        finally:
            if args.trace:
                from repro import obs
                obs.stop_trace()
        print(format_clusterchaos(report))
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        return 0 if report.ok else 1
    if args.command == "loadgen":
        from repro.service.loadgen import (
            DEFAULT_CLIENTS,
            DEFAULT_OUTPUT,
            DEFAULT_RUN_KERNELS,
            DEFAULT_SHARDS,
            DEFAULT_WORKERS,
            format_loadgen,
            run_loadgen,
            write_report,
        )
        workers = (tuple(int(w) for w in args.workers.split(","))
                   if args.workers else DEFAULT_WORKERS)
        if args.shards is None:
            shard_counts = DEFAULT_SHARDS
        else:
            shard_counts = tuple(
                int(s) for s in args.shards.split(",") if int(s) > 0)
        report = run_loadgen(
            workers=workers,
            clients=args.clients or DEFAULT_CLIENTS,
            run_kernel_count=args.runs or DEFAULT_RUN_KERNELS,
            shard_counts=shard_counts,
            progress=lambda msg: print(f"... {msg}", file=sys.stderr))
        from repro.xp.store import results_dir
        output = args.output or (
            os.path.join(results_dir(), "BENCH_service.json")
            if os.environ.get("REPRO_BENCH_DIR") else DEFAULT_OUTPUT)
        path = write_report(report, output)
        print(format_loadgen(report))
        print(f"report written to {path}")
        return 0 if report.ok else 1
    if args.command == "stats":
        from repro.obs.schema import validate_trace_file
        from repro.obs.stats import format_trace_stats, load_trace
        path = args.path or os.path.join("benchmarks", "results",
                                         "TRACE_fig8.jsonl")
        records = load_trace(path)
        if not records:
            print(f"no trace records found in {path!r}", file=sys.stderr)
            return 2
        print(format_trace_stats(records, source=path))
        if args.strict:
            count, errors = validate_trace_file(path)
            if errors:
                print(f"{len(errors)} schema violation(s):",
                      file=sys.stderr)
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            print(f"{count} records schema-valid", file=sys.stderr)
        return 0
    _description, fn = FIGURES[args.command]
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro import obs
        obs.start_trace(trace_path)
    try:
        if trace_path:
            from repro import obs
            with obs.span("figure", component="cli", figure=args.command):
                text = fn()
            obs.write_metrics_record()
        else:
            text = fn()
    finally:
        if trace_path:
            from repro import obs
            obs.stop_trace()
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface.

``python -m repro <command>`` regenerates any paper artifact or
inspects a kernel's translation without writing code:

    python -m repro list                       # what can I run?
    python -m repro fig10                      # the headline figure
    python -m repro fig8 --output results.txt
    python -m repro translate adpcm_dec        # one loop, full detail
    python -m repro kernels                    # the workload library
    python -m repro faults -n 120 --seed 2008  # guarded-mode fault campaign
    python -m repro fig3a --jobs 4             # parallel sweep evaluation
    python -m repro bench --jobs 2             # time engine vs reference
    python -m repro chaos -n 24 --seed 2008    # infrastructure chaos campaign
    python -m repro trace fig8 --jobs 2        # figure + JSONL span trace
    python -m repro stats TRACE_fig8.jsonl     # summarise a trace file
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Optional

FIGURES: dict[str, tuple[str, Callable[[], str]]] = {}


def _register(name: str, description: str):
    def wrap(fn: Callable[[], str]):
        FIGURES[name] = (description, fn)
        return fn
    return wrap


@_register("fig2", "Figure 2: execution-time coverage by loop category")
def _fig2() -> str:
    from repro.experiments.fig2_coverage import format_coverage, run_coverage
    return format_coverage(run_coverage())


@_register("fig3a", "Figure 3(a): function-unit design-space sweep")
def _fig3a() -> str:
    from repro.experiments.sweeps import format_series, run_fu_sweep
    return format_series("Figure 3(a): function unit sweep", run_fu_sweep())


@_register("fig3b", "Figure 3(b): register design-space sweep")
def _fig3b() -> str:
    from repro.experiments.sweeps import format_series, run_register_sweep
    return format_series("Figure 3(b): register sweep", run_register_sweep())


@_register("fig4a", "Figure 4(a): memory-stream design-space sweep")
def _fig4a() -> str:
    from repro.experiments.sweeps import format_series, run_stream_sweep
    return format_series("Figure 4(a): memory stream sweep",
                         run_stream_sweep())


@_register("fig4b", "Figure 4(b): maximum-II design-space sweep")
def _fig4b() -> str:
    from repro.experiments.sweeps import format_series, run_max_ii_sweep
    return format_series("Figure 4(b): maximum II sweep",
                         run_max_ii_sweep())


@_register("design", "Section 3.2: proposed design point + area table")
def _design() -> str:
    from repro.experiments.design_point import (
        format_area_table,
        format_design_point,
        run_area_table,
        run_design_point,
    )
    return (format_design_point(run_design_point()) + "\n\n"
            + format_area_table(run_area_table()))


@_register("fig6", "Figure 6: speedup vs translation overhead")
def _fig6() -> str:
    from repro.experiments.fig6_overhead import (
        format_overhead,
        run_overhead_sweep,
    )
    return format_overhead(run_overhead_sweep())


@_register("fig7", "Figure 7: impact of static loop transformations")
def _fig7() -> str:
    from repro.experiments.fig7_transforms import (
        format_transforms,
        run_transform_comparison,
    )
    return format_transforms(run_transform_comparison())


@_register("fig8", "Figure 8: translation penalty per loop")
def _fig8() -> str:
    from repro.experiments.fig8_translation import (
        format_translation,
        run_translation_profile,
    )
    return format_translation(run_translation_profile())


@_register("fig10", "Figure 10: static/dynamic tradeoff speedups")
def _fig10() -> str:
    from repro.experiments.fig10_speedup import (
        format_speedup_matrix,
        run_speedup_matrix,
    )
    return format_speedup_matrix(run_speedup_matrix())


@_register("static-mii", "Section 4.2: rejected static MII encoding")
def _static_mii() -> str:
    from repro.experiments.static_tradeoffs import (
        format_static_mii,
        run_static_mii_study,
    )
    return format_static_mii(run_static_mii_study())


@_register("footnote3", "Footnote 3: static priority under latency drift")
def _footnote3() -> str:
    from repro.experiments.static_tradeoffs import (
        format_footnote3,
        run_footnote3_study,
    )
    return format_footnote3(run_footnote3_study())


@_register("amortization", "Bus-latency sensitivity + trip-count crossover")
def _amortization() -> str:
    from repro.experiments.amortization import (
        format_amortization,
        run_bus_sweep,
        run_trip_crossover,
    )
    return format_amortization(run_bus_sweep(), run_trip_crossover())


@_register("speculation", "Section 2.2 extension: speculative memory support")
def _speculation() -> str:
    from repro.experiments.speculation import (
        format_speculation,
        run_speculation_study,
    )
    return format_speculation(run_speculation_study())


@_register("utilization", "measured kernel utilization (overlapped executor)")
def _utilization() -> str:
    from repro.experiments.utilization import (
        format_utilization,
        run_utilization,
    )
    return format_utilization(run_utilization())


@_register("all", "run every experiment and print one full report")
def _all() -> str:
    from repro.experiments.report import full_report
    return full_report(progress=lambda title: print(f"... {title}",
                                                    file=sys.stderr))


def _kernel_by_name(name: str):
    from repro.workloads import kernels as K
    factories = {
        "fir": lambda: K.fir_filter(taps=8), "iir": K.iir_biquad,
        "adpcm_dec": K.adpcm_decode, "adpcm_enc": K.adpcm_encode,
        "dct": K.dct_butterfly, "sad": K.sad_16, "quant": K.quantize,
        "gf_mult": K.gf_mult, "viterbi": K.viterbi_acs,
        "colorconv": K.color_convert, "bitpack": K.bitpack,
        "checksum": K.checksum, "upsample": K.upsample,
        "vmax": K.vector_max, "daxpy": K.daxpy, "ddot": K.dot_product,
        "stencil5": K.stencil5, "mgrid_resid": K.mgrid_resid,
        "swim_update": K.swim_update, "mesa_xform": K.mesa_transform,
        "tomcatv_res": K.tomcatv_residual, "while_scan": K.while_scan,
        "libm_loop": K.libm_loop, "fig5": None,
    }
    if name == "fig5":
        from repro.workloads.example_fig5 import fig5_loop
        return fig5_loop()
    factory = factories.get(name)
    if factory is None:
        raise KeyError(f"unknown kernel {name!r}; try: "
                       + ", ".join(sorted(factories)))
    return factory()


def cmd_translate(name: str) -> str:
    """Translate one kernel for the proposed LA and report everything."""
    from repro.accelerator import PROPOSED_LA
    from repro.scheduler import ModuloReservationTable, sched_resource
    from repro.vm import translate_loop

    from repro.errors import SchedulingError

    loop = _kernel_by_name(name)
    lines = [loop.dump(), ""]
    result = translate_loop(loop, PROPOSED_LA)
    if not result.ok:
        lines.append(f"REJECTED [{result.failure_kind}]: {result.failure}")
        reason = result.failure_reason
        if isinstance(reason, SchedulingError) \
                and reason.schedule_failure is not None:
            lines.append(reason.schedule_failure.describe())
        return "\n".join(lines)
    image = result.image
    lines.append(
        f"II={image.ii} (ResMII {image.schedule.res_mii}, RecMII "
        f"{image.schedule.rec_mii})  stages={image.stage_count}  "
        f"streams={image.streams.num_load_streams}L/"
        f"{image.streams.num_store_streams}S  "
        f"regs={image.registers.int_regs}i/{image.registers.fp_regs}f")
    lines.append(f"translation: {result.instructions:,.0f} modelled "
                 f"instructions")
    mrt = ModuloReservationTable(image.ii, PROPOSED_LA.units())
    placements = {opid: (t, sched_resource(image.dfg.op(opid)))
                  for opid, t in image.schedule.times.items()}
    lines.append("")
    lines.append(mrt.render(placements))
    return "\n".join(lines)


def cmd_faults(injections: int, seed: int, mode: str):
    """Run a seeded fault-injection campaign through the guarded
    runtime; returns the report so the caller can gate its exit code
    on ``report.ok`` rather than scraping the formatted text."""
    from repro.faults import CampaignConfig, run_campaign
    from repro.vm.guard import GuardConfig

    guard = GuardConfig(mode=mode, max_failures=10_000,
                        backoff_invocations=2)
    config = CampaignConfig(injections=injections, seed=seed, guard=guard)
    return run_campaign(
        config, progress=lambda msg: print(f"... {msg}", file=sys.stderr))


def cmd_kernels() -> str:
    from repro.workloads.suite import all_benchmarks
    rows = []
    for bench in all_benchmarks():
        for loop in bench.kernels:
            rows.append(f"{bench.name:14s} {loop.name:16s} "
                        f"{len(loop.body):3d} ops  trip {loop.trip_count:5d}"
                        f"  x{loop.invocations}")
    return "\n".join(rows)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VEAL (ISCA 2008) reproduction — regenerate paper "
                    "figures or inspect kernel translations.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available figures")
    sub.add_parser("kernels", help="list the workload kernels")
    translate = sub.add_parser("translate",
                               help="translate one kernel and print its "
                                    "reservation table")
    translate.add_argument("kernel")
    faults = sub.add_parser("faults",
                            help="seeded fault-injection campaign against "
                                 "the guarded runtime")
    faults.add_argument("--injections", "-n", type=int, default=120,
                        help="bit flips to inject (default 120)")
    faults.add_argument("--seed", type=int, default=2008,
                        help="campaign RNG seed (default 2008)")
    faults.add_argument("--guard", choices=("checked", "off"),
                        default="checked",
                        help="guard mode under test (default checked)")
    chaos = sub.add_parser("chaos",
                           help="seeded infrastructure-fault campaign "
                                "against the experiment engine")
    chaos.add_argument("--faults", "-n", type=int, default=24,
                       help="minimum faults to inject (default 24)")
    chaos.add_argument("--seed", type=int, default=2008,
                       help="campaign RNG seed (default 2008)")
    chaos.add_argument("--figures", default=None,
                       help="comma-separated figure names "
                            "(default: fig3a,fig3b,fig4a,fig4b)")
    chaos.add_argument("--jobs", "-j", type=int, default=2,
                       help="worker processes for faulted sweeps "
                            "(default 2; >= 2 so kill faults can land)")
    chaos.add_argument("--workdir", default=None,
                       help="campaign scratch directory (default: a "
                            "fresh temp dir; holds the JSONL incident "
                            "log and the attacked cache)")
    bench = sub.add_parser("bench",
                           help="benchmark the experiment engine vs the "
                                "reference serial path")
    bench.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for sweep fan-out "
                            "(default: REPRO_JOBS or 1)")
    bench.add_argument("--figures", default=None,
                       help="comma-separated figure names "
                            "(default: fig3a,fig3b,fig4a,fig4b)")
    bench.add_argument("--output", "-o", default=None,
                       help="JSON report path (default "
                            "benchmarks/results/BENCH_experiments.json)")
    bench.add_argument("--skip-reference", action="store_true",
                       help="skip the slow engine-off reference pass")
    bench.add_argument("--disk-cache", action="store_true",
                       help="attach the on-disk translation cache layer")
    trace = sub.add_parser("trace",
                           help="run one figure with span tracing on and "
                                "write a JSONL trace file")
    trace.add_argument("figure", choices=sorted(FIGURES),
                       help="figure to run under tracing")
    trace.add_argument("--output", "-o", default=None,
                       help="trace file path (default benchmarks/results/"
                            "TRACE_<figure>.jsonl)")
    trace.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for sweep fan-out "
                            "(default: REPRO_JOBS or 1)")
    stats = sub.add_parser("stats",
                           help="summarise a JSONL trace/metrics dump")
    stats.add_argument("path", nargs="?", default=None,
                       help="trace file (default benchmarks/results/"
                            "TRACE_fig8.jsonl)")
    stats.add_argument("--strict", action="store_true",
                       help="validate every record against the span "
                            "schema; non-zero exit on violations")
    for name, (description, _fn) in FIGURES.items():
        fig = sub.add_parser(name, help=description)
        fig.add_argument("--output", "-o", default=None,
                         help="also write the table to this file")
        fig.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes for sweep fan-out "
                              "(default: REPRO_JOBS or 1)")
        fig.add_argument("--trace", default=None, metavar="PATH",
                         help="also write a JSONL span trace to PATH")
    args = parser.parse_args(argv)

    if getattr(args, "jobs", None) is not None:
        from repro import perf
        perf.set_jobs(args.jobs)

    # REPRO_CACHE_DIR opts every command into the on-disk translation
    # cache; an unusable explicit override is a configuration error the
    # user must see at startup, not a silent memory-only run.
    if os.environ.get("REPRO_CACHE_DIR"):
        from repro import perf
        from repro.errors import CacheConfigError
        try:
            perf.enable_disk_cache()
        except CacheConfigError as exc:
            print(f"error: [{exc.kind}] {exc}", file=sys.stderr)
            return 2

    if args.command in (None, "list"):
        width = max(len(n) for n in FIGURES)
        for name, (description, _fn) in FIGURES.items():
            print(f"  {name.ljust(width)}  {description}")
        print(f"  {'translate'.ljust(width)}  translate a kernel "
              f"(see 'kernels')")
        print(f"  {'faults'.ljust(width)}  fault-injection campaign "
              f"(guarded runtime)")
        print(f"  {'chaos'.ljust(width)}  infrastructure-fault campaign "
              f"(experiment engine)")
        print(f"  {'trace'.ljust(width)}  run a figure with span tracing "
              f"(JSONL trace file)")
        print(f"  {'stats'.ljust(width)}  summarise a JSONL trace/metrics "
              f"dump")
        return 0
    if args.command == "kernels":
        print(cmd_kernels())
        return 0
    if args.command == "translate":
        try:
            print(cmd_translate(args.kernel))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0
    if args.command == "faults":
        from repro.faults import format_campaign
        report = cmd_faults(args.injections, args.seed, args.guard)
        print(format_campaign(report))
        # CI gates on this: any unexpected failure is a non-zero exit.
        return 0 if report.ok else 1
    if args.command == "chaos":
        from repro.resilience.chaos import (
            ChaosConfig,
            SWEEP_FIGURES,
            format_chaos,
            run_chaos,
        )
        figures = (tuple(args.figures.split(","))
                   if args.figures else SWEEP_FIGURES)
        config = ChaosConfig(faults=args.faults, seed=args.seed,
                             figures=figures, jobs=max(1, args.jobs),
                             workdir=args.workdir)
        report = run_chaos(
            config,
            progress=lambda msg: print(f"... {msg}", file=sys.stderr))
        print(format_chaos(report))
        return 0 if report.ok else 1
    if args.command == "bench":
        from repro.experiments.bench import (
            DEFAULT_OUTPUT,
            format_bench,
            run_bench,
            write_report,
        )
        figures = (args.figures.split(",") if args.figures else None)
        report = run_bench(
            figures=figures, jobs=args.jobs,
            skip_reference=args.skip_reference,
            disk_cache=args.disk_cache,
            progress=lambda msg: print(f"... {msg}", file=sys.stderr))
        path = write_report(report, args.output or DEFAULT_OUTPUT)
        print(format_bench(report))
        print(f"report written to {path}")
        return 0 if report.all_identical else 1
    if args.command == "trace":
        from repro import obs
        path = args.output or os.path.join(
            "benchmarks", "results", f"TRACE_{args.figure}.jsonl")
        _description, fn = FIGURES[args.figure]
        # The figure text goes to stdout exactly as an untraced run
        # would print it (the byte-identical contract); the trace path
        # note goes to stderr so piping the figure stays clean.
        obs.start_trace(path)
        try:
            with obs.span("figure", component="cli", figure=args.figure):
                text = fn()
            obs.write_metrics_record()
        finally:
            obs.stop_trace()
        print(text)
        print(f"trace written to {path}", file=sys.stderr)
        return 0
    if args.command == "stats":
        from repro.obs.schema import validate_trace_file
        from repro.obs.stats import format_trace_stats, load_trace
        path = args.path or os.path.join("benchmarks", "results",
                                         "TRACE_fig8.jsonl")
        records = load_trace(path)
        if not records:
            print(f"no trace records found in {path!r}", file=sys.stderr)
            return 2
        print(format_trace_stats(records, source=path))
        if args.strict:
            count, errors = validate_trace_file(path)
            if errors:
                print(f"{len(errors)} schema violation(s):",
                      file=sys.stderr)
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            print(f"{count} records schema-valid", file=sys.stderr)
        return 0
    _description, fn = FIGURES[args.command]
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro import obs
        obs.start_trace(trace_path)
    try:
        if trace_path:
            from repro import obs
            with obs.span("figure", component="cli", figure=args.command):
                text = fn()
            obs.write_metrics_record()
        else:
            text = fn()
    finally:
        if trace_path:
            from repro import obs
            obs.stop_trace()
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

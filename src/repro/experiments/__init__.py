"""Paper-reproduction experiments — one module per figure/table.

| Paper artifact | Module |
|---|---|
| Figure 2 (coverage)            | :mod:`repro.experiments.fig2_coverage` |
| Figure 3(a)/(b), 4(a)/(b)      | :mod:`repro.experiments.sweeps` |
| Section 3.2 design point/area  | :mod:`repro.experiments.design_point` |
| Figure 6 (overhead sweep)      | :mod:`repro.experiments.fig6_overhead` |
| Figure 7 (static transforms)   | :mod:`repro.experiments.fig7_transforms` |
| Figure 8 (translation cost)    | :mod:`repro.experiments.fig8_translation` |
| Figure 10 (speedup tradeoffs)  | :mod:`repro.experiments.fig10_speedup` |
"""

from repro.experiments.common import (
    annotate_benchmark,
    arithmetic_mean,
    baseline_runs,
    format_table,
    geometric_mean,
    run_suite,
    speedups,
)

__all__ = [
    "annotate_benchmark", "arithmetic_mean", "baseline_runs",
    "format_table", "geometric_mean", "run_suite", "speedups",
]

"""Registry of every paper figure/table the reproduction can emit.

Maps figure name -> ``(description, thunk)`` where the thunk returns
the figure's formatted text.  Lives in :mod:`repro.experiments` (not
the CLI) so every driver — ``python -m repro <figure>``, the service
layer's figure requests, :func:`repro.api.run_figure`, the bench and
chaos harnesses — dispatches through one registry and produces
byte-identical text.  Experiment modules are imported lazily inside
each thunk: listing figures must stay instant.
"""

from __future__ import annotations

import sys
from typing import Callable

FIGURES: dict[str, tuple[str, Callable[[], str]]] = {}


def _register(name: str, description: str):
    def wrap(fn: Callable[[], str]):
        FIGURES[name] = (description, fn)
        return fn
    return wrap


@_register("fig2", "Figure 2: execution-time coverage by loop category")
def _fig2() -> str:
    from repro.experiments.fig2_coverage import format_coverage, run_coverage
    return format_coverage(run_coverage())


@_register("fig3a", "Figure 3(a): function-unit design-space sweep")
def _fig3a() -> str:
    from repro.experiments.sweeps import format_series, run_fu_sweep
    return format_series("Figure 3(a): function unit sweep", run_fu_sweep())


@_register("fig3b", "Figure 3(b): register design-space sweep")
def _fig3b() -> str:
    from repro.experiments.sweeps import format_series, run_register_sweep
    return format_series("Figure 3(b): register sweep", run_register_sweep())


@_register("fig4a", "Figure 4(a): memory-stream design-space sweep")
def _fig4a() -> str:
    from repro.experiments.sweeps import format_series, run_stream_sweep
    return format_series("Figure 4(a): memory stream sweep",
                         run_stream_sweep())


@_register("fig4b", "Figure 4(b): maximum-II design-space sweep")
def _fig4b() -> str:
    from repro.experiments.sweeps import format_series, run_max_ii_sweep
    return format_series("Figure 4(b): maximum II sweep",
                         run_max_ii_sweep())


@_register("design", "Section 3.2: proposed design point + area table")
def _design() -> str:
    from repro.experiments.design_point import (
        format_area_table,
        format_design_point,
        run_area_table,
        run_design_point,
    )
    return (format_design_point(run_design_point()) + "\n\n"
            + format_area_table(run_area_table()))


@_register("fig6", "Figure 6: speedup vs translation overhead")
def _fig6() -> str:
    from repro.experiments.fig6_overhead import (
        format_overhead,
        run_overhead_sweep,
    )
    return format_overhead(run_overhead_sweep())


@_register("fig7", "Figure 7: impact of static loop transformations")
def _fig7() -> str:
    from repro.experiments.fig7_transforms import (
        format_transforms,
        run_transform_comparison,
    )
    return format_transforms(run_transform_comparison())


@_register("fig8", "Figure 8: translation penalty per loop")
def _fig8() -> str:
    from repro.experiments.fig8_translation import (
        format_translation,
        run_translation_profile,
    )
    return format_translation(run_translation_profile())


@_register("fig10", "Figure 10: static/dynamic tradeoff speedups")
def _fig10() -> str:
    from repro.experiments.fig10_speedup import (
        format_speedup_matrix,
        run_speedup_matrix,
    )
    return format_speedup_matrix(run_speedup_matrix())


@_register("static-mii", "Section 4.2: rejected static MII encoding")
def _static_mii() -> str:
    from repro.experiments.static_tradeoffs import (
        format_static_mii,
        run_static_mii_study,
    )
    return format_static_mii(run_static_mii_study())


@_register("footnote3", "Footnote 3: static priority under latency drift")
def _footnote3() -> str:
    from repro.experiments.static_tradeoffs import (
        format_footnote3,
        run_footnote3_study,
    )
    return format_footnote3(run_footnote3_study())


@_register("amortization", "Bus-latency sensitivity + trip-count crossover")
def _amortization() -> str:
    from repro.experiments.amortization import (
        format_amortization,
        run_bus_sweep,
        run_trip_crossover,
    )
    return format_amortization(run_bus_sweep(), run_trip_crossover())


@_register("speculation", "Section 2.2 extension: speculative memory support")
def _speculation() -> str:
    from repro.experiments.speculation import (
        format_speculation,
        run_speculation_study,
    )
    return format_speculation(run_speculation_study())


@_register("utilization", "measured kernel utilization (overlapped executor)")
def _utilization() -> str:
    from repro.experiments.utilization import (
        format_utilization,
        run_utilization,
    )
    return format_utilization(run_utilization())


@_register("all", "run every experiment and print one full report")
def _all() -> str:
    from repro.experiments.report import full_report
    return full_report(progress=lambda title: print(f"... {title}",
                                                    file=sys.stderr))


def benchable_figures() -> dict[str, Callable[[], str]]:
    """The figures a benchmark run may time: every registered figure
    except the ``all`` meta-entry (it is a report over the others, not
    a design point).  The one registry — a figure registered above is
    automatically benchable."""
    return {name: fn for name, (_description, fn) in FIGURES.items()
            if name != "all"}

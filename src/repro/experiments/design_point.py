"""Section 3.2: the proposed generalized loop accelerator design point.

Checks the headline claim — the 1-CCA / 2-int / 2-FP / 16-reg /
16-load-8-store-stream / max-II-16 design attains ~83% of the
infinite-resource speedup — and produces the die-area comparison table
(3.8 mm^2 for the LA vs 4.34 mm^2 ARM11 vs 10.2 mm^2 Cortex-A8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.area import accelerator_area
from repro.accelerator.config import PROPOSED_LA, LAConfig
from repro.cpu.pipeline import ARM11, CORTEX_A8, QUAD_ISSUE
from repro.experiments.common import format_table, fmt
from repro.experiments.sweeps import _fraction_of_infinite


@dataclass
class DesignPointResult:
    fraction_of_infinite: float
    la_area_mm2: float
    la_plus_arm11_mm2: float


def run_design_point(config: LAConfig = PROPOSED_LA) -> DesignPointResult:
    fraction = _fraction_of_infinite(config)
    area = accelerator_area(config).total
    return DesignPointResult(
        fraction_of_infinite=fraction,
        la_area_mm2=area,
        la_plus_arm11_mm2=area + ARM11.area_mm2,
    )


def run_area_table(config: LAConfig = PROPOSED_LA) -> list[tuple]:
    """The Section 3.2 / 4.3 die-area comparison."""
    breakdown = accelerator_area(config)
    return [
        ("loop accelerator (proposed)", fmt(breakdown.total, 2)),
        ("  of which 2x double-precision FPU", fmt(breakdown.fp_units, 2)),
        ("ARM11 (1-issue baseline)", fmt(ARM11.area_mm2, 2)),
        ("ARM11 + loop accelerator", fmt(ARM11.area_mm2 + breakdown.total, 2)),
        ("Cortex-A8 (2-issue)", fmt(CORTEX_A8.area_mm2, 2)),
        ("hypothetical 4-issue", fmt(QUAD_ISSUE.area_mm2, 2)),
    ]


def format_design_point(result: DesignPointResult) -> str:
    rows = [
        ("fraction of infinite-resource speedup",
         fmt(result.fraction_of_infinite, 3), "0.83"),
        ("accelerator area (mm^2, 90nm)", fmt(result.la_area_mm2, 2), "3.8"),
        ("ARM11 + accelerator (mm^2)", fmt(result.la_plus_arm11_mm2, 2),
         "8.25"),
    ]
    return format_table(["metric", "measured", "paper"], rows,
                        title="Section 3.2: proposed design point")


def format_area_table(rows: list[tuple]) -> str:
    return format_table(["component", "area mm^2 (90nm)"], rows,
                        title="Die area comparison (Sections 3.2 / 4.3)")

"""Figure 10: static/dynamic and algorithm tradeoffs for key stages.

Six system configurations per benchmark, all normalised to the
single-issue ARM11-like baseline:

1. **No Translation Penalty** — the accelerator with free translation
   (equivalent to a statically compiled binary).  Paper mean: 2.76.
2. **Fully Dynamic** — Swing priority computed at runtime, full
   translation cost through the 16-entry LRU code cache.  Paper: 2.27.
3. **Fully Dynamic Height Priority** — the cheaper priority function:
   faster translation, sometimes worse schedules.  Paper: 2.41.
4. **Static CCA/Priority** — the hybrid recommendation: CCA subgraphs
   and scheduling priority encoded in the binary.  Paper: 2.66.
5. **2-Issue** — a Cortex-A8-like core, no accelerator.
6. **4-Issue** — a hypothetical quad-issue core, no accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.cpu.pipeline import ARM11, CORTEX_A8, QUAD_ISSUE
from repro.experiments.common import (
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    _run_suite,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.vm.translator import TranslationOptions
from repro.workloads.suite import Benchmark, media_fp_benchmarks

MODES: list[tuple[str, str]] = [
    ("no_penalty", "No Translation Penalty"),
    ("fully_dynamic", "Fully Dynamic"),
    ("height", "Fully Dynamic Height Priority"),
    ("static", "Static CCA/Priority"),
    ("issue2", "2-Issue"),
    ("issue4", "4-Issue"),
]

PAPER_MEANS = {"no_penalty": 2.76, "fully_dynamic": 2.27,
               "height": 2.41, "static": 2.66}


def _mode_config(mode: str, functional: bool) -> tuple[VMConfig, bool]:
    """(config, needs static annotations) for one Figure 10 bar."""
    if mode == "no_penalty":
        return VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                        charge_translation=False,
                        functional=functional), False
    if mode == "fully_dynamic":
        return VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                        options=TranslationOptions.fully_dynamic(),
                        functional=functional), False
    if mode == "height":
        return VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                        options=TranslationOptions.fully_dynamic_height(),
                        functional=functional), False
    if mode == "static":
        return VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                        options=TranslationOptions.hybrid(),
                        functional=functional), True
    if mode == "issue2":
        return VMConfig(cpu=CORTEX_A8, accelerator=None), False
    if mode == "issue4":
        return VMConfig(cpu=QUAD_ISSUE, accelerator=None), False
    raise KeyError(mode)


@dataclass
class SpeedupMatrix:
    """Per-benchmark speedups for every Figure 10 configuration."""

    benchmarks: list[str]
    by_mode: dict[str, dict[str, float]]

    def mean(self, mode: str) -> float:
        return arithmetic_mean(list(self.by_mode[mode].values()))


def run_speedup_matrix(benchmarks: Optional[list[Benchmark]] = None,
                       functional: bool = False) -> SpeedupMatrix:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base = baseline_runs(benches)
    by_mode: dict[str, dict[str, float]] = {}
    for mode, _label in MODES:
        config, annotate = _mode_config(mode, functional)
        runs = _run_suite(config, benchmarks=benches, annotate=annotate)
        by_mode[mode] = speedups(base, runs)
    return SpeedupMatrix(benchmarks=[b.name for b in benches],
                         by_mode=by_mode)


def format_speedup_matrix(matrix: SpeedupMatrix) -> str:
    headers = ["benchmark"] + [label for _m, label in MODES]
    rows = []
    for name in matrix.benchmarks:
        rows.append([name] + [fmt(matrix.by_mode[mode][name])
                              for mode, _ in MODES])
    rows.append(["MEAN"] + [fmt(matrix.mean(mode)) for mode, _ in MODES])
    paper_row = ["paper MEAN"]
    for mode, _ in MODES:
        paper_row.append(fmt(PAPER_MEANS[mode]) if mode in PAPER_MEANS
                         else "-")
    rows.append(paper_row)
    return format_table(headers, rows,
                        title="Figure 10: whole-application speedup over "
                              "the 1-issue baseline")

"""One-shot full reproduction report.

Runs every experiment in the repository and concatenates the formatted
outputs into a single document — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only -s``, usable as a library call or
via ``python -m repro all``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

SECTIONS: list[tuple[str, Callable[[], str]]] = []


def _section(title: str):
    def wrap(fn: Callable[[], str]):
        SECTIONS.append((title, fn))
        return fn
    return wrap


@_section("Figure 2")
def _fig2() -> str:
    from repro.experiments.fig2_coverage import format_coverage, run_coverage
    return format_coverage(run_coverage())


@_section("Figure 3(a)")
def _fig3a() -> str:
    from repro.experiments.sweeps import format_series, run_fu_sweep
    return format_series("Figure 3(a): function unit sweep", run_fu_sweep())


@_section("Figure 3(b)")
def _fig3b() -> str:
    from repro.experiments.sweeps import format_series, run_register_sweep
    return format_series("Figure 3(b): register sweep",
                         run_register_sweep())


@_section("Figure 4(a)")
def _fig4a() -> str:
    from repro.experiments.sweeps import format_series, run_stream_sweep
    return format_series("Figure 4(a): memory stream sweep",
                         run_stream_sweep())


@_section("Figure 4(b)")
def _fig4b() -> str:
    from repro.experiments.sweeps import format_series, run_max_ii_sweep
    return format_series("Figure 4(b): maximum II sweep",
                         run_max_ii_sweep())


@_section("Section 3.2 design point")
def _design() -> str:
    from repro.experiments.design_point import (
        format_area_table,
        format_design_point,
        run_area_table,
        run_design_point,
    )
    return (format_design_point(run_design_point()) + "\n\n"
            + format_area_table(run_area_table()))


@_section("Figure 6")
def _fig6() -> str:
    from repro.experiments.fig6_overhead import (
        format_overhead,
        run_overhead_sweep,
    )
    return format_overhead(run_overhead_sweep())


@_section("Figure 7")
def _fig7() -> str:
    from repro.experiments.fig7_transforms import (
        format_transforms,
        run_transform_comparison,
    )
    return format_transforms(run_transform_comparison())


@_section("Figure 8")
def _fig8() -> str:
    from repro.experiments.fig8_translation import (
        format_translation,
        run_translation_profile,
    )
    return format_translation(run_translation_profile())


@_section("Figure 10")
def _fig10() -> str:
    from repro.experiments.fig10_speedup import (
        format_speedup_matrix,
        run_speedup_matrix,
    )
    return format_speedup_matrix(run_speedup_matrix())


@_section("Static MII tradeoff (Section 4.2)")
def _static_mii() -> str:
    from repro.experiments.static_tradeoffs import (
        format_static_mii,
        run_static_mii_study,
    )
    return format_static_mii(run_static_mii_study())


@_section("Footnote 3 (priority under latency drift)")
def _footnote3() -> str:
    from repro.experiments.static_tradeoffs import (
        format_footnote3,
        run_footnote3_study,
    )
    return format_footnote3(run_footnote3_study())


@_section("Speculation support (Section 2.2's road not taken)")
def _speculation() -> str:
    from repro.experiments.speculation import (
        format_speculation,
        run_speculation_study,
    )
    return format_speculation(run_speculation_study())


@_section("Kernel utilization (overlapped execution)")
def _utilization() -> str:
    from repro.experiments.utilization import (
        format_utilization,
        run_utilization,
    )
    return format_utilization(run_utilization())


@_section("Amortization (bus latency & trip-count crossover)")
def _amortization() -> str:
    from repro.experiments.amortization import (
        format_amortization,
        run_bus_sweep,
        run_trip_crossover,
    )
    return format_amortization(run_bus_sweep(), run_trip_crossover())


def full_report(progress: Optional[Callable[[str], None]] = None) -> str:
    """Run every experiment and return one formatted document."""
    banner = ("VEAL: Virtualized Execution Accelerator for Loops "
              "(ISCA 2008) — full reproduction report")
    parts = [banner, "=" * len(banner)]
    for title, fn in SECTIONS:
        if progress is not None:
            progress(title)
        started = time.time()
        body = fn()
        elapsed = time.time() - started
        rule = "-" * 72
        parts.append(f"{rule}\n{title}  [{elapsed:.1f}s]\n{rule}\n{body}")
    return "\n\n".join(parts) + "\n"

"""Invocation-overhead amortization: bus latency and trip-count crossovers.

Two claims around Section 4.3's setup are made testable:

* "Communication overhead between the general purpose processor and the
  LA was assumed to be a fixed 10 cycles ... although this latency is
  largely irrelevant given the streaming nature of the target
  applications."  We sweep the bus latency an order of magnitude in
  both directions and measure how much the suite actually cares.

* The flip side — the synchronisation overhead is paid per
  *invocation*, so short-trip loops have a break-even point below which
  the accelerator loses.  We locate that crossover per bus latency,
  the kind of number a runtime would use as a hot-loop threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.accelerator.machine import LoopAccelerator
from repro.cpu.pipeline import ARM11, InOrderPipeline
from repro.experiments.common import (
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    _run_suite,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.vm.translator import translate_loop
from repro.workloads import kernels as K
from repro.workloads.suite import Benchmark, media_fp_benchmarks

BUS_POINTS = [0, 10, 50, 100, 200]


@dataclass
class BusSweepPoint:
    bus_latency: int
    mean_speedup: float


def run_bus_sweep(benchmarks: Optional[list[Benchmark]] = None
                  ) -> list[BusSweepPoint]:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base = baseline_runs(benches)
    points = []
    for bus in BUS_POINTS:
        config = VMConfig(
            cpu=ARM11,
            accelerator=PROPOSED_LA.with_(bus_latency=bus),
            charge_translation=False, functional=False)
        runs = _run_suite(config, benchmarks=benches)
        points.append(BusSweepPoint(
            bus, arithmetic_mean(list(speedups(base, runs).values()))))
    return points


@dataclass
class CrossoverRow:
    bus_latency: int
    trips: list[int]
    speedups: list[float]

    @property
    def break_even_trips(self) -> Optional[int]:
        for trip, s in zip(self.trips, self.speedups):
            if s >= 1.0:
                return trip
        return None


TRIP_POINTS = [2, 4, 8, 16, 32, 64, 128, 512]


def run_trip_crossover(kernel_factory=K.color_convert,
                       bus_points: Optional[list[int]] = None
                       ) -> list[CrossoverRow]:
    """Per-invocation speedup of one kernel vs its trip count."""
    buses = [10, 50, 200] if bus_points is None else bus_points
    pipe = InOrderPipeline(ARM11)
    rows = []
    for bus in buses:
        config = PROPOSED_LA.with_(bus_latency=bus)
        accel = LoopAccelerator(config)
        gains = []
        for trips in TRIP_POINTS:
            loop = kernel_factory(trip_count=trips)
            result = translate_loop(loop, config)
            assert result.ok, result.failure
            accel_cycles = accel.estimate(result.image).total_cycles
            scalar_cycles = pipe.loop_cycles(loop)
            gains.append(scalar_cycles / accel_cycles)
        rows.append(CrossoverRow(bus, list(TRIP_POINTS), gains))
    return rows


def format_amortization(bus_points: list[BusSweepPoint],
                        crossover: list[CrossoverRow]) -> str:
    bus_table = format_table(
        ["bus latency (cycles)", "mean suite speedup"],
        [(p.bus_latency, fmt(p.mean_speedup)) for p in bus_points],
        title="Bus-latency sensitivity (paper: 'largely irrelevant')")
    headers = ["trip count"] + [f"bus={r.bus_latency}" for r in crossover]
    rows = []
    for i, trip in enumerate(TRIP_POINTS):
        rows.append([trip] + [fmt(r.speedups[i]) for r in crossover])
    rows.append(["break-even"]
                + [str(r.break_even_trips) for r in crossover])
    cross_table = format_table(
        headers, rows,
        title="Per-invocation speedup vs trip count (color_convert)")
    return bus_table + "\n\n" + cross_table

"""Design-space exploration sweeps (Figures 3 and 4, Section 3.1).

"The baseline architecture in our design space exploration assumes a
hypothetical LA with infinite resources ... Architectural parameters
were then individually varied to determine what fraction of the
infinite-resources speedup was attainable using finite resources."

Each sweep point produces the mean (over the media/FP suite) of
``app_speedup(point) / app_speedup(infinite)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.accelerator.config import INFINITE_LA, LAConfig
from repro.cca.model import DEFAULT_CCA
from repro.cpu.pipeline import ARM11
from repro.experiments.common import (
    _run_suite,
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.workloads.suite import Benchmark, media_fp_benchmarks


@dataclass
class SweepSeries:
    """One line of a design-space figure."""

    label: str
    xs: list[int]
    fractions: list[float]


def _config_vm(config: LAConfig) -> VMConfig:
    return VMConfig(cpu=ARM11, accelerator=config, charge_translation=False,
                    functional=False)


def _baseline_and_infinite(benches: list[Benchmark]) -> tuple[dict, dict]:
    """Baseline runs + infinite-resource speedups for *benches*.

    Memoised process-wide under the suite's content digest
    (:func:`~repro.experiments.common.suite_digest`) — every sweep
    series normalising against the same suite shares one computation,
    and the key cannot alias the way an ``id()``-based one could.
    """
    from repro import perf
    from repro.experiments.common import suite_digest
    key = suite_digest(benches)
    cached = perf.baseline_cache.get(key)
    if cached is None:
        base = baseline_runs(benches)
        infinite = speedups(
            base, _run_suite(_config_vm(INFINITE_LA), benchmarks=benches))
        cached = (base, infinite)
        perf.baseline_cache[key] = cached
    return cached


def _sweep_point(payload) -> float:
    """Top-level (picklable) worker: one design point's mean fraction."""
    config, benches, base, infinite = payload
    point = speedups(base, _run_suite(_config_vm(config), benchmarks=benches))
    fractions = []
    for name in point:
        # The paper's metric: what fraction of the infinite-resource
        # speedup does the finite design attain (speedup ratio).
        fractions.append(max(0.0, min(point[name] / infinite[name], 1.0)))
    return arithmetic_mean(fractions)


def _fraction_of_infinite(config: LAConfig,
                          benchmarks: Optional[list[Benchmark]] = None
                          ) -> float:
    """Mean fraction of infinite-resource speedup under *config*."""
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base, infinite = _baseline_and_infinite(benches)
    return _sweep_point((config, benches, base, infinite))


def fraction_of_infinite(config: LAConfig,
                         benchmarks: Optional[list[Benchmark]] = None
                         ) -> float:
    """Deprecated alias of :func:`repro.api.fraction_of_infinite`."""
    from repro.deprecation import warn_once
    warn_once("repro.experiments.sweeps.fraction_of_infinite",
              "repro.api.fraction_of_infinite")
    return _fraction_of_infinite(config, benchmarks=benchmarks)


def _sweep(label: str, xs: list[int],
           make_config: Callable[[int], LAConfig],
           benchmarks: Optional[list[Benchmark]] = None,
           jobs: Optional[int] = None) -> SweepSeries:
    """Evaluate ``make_config(x)`` for every x.

    The configs are materialised up front (``make_config`` may be a
    lambda, which cannot cross a process boundary) and the points fan
    out over :func:`~repro.perf.parallel.parallel_map`; fractions come
    back in x order, so the series is identical at any job count.

    A failing point is never silently swallowed: it surfaces as a
    typed :class:`~repro.errors.WorkerTaskError` naming the series and
    the x value that produced it (``"IEx (1 CCA)[x=8]"``).
    """
    from repro.perf.parallel import parallel_map
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base, infinite = _baseline_and_infinite(benches)
    payloads = [(make_config(x), benches, base, infinite) for x in xs]
    fractions = parallel_map(_sweep_point, payloads, jobs=jobs,
                             label_of=lambda i: f"{label}[x={xs[i]}]")
    return SweepSeries(label=label, xs=xs, fractions=fractions)


def sweep(label: str, xs: list[int],
          make_config: Callable[[int], LAConfig],
          benchmarks: Optional[list[Benchmark]] = None,
          jobs: Optional[int] = None) -> SweepSeries:
    """Deprecated alias of :func:`repro.api.sweep`."""
    from repro.deprecation import warn_once
    warn_once("repro.experiments.sweeps.sweep", "repro.api.sweep")
    return _sweep(label, xs, make_config, benchmarks=benchmarks, jobs=jobs)


# -- Figure 3(a): function units ---------------------------------------------

INT_UNIT_POINTS = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32]
FP_UNIT_POINTS = [1, 2, 3, 4, 6, 8]


def run_fu_sweep(benchmarks: Optional[list[Benchmark]] = None
                 ) -> list[SweepSeries]:
    """Integer units (with and without a CCA) and FP units."""
    series = [
        _sweep("IEx (no CCA)", INT_UNIT_POINTS,
              lambda k: INFINITE_LA.with_(num_int_units=k, num_ccas=0),
              benchmarks),
        _sweep("IEx (1 CCA)", INT_UNIT_POINTS,
              lambda k: INFINITE_LA.with_(num_int_units=k, num_ccas=1,
                                          cca=DEFAULT_CCA),
              benchmarks),
        _sweep("FEx", FP_UNIT_POINTS,
              lambda k: INFINITE_LA.with_(num_fp_units=k), benchmarks),
    ]
    return series


# -- Figure 3(b): registers ------------------------------------------------------

REGISTER_POINTS = [1, 2, 4, 8, 12, 16, 24, 32, 64]


def run_register_sweep(benchmarks: Optional[list[Benchmark]] = None
                       ) -> list[SweepSeries]:
    return [
        _sweep("integer registers", REGISTER_POINTS,
              lambda k: INFINITE_LA.with_(num_int_regs=k), benchmarks),
        _sweep("floating-point registers", REGISTER_POINTS,
              lambda k: INFINITE_LA.with_(num_fp_regs=k), benchmarks),
    ]


# -- Figure 4(a): memory streams ----------------------------------------------------

LOAD_STREAM_POINTS = [1, 2, 4, 6, 8, 12, 16, 24, 32]
STORE_STREAM_POINTS = [0, 1, 2, 4, 6, 8, 12, 16]


def run_stream_sweep(benchmarks: Optional[list[Benchmark]] = None
                     ) -> list[SweepSeries]:
    return [
        _sweep("load streams", LOAD_STREAM_POINTS,
              lambda k: INFINITE_LA.with_(load_streams=k), benchmarks),
        _sweep("store streams", STORE_STREAM_POINTS,
              lambda k: INFINITE_LA.with_(store_streams=k), benchmarks),
    ]


# -- Figure 4(b): maximum II ----------------------------------------------------------

MAX_II_POINTS = [2, 4, 6, 8, 12, 16, 24, 32, 64]


def run_max_ii_sweep(benchmarks: Optional[list[Benchmark]] = None
                     ) -> list[SweepSeries]:
    return [
        _sweep("maximum II", MAX_II_POINTS,
              lambda k: INFINITE_LA.with_(max_ii=k), benchmarks),
    ]


def format_series(title: str, series: list[SweepSeries]) -> str:
    from repro.experiments.plot import Series, ascii_chart
    blocks = [title]
    for s in series:
        rows = [(x, fmt(f, 3)) for x, f in zip(s.xs, s.fractions)]
        blocks.append(format_table([s.label, "fraction of infinite"],
                                   rows))
    chart = ascii_chart(
        [Series(s.label, s.xs, s.fractions) for s in series],
        y_label="fraction of infinite-resource speedup",
        x_label=series[0].label.split(" (")[0] if series else "")
    blocks.append(chart)
    return "\n\n".join(blocks)

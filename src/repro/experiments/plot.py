"""ASCII line charts for the figure reproductions.

The paper's design-space results are line charts; the experiment
formatters embed a terminal rendering alongside the numeric tables so
`python -m repro fig3a` visually resembles Figure 3(a).  Pure
fixed-width text — no plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Marker characters assigned to series in order.
MARKERS = "ox*+#@%&"


@dataclass
class Series:
    """One line of a chart."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]


def ascii_chart(series: list[Series], width: int = 64, height: int = 16,
                title: str = "", y_label: str = "",
                x_label: str = "") -> str:
    """Render *series* as a fixed-width ASCII chart.

    X positions use the rank of each distinct x value (the paper's
    sweeps are log-ish spaced, so rank spacing reads better than linear).
    """
    if not series or not any(s.xs for s in series):
        return "(no data)"
    all_x = sorted({x for s in series for x in s.xs})
    all_y = [y for s in series for y in s.ys]
    y_min = min(all_y + [0.0])
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_pos = {x: (i * (width - 1)) // max(len(all_x) - 1, 1)
             for i, x in enumerate(all_x)}

    def row_of(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        points = sorted(zip(s.xs, s.ys))
        # connect consecutive points with interpolated dots
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            c0, c1 = x_pos[x0], x_pos[x1]
            for col in range(c0, c1 + 1):
                t = 0 if c1 == c0 else (col - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                r = row_of(y)
                if grid[r][col] == " ":
                    grid[r][col] = "."
        for x, y in points:
            grid[row_of(y)][x_pos[x]] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.2f}"
    bottom_label = f"{y_min:.2f}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}|")
    axis = " " * pad + " +" + "-" * width + "+"
    lines.append(axis)
    ticks = " " * (pad + 2)
    tick_line = [" "] * width
    for x in (all_x[0], all_x[len(all_x) // 2], all_x[-1]):
        pos = x_pos[x]
        text = f"{x:g}"
        start = min(pos, width - len(text))
        for k, ch in enumerate(text):
            tick_line[start + k] = ch
    lines.append(ticks + "".join(tick_line))
    legend = "   ".join(f"{MARKERS[i % len(MARKERS)]} {s.label}"
                        for i, s in enumerate(series))
    lines.append((" " * (pad + 2)) + legend)
    if x_label or y_label:
        lines.append((" " * (pad + 2))
                     + f"x: {x_label}   y: {y_label}".strip())
    return "\n".join(lines)

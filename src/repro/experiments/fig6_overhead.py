"""Figure 6: speedup vs. per-loop translation overhead.

"This graph shows the average speedup across benchmarks when varying
the translation cost per loop ... The various lines reflect how
frequently the translation penalty must be paid."  The paper's anchor
points: at a 1% retranslation rate, overhead 100,000 cycles gives a
speedup of about 1.47 and 20,000 cycles about 1.92.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.cpu.pipeline import ARM11
from repro.experiments.common import (
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    _run_suite,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.workloads.suite import Benchmark, media_fp_benchmarks

#: Per-loop translation overheads swept on the x axis (cycles).
OVERHEAD_POINTS = [0, 10_000, 20_000, 40_000, 60_000, 80_000, 100_000,
                   140_000, 200_000]

#: Retranslation frequencies (the line family): translate once, or
#: retranslate on 0.1% / 1% / 10% of invocations due to cache misses.
MISS_RATES = [("translate once", 0.0), ("0.1% of invocations", 0.001),
              ("1% of invocations", 0.01), ("10% of invocations", 0.10)]


@dataclass
class OverheadSeries:
    label: str
    miss_rate: float
    overheads: list[int]
    mean_speedups: list[float]


def run_overhead_sweep(benchmarks: Optional[list[Benchmark]] = None
                       ) -> list[OverheadSeries]:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base = baseline_runs(benches)
    series: list[OverheadSeries] = []
    for label, rate in MISS_RATES:
        means: list[float] = []
        for overhead in OVERHEAD_POINTS:
            config = VMConfig(
                cpu=ARM11, accelerator=PROPOSED_LA,
                charge_translation=True,
                translation_overhead_override=float(overhead),
                miss_rate_override=rate if rate > 0 else None,
                functional=False)
            runs = _run_suite(config, benchmarks=benches)
            means.append(arithmetic_mean(list(speedups(base, runs).values())))
        series.append(OverheadSeries(label=label, miss_rate=rate,
                                     overheads=list(OVERHEAD_POINTS),
                                     mean_speedups=means))
    return series


def format_overhead(series: list[OverheadSeries]) -> str:
    from repro.experiments.plot import Series, ascii_chart
    headers = ["overhead (cycles/loop)"] + [s.label for s in series]
    rows = []
    for i, overhead in enumerate(OVERHEAD_POINTS):
        rows.append([overhead] + [fmt(s.mean_speedups[i]) for s in series])
    table = format_table(headers, rows,
                         title="Figure 6: speedup vs translation overhead")
    chart = ascii_chart(
        [Series(s.label, s.overheads, s.mean_speedups) for s in series],
        y_label="mean speedup", x_label="translation overhead (cycles)")
    return table + "\n\n" + chart

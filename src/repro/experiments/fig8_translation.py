"""Figure 8: the measured translation penalty per loop.

Translates every loop of the suite against the proposed accelerator and
reports modelled instructions per phase.  Paper anchors: ~99,716
instructions per loop on average — 69% priority calculation, 20% CCA
mapping, ResMII+RecMII ~1,250, scheduling+register assignment ~9,650
with scheduling below 3% of the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import PROPOSED_LA, LAConfig
from repro.experiments.common import format_table, fmt
from repro.vm.costmodel import PHASES
from repro.vm.translator import TranslationOptions, translate_loop
from repro.workloads.suite import Benchmark, media_fp_benchmarks


@dataclass
class TranslationProfile:
    """Per-benchmark average translation cost with phase breakdown.

    ``skipped`` tallies untranslatable loops by their typed failure kind
    (the :mod:`repro.errors` taxonomy) so the profile reports *why*
    coverage is incomplete, not just that it is.
    """

    benchmark: str
    loops: int
    avg_instructions: float
    phase_instructions: dict[str, float] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)


def run_translation_profile(
        benchmarks: Optional[list[Benchmark]] = None,
        config: LAConfig = PROPOSED_LA,
        options: TranslationOptions = TranslationOptions(),
) -> list[TranslationProfile]:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    profiles: list[TranslationProfile] = []
    for bench in benches:
        totals = {p: 0.0 for p in PHASES}
        count = 0
        skipped: dict[str, int] = {}
        for loop in bench.kernels:
            result = translate_loop(loop, config, options)
            if not result.ok:
                kind = result.failure_kind or "unknown"
                skipped[kind] = skipped.get(kind, 0) + 1
                continue
            count += 1
            for phase, instrs in result.meter.instructions().items():
                totals[phase] += instrs
        if count == 0:
            continue
        profiles.append(TranslationProfile(
            benchmark=bench.name, loops=count,
            avg_instructions=sum(totals.values()) / count,
            phase_instructions={p: v / count for p, v in totals.items()},
            skipped=skipped,
        ))
    return profiles


def suite_average(profiles: list[TranslationProfile]) -> dict[str, float]:
    """Loop-weighted suite-wide phase averages (instructions/loop)."""
    totals = {p: 0.0 for p in PHASES}
    loops = 0
    for prof in profiles:
        loops += prof.loops
        for p in PHASES:
            totals[p] += prof.phase_instructions[p] * prof.loops
    return {p: totals[p] / max(loops, 1) for p in PHASES}


def format_translation(profiles: list[TranslationProfile]) -> str:
    headers = ["benchmark", "loops", "avg instr"] + list(PHASES)
    rows = []
    for prof in profiles:
        rows.append([prof.benchmark, prof.loops,
                     f"{prof.avg_instructions:,.0f}"]
                    + [f"{prof.phase_instructions[p]:,.0f}" for p in PHASES])
    avg = suite_average(profiles)
    total = sum(avg.values())
    rows.append(["AVERAGE", "", f"{total:,.0f}"]
                + [f"{avg[p]:,.0f}" for p in PHASES])
    shares = (f"\npriority share {fmt(100 * avg['priority'] / total, 1)}% "
              f"(paper 69%), CCA share {fmt(100 * avg['cca'] / total, 1)}% "
              f"(paper 20%), ResMII+RecMII "
              f"{avg['resmii'] + avg['recmii']:,.0f} (paper ~1,250), "
              f"scheduling+regalloc "
              f"{avg['scheduling'] + avg['regalloc']:,.0f} (paper ~9,650)")
    skipped: dict[str, int] = {}
    for prof in profiles:
        for kind, n in prof.skipped.items():
            skipped[kind] = skipped.get(kind, 0) + n
    if skipped:
        shares += ("\nuntranslated loops by failure kind: "
                   + ", ".join(f"{kind}={n}"
                               for kind, n in sorted(skipped.items())))
    return format_table(headers, rows,
                        title="Figure 8: translation penalty per loop "
                              "(modelled instructions)") + shares

"""Figure 8: the measured translation penalty per loop.

Translates every loop of the suite against the proposed accelerator and
reports modelled instructions per phase.  Paper anchors: ~99,716
instructions per loop on average — 69% priority calculation, 20% CCA
mapping, ResMII+RecMII ~1,250, scheduling+register assignment ~9,650
with scheduling below 3% of the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.accelerator.config import PROPOSED_LA, LAConfig
from repro.experiments.common import format_table, fmt
from repro.vm.costmodel import PHASES
from repro.vm.translator import TranslationOptions, translate_loop
from repro.workloads.suite import Benchmark, media_fp_benchmarks


@dataclass
class TranslationProfile:
    """Per-benchmark average translation cost with phase breakdown.

    ``skipped`` tallies untranslatable loops by their typed failure kind
    (the :mod:`repro.errors` taxonomy) so the profile reports *why*
    coverage is incomplete, not just that it is.  A benchmark whose
    every loop failed translation still yields a profile — with
    ``loops=0``, all-zero phase data and its ``skipped`` tally intact —
    rather than vanishing from the report with its failure counts.

    ``phase_totals`` keeps the *unrounded* per-phase instruction sums in
    loop order: the translate spans in a trace file carry the same
    per-loop values, so a trace reconciles with the figure exactly (the
    default phase weights are integral, making every value and sum an
    exactly-representable float).
    """

    benchmark: str
    loops: int
    avg_instructions: float
    phase_instructions: dict[str, float] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)
    phase_totals: dict[str, float] = field(default_factory=dict)


def _profile_one_benchmark(payload) -> TranslationProfile:
    """Translate one benchmark's loops (pool-worker task).

    Consumes the translator's own ``translate`` spans — captured
    in-process via :func:`repro.obs.collect`, no file sink needed —
    instead of reading meters directly, so the figure is built from the
    same records a trace file would carry.
    """
    bench, config, options = payload
    totals = {p: 0.0 for p in PHASES}
    count = 0
    skipped: dict[str, int] = {}
    with obs.span("profile_benchmark", component="fig8",
                  benchmark=bench.name) as bsp:
        for loop in bench.kernels:
            with obs.collect() as log:
                translate_loop(loop, config, options)
            details = log.latest(name="translate",
                                 component="translator")["details"]
            if not details["attrs"].get("ok"):
                kind = details["attrs"].get("failure_kind") or "unknown"
                skipped[kind] = skipped.get(kind, 0) + 1
                continue
            count += 1
            for phase, instrs in details.get("instructions", {}).items():
                totals[phase] += instrs
        if bsp:
            bsp.set(loops=count, skipped=sum(skipped.values()))
    return TranslationProfile(
        benchmark=bench.name, loops=count,
        avg_instructions=sum(totals.values()) / count if count else 0.0,
        phase_instructions={p: (v / count if count else 0.0)
                            for p, v in totals.items()},
        skipped=skipped,
        phase_totals=dict(totals),
    )


def run_translation_profile(
        benchmarks: Optional[list[Benchmark]] = None,
        config: LAConfig = PROPOSED_LA,
        options: TranslationOptions = TranslationOptions(),
        jobs: Optional[int] = None,
) -> list[TranslationProfile]:
    from repro.perf.parallel import parallel_map

    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    payloads = [(bench, config, options) for bench in benches]
    return parallel_map(_profile_one_benchmark, payloads, jobs=jobs,
                        label_of=lambda i: benches[i].name)


def suite_average(profiles: list[TranslationProfile]) -> dict[str, float]:
    """Loop-weighted suite-wide phase averages (instructions/loop)."""
    totals = {p: 0.0 for p in PHASES}
    loops = 0
    for prof in profiles:
        loops += prof.loops
        for p in PHASES:
            totals[p] += prof.phase_instructions[p] * prof.loops
    return {p: totals[p] / max(loops, 1) for p in PHASES}


def format_translation(profiles: list[TranslationProfile]) -> str:
    headers = ["benchmark", "loops", "avg instr"] + list(PHASES)
    rows = []
    for prof in profiles:
        rows.append([prof.benchmark, prof.loops,
                     f"{prof.avg_instructions:,.0f}"]
                    + [f"{prof.phase_instructions[p]:,.0f}" for p in PHASES])
    avg = suite_average(profiles)
    total = sum(avg.values())
    rows.append(["AVERAGE", "", f"{total:,.0f}"]
                + [f"{avg[p]:,.0f}" for p in PHASES])
    if total > 0:
        shares = (
            f"\npriority share {fmt(100 * avg['priority'] / total, 1)}% "
            f"(paper 69%), CCA share {fmt(100 * avg['cca'] / total, 1)}% "
            f"(paper 20%), ResMII+RecMII "
            f"{avg['resmii'] + avg['recmii']:,.0f} (paper ~1,250), "
            f"scheduling+regalloc "
            f"{avg['scheduling'] + avg['regalloc']:,.0f} (paper ~9,650)")
    else:
        shares = "\nno loops translated"
    skipped: dict[str, int] = {}
    for prof in profiles:
        for kind, n in prof.skipped.items():
            skipped[kind] = skipped.get(kind, 0) + n
    if skipped:
        shares += ("\nuntranslated loops by failure kind: "
                   + ", ".join(f"{kind}={n}"
                               for kind, n in sorted(skipped.items())))
    return format_table(headers, rows,
                        title="Figure 8: translation penalty per loop "
                              "(modelled instructions)") + shares

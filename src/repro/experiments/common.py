"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module exposes a ``run_*`` function returning plain
data (dicts / dataclasses) plus a ``format_*`` function rendering the
same rows/series the paper's figure or table reports.  The benchmark
harness under ``benchmarks/`` simply calls these and prints the output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.accelerator.config import LAConfig
from repro.cpu.pipeline import ARM11
from repro.isa.annotations import annotate_for_veal
from repro.vm.runtime import AppRun, VMConfig, VirtualMachine
from repro.vm.translator import TranslationOptions
from repro.workloads.suite import Benchmark, media_fp_benchmarks


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def annotate_benchmark(benchmark: Benchmark) -> Benchmark:
    """A copy of *benchmark* whose kernels carry the static VEAL
    annotations (Figure 9): CCA subgraphs + scheduling priority."""
    annotated = [annotate_for_veal(k) for k in benchmark.kernels]
    return replace(benchmark, kernels=annotated,
                   _arm11_loop_cycles=None)


def suite_digest(benchmarks: Sequence[Benchmark]) -> str:
    """Content digest of a benchmark list.

    Two suite objects with identical contents (names, kernel loops,
    scalars, seeds, acyclic fractions) digest identically no matter
    when or where they were constructed — the key under which
    baseline/infinite runs are shared across sweep series and worker
    processes (unlike an ``id()``-based key, which a garbage collector
    can reuse for a different list).
    """
    from repro.perf.digest import digest_of, loop_digest
    parts = []
    for b in benchmarks:
        parts.append((
            b.name, b.suite,
            tuple(loop_digest(k) for k in b.kernels),
            b.acyclic_fraction, b.scalars, b.data_seed,
            tuple(loop_digest(k) for k in (b.untransformed_kernels or ())),
        ))
    return digest_of("suite", parts)


def _run_one_benchmark(payload) -> AppRun:
    """Top-level (picklable) worker: one benchmark under one config."""
    config, bench, annotate = payload
    if annotate:
        bench = annotate_benchmark(bench)
    vm = VirtualMachine(config)
    return vm.run_benchmark(bench)


def _run_suite(config: VMConfig,
               benchmarks: Optional[list[Benchmark]] = None,
               annotate: bool = False,
               jobs: Optional[int] = None) -> dict[str, AppRun]:
    """Run every benchmark under *config*; returns runs by name.

    ``jobs`` > 1 fans the benchmarks over worker processes (default:
    the global ``--jobs`` setting); results merge in benchmark order
    either way, so the returned mapping is identical to a serial run.
    """
    from repro.perf.parallel import parallel_map
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    payloads = [(config, bench, annotate) for bench in benches]
    runs = parallel_map(_run_one_benchmark, payloads, jobs=jobs,
                        label_of=lambda i: f"benchmark {benches[i].name}")
    return {bench.name: run for bench, run in zip(benches, runs)}


def run_suite(config: VMConfig,
              benchmarks: Optional[list[Benchmark]] = None,
              annotate: bool = False,
              jobs: Optional[int] = None) -> dict[str, AppRun]:
    """Deprecated alias of :func:`repro.api.run_suite`."""
    from repro.deprecation import warn_once
    warn_once("repro.experiments.common.run_suite", "repro.api.run_suite")
    return _run_suite(config, benchmarks=benchmarks, annotate=annotate,
                      jobs=jobs)


def baseline_runs(benchmarks: Optional[list[Benchmark]] = None
                  ) -> dict[str, AppRun]:
    """The ARM11-without-accelerator baseline every speedup divides by."""
    return _run_suite(VMConfig(cpu=ARM11, accelerator=None),
                      benchmarks=benchmarks)


def speedups(base: dict[str, AppRun], runs: dict[str, AppRun]
             ) -> dict[str, float]:
    return {name: base[name].total_cycles / runs[name].total_cycles
            for name in runs}


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table used by every experiment report."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"

"""What would speculation support buy? (Section 2.2's road not taken.)

"While-loops and loops with side exits require special hardware
support, such as speculative memory accesses [21, 24].  Although it is
feasible to support while-loops and loops with side exits, we chose to
preclude them from this study ...  Lack of support for loops requiring
speculation will limit the utility of the LA for some applications
(e.g., the applications on the right portion of Figure 2)."

This experiment builds the accelerator both ways and measures exactly
that utility gap on the SPECint-style control benchmarks, whose time is
dominated by while-loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.cpu.pipeline import ARM11
from repro.experiments.common import (
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    _run_suite,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.workloads.suite import Benchmark, control_benchmarks

#: The proposed design plus speculative memory access support.
SPECULATIVE_LA = PROPOSED_LA.with_(name="VEAL+speculation",
                                   supports_speculation=True)


@dataclass
class SpeculationRow:
    benchmark: str
    speedup_baseline_la: float
    speedup_speculative_la: float

    @property
    def gain(self) -> float:
        return self.speedup_speculative_la / self.speedup_baseline_la


def run_speculation_study(benchmarks: Optional[list[Benchmark]] = None
                          ) -> list[SpeculationRow]:
    benches = control_benchmarks() if benchmarks is None else benchmarks
    base = baseline_runs(benches)
    plain_cfg = VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                         charge_translation=False, functional=False)
    spec_cfg = VMConfig(cpu=ARM11, accelerator=SPECULATIVE_LA,
                        charge_translation=False, functional=False)
    plain = speedups(base, _run_suite(plain_cfg, benchmarks=benches))
    spec = speedups(base, _run_suite(spec_cfg, benchmarks=benches))
    return [SpeculationRow(b.name, plain[b.name], spec[b.name])
            for b in benches]


def format_speculation(rows: list[SpeculationRow]) -> str:
    table = [(r.benchmark, fmt(r.speedup_baseline_la),
              fmt(r.speedup_speculative_la), fmt(r.gain)) for r in rows]
    mean_plain = arithmetic_mean([r.speedup_baseline_la for r in rows])
    mean_spec = arithmetic_mean([r.speedup_speculative_la for r in rows])
    return format_table(
        ["benchmark", "speedup (paper's LA)", "speedup (+speculation)",
         "gain"],
        table,
        title="Section 2.2's road not taken: speculative memory support "
              "on the SPECint controls",
    ) + (f"\nmean speedup {fmt(mean_plain)} -> {fmt(mean_spec)}: "
         f"speculation support unlocks the while-loop time the paper's "
         f"design leaves on the scalar core, at the cost of the "
         f"memory-ordering/poison hardware the paper avoided.")

"""Figure 7: the value of static loop transformations.

"Each bar in this graph shows the fraction of speedup attained by
binaries without loop transforms (i.e., compiled normally) compared to
binaries compiled with loop transformations ... On average, not
performing loop transformations reduced speedup attained by the
accelerator by 75%."

The untransformed binary presents loop shapes the runtime cannot
retarget: un-fissioned too-large loops (which fail the max-II /
stream checks for real) and loops whose accelerable form required
if-conversion, aggressive inlining or unrolling adjustment (gated by
the kernels' ``static_transforms`` annotations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.cpu.pipeline import ARM11
from repro.experiments.common import (
    arithmetic_mean,
    baseline_runs,
    format_table,
    fmt,
    _run_suite,
    speedups,
)
from repro.vm.runtime import VMConfig
from repro.workloads.suite import Benchmark, media_fp_benchmarks


@dataclass
class TransformRow:
    benchmark: str
    speedup_with: float
    speedup_without: float

    @property
    def fraction(self) -> float:
        """Fraction of the accelerator's *gain* retained without static
        transforms (0 when the runtime could retarget nothing)."""
        gain_with = self.speedup_with - 1.0
        gain_without = self.speedup_without - 1.0
        if gain_with <= 1e-9:
            return 1.0
        return max(0.0, min(gain_without / gain_with, 1.0))


def run_transform_comparison(benchmarks: Optional[list[Benchmark]] = None
                             ) -> list[TransformRow]:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    base = baseline_runs(benches)
    with_cfg = VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                        charge_translation=False, functional=False)
    without_cfg = VMConfig(cpu=ARM11, accelerator=PROPOSED_LA,
                           charge_translation=False, functional=False,
                           static_transforms_applied=False)
    s_with = speedups(base, _run_suite(with_cfg, benchmarks=benches))
    s_without = speedups(base, _run_suite(without_cfg, benchmarks=benches))
    return [TransformRow(b.name, s_with[b.name], s_without[b.name])
            for b in benches]


def format_transforms(rows: list[TransformRow]) -> str:
    table = [(r.benchmark, fmt(r.speedup_with), fmt(r.speedup_without),
              fmt(100 * r.fraction, 1)) for r in rows]
    mean_frac = arithmetic_mean([r.fraction for r in rows])
    footer = (f"\nmean fraction of speedup retained without transforms: "
              f"{fmt(100 * mean_frac, 1)}%  (paper: ~25%)")
    return format_table(
        ["benchmark", "speedup (transformed)", "speedup (normal binary)",
         "% retained"],
        table, title="Figure 7: impact of static loop transformations",
    ) + footer

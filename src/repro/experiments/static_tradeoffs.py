"""Section 4.2's rejected static encodings, quantified.

The paper argues two encodings should stay dynamic, on qualitative
grounds; this module measures both arguments:

* **Static ResMII/RecMII** ("Static ResMII and RecMII Calculation"):
  saving ~1,250 instructions is not worth it because an encoded ResMII
  is wrong on any other machine — too high produces poor schedules, too
  low makes scheduling take longer.  We bake the MII for the machine the
  compiler saw and translate for richer and poorer machines.

* **Static priority under latency drift** (footnote 3): "the
  criticality of recurrences are only architecture independent if
  execution latencies of the FUs remain consistent across the
  architectures (e.g., a multiplier is 3 cycles across different
  architectures)."  We encode priority under the canonical latencies and
  translate for a machine whose multiplier and FP units are slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.experiments.common import arithmetic_mean, format_table, fmt
from repro.ir.opcodes import LatencyModel, Opcode
from repro.isa.annotations import (
    annotate_static_mii,
    annotate_static_priority,
)
from repro.vm.translator import TranslationOptions, translate_loop
from repro.workloads.suite import Benchmark, media_fp_benchmarks


@dataclass
class StaticMIIRow:
    """One loop translated with baked-in vs freshly computed MII."""

    loop: str
    target: str
    ii_dynamic: Optional[int]
    ii_static: Optional[int]
    sched_units_dynamic: int
    sched_units_static: int


def run_static_mii_study(benchmarks: Optional[list[Benchmark]] = None
                         ) -> list[StaticMIIRow]:
    """Bake MII for the proposed LA; translate for richer/poorer LAs.

    * On a *richer* machine (4 int units) the encoded ResMII is
      unnecessarily high -> schedules start at an inflated II.
    * On a *poorer* machine (1 int unit) it is too low -> the scheduler
      burns extra attempts at impossible IIs.
    """
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    targets = {
        "same (2 int)": PROPOSED_LA,
        "richer (4 int)": PROPOSED_LA.with_(num_int_units=4),
        "poorer (1 int)": PROPOSED_LA.with_(num_int_units=1),
    }
    rows: list[StaticMIIRow] = []
    for bench in benches:
        for loop in bench.kernels:
            annotated = annotate_static_mii(loop, PROPOSED_LA.units())
            for label, target in targets.items():
                dyn = translate_loop(loop, target)
                sta = translate_loop(annotated, target,
                                     TranslationOptions(use_static_mii=True))
                rows.append(StaticMIIRow(
                    loop=loop.name, target=label,
                    ii_dynamic=dyn.image.ii if dyn.ok else None,
                    ii_static=sta.image.ii if sta.ok else None,
                    sched_units_dynamic=dyn.meter.units.get("scheduling", 0),
                    sched_units_static=sta.meter.units.get("scheduling", 0),
                ))
    return rows


def summarise_static_mii(rows: list[StaticMIIRow]) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for target in {"same (2 int)", "richer (4 int)", "poorer (1 int)"}:
        subset = [r for r in rows if r.target == target
                  and r.ii_dynamic is not None and r.ii_static is not None]
        out[target] = {
            "loops": len(subset),
            "mean_ii_dynamic": arithmetic_mean(
                [r.ii_dynamic for r in subset]),
            "mean_ii_static": arithmetic_mean(
                [r.ii_static for r in subset]),
            "mean_sched_units_dynamic": arithmetic_mean(
                [r.sched_units_dynamic for r in subset]),
            "mean_sched_units_static": arithmetic_mean(
                [r.sched_units_static for r in subset]),
        }
    return out


def format_static_mii(rows: list[StaticMIIRow]) -> str:
    summary = summarise_static_mii(rows)
    table = []
    for target in ("same (2 int)", "richer (4 int)", "poorer (1 int)"):
        s = summary[target]
        table.append((target, s["loops"],
                      fmt(s["mean_ii_dynamic"]), fmt(s["mean_ii_static"]),
                      fmt(s["mean_sched_units_dynamic"], 0),
                      fmt(s["mean_sched_units_static"], 0)))
    return format_table(
        ["target machine", "loops", "mean II (dynamic MII)",
         "mean II (static MII)", "sched work (dynamic)",
         "sched work (static)"],
        table,
        title="Section 4.2: why static ResMII/RecMII encoding was rejected")


@dataclass
class Footnote3Row:
    loop: str
    ii_dynamic: Optional[int]
    ii_static_priority: Optional[int]


#: The drifted machine of footnote 3: multiply and FP latencies change
#: between accelerator generations.
DRIFTED_LATENCIES = LatencyModel(overrides={
    Opcode.MUL: 5,
    Opcode.FADD: 6, Opcode.FSUB: 6, Opcode.FMUL: 6,
    Opcode.LOAD: 4, Opcode.FLOAD: 4,
})


def run_footnote3_study(benchmarks: Optional[list[Benchmark]] = None
                        ) -> list[Footnote3Row]:
    """Static priority (canonical latencies) vs dynamic priority, both
    scheduling for a machine with drifted FU latencies."""
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    rows: list[Footnote3Row] = []
    for bench in benches:
        for loop in bench.kernels:
            annotated = annotate_static_priority(loop)  # canonical latencies
            dyn = translate_loop(
                loop, PROPOSED_LA,
                TranslationOptions(latency_model=DRIFTED_LATENCIES))
            sta = translate_loop(
                annotated, PROPOSED_LA,
                TranslationOptions(use_static_priority=True,
                                   latency_model=DRIFTED_LATENCIES))
            rows.append(Footnote3Row(
                loop=loop.name,
                ii_dynamic=dyn.image.ii if dyn.ok else None,
                ii_static_priority=sta.image.ii if sta.ok else None))
    return rows


def format_footnote3(rows: list[Footnote3Row]) -> str:
    both = [r for r in rows
            if r.ii_dynamic is not None and r.ii_static_priority is not None]
    worse = [r for r in both if r.ii_static_priority > r.ii_dynamic]
    table = [(r.loop, r.ii_dynamic, r.ii_static_priority)
             for r in both if r.ii_static_priority != r.ii_dynamic]
    header = format_table(
        ["loop (only rows that differ)", "II dynamic prio",
         "II static prio"],
        table,
        title="Footnote 3: static priority under FU-latency drift")
    return header + (
        f"\n{len(worse)}/{len(both)} loops schedule at a worse II with "
        f"the stale static priority; mean II "
        f"{fmt(arithmetic_mean([r.ii_dynamic for r in both]))} (dynamic) "
        f"vs {fmt(arithmetic_mean([r.ii_static_priority for r in both]))} "
        f"(static).\n"
        f"This VALIDATES the paper's choice: the statically encoded "
        f"ordering stays near-optimal because the list scheduler's "
        f"placement windows are recomputed from the real latencies at "
        f"translation time — recurrence criticality, as footnote 3 "
        f"hopes, is 'largely architecture independent'.")

"""Accelerator utilization: how full the reservation table really runs.

The design-space exploration (Section 3) sizes the accelerator by how
much *speedup* each resource buys; this companion experiment reports the
dual view — measured per-resource occupancy of the kernel under the
proposed design, from the event-driven overlapped executor.  A resource
at 1.0 is the loop's ResMII bottleneck; chronically idle resources are
the area the CCA/fission decisions exist to reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import PROPOSED_LA
from repro.accelerator.jit import execute_pipelined
from repro.cpu.interpreter import standard_live_ins
from repro.experiments.common import format_table, fmt
from repro.vm.runtime import _prepare_memory
from repro.vm.translator import translate_loop
from repro.workloads.suite import Benchmark, DEFAULT_SCALARS, media_fp_benchmarks

RESOURCES = ("int", "fp", "cca", "ldgen", "stgen")


@dataclass
class UtilizationRow:
    loop: str
    ii: int
    inflight: int
    utilization: dict[str, float] = field(default_factory=dict)

    @property
    def bottleneck(self) -> str:
        if not self.utilization:
            return "-"
        return max(self.utilization, key=self.utilization.get)


def run_utilization(benchmarks: Optional[list[Benchmark]] = None,
                    trip_count: int = 32) -> list[UtilizationRow]:
    benches = media_fp_benchmarks() if benchmarks is None else benchmarks
    rows: list[UtilizationRow] = []
    seen: set[str] = set()
    for bench in benches:
        for loop in bench.kernels:
            base_name = loop.name.split("_", 1)[-1]
            if base_name in seen:
                continue
            seen.add(base_name)
            small = loop.rebuild()
            small.trip_count = min(loop.trip_count, trip_count)
            result = translate_loop(small, PROPOSED_LA)
            if not result.ok:
                continue
            memory = _prepare_memory(result.image.loop, seed=77)
            live = standard_live_ins(result.image.loop, memory,
                                     DEFAULT_SCALARS)
            run = execute_pipelined(result.image, memory, live,
                                     trip_count=small.trip_count)
            rows.append(UtilizationRow(
                loop=loop.name, ii=result.image.ii,
                inflight=run.max_inflight_iterations,
                utilization=dict(run.utilization)))
    return rows


def format_utilization(rows: list[UtilizationRow]) -> str:
    table = []
    for r in rows:
        table.append([r.loop, r.ii, r.inflight]
                     + [fmt(r.utilization.get(res, 0.0), 2)
                        for res in RESOURCES]
                     + [r.bottleneck])
    saturated = sum(1 for r in rows
                    if max(r.utilization.values(), default=0) > 0.95)
    return format_table(
        ["loop", "II", "iters in flight"] + list(RESOURCES)
        + ["bottleneck"],
        table,
        title="Measured kernel utilization on the proposed design "
              "(event-driven overlapped execution)",
    ) + (f"\n{saturated}/{len(rows)} kernels saturate a resource class — "
         f"their II is resource-bound; the rest are recurrence-bound.")

"""Benchmark the experiment engine against the reference serial path.

``python -m repro bench`` regenerates the selected figures three times:

1. **reference** — performance engine off (reference interpreter, no
   translation/cycles caching) and a single process: the pre-engine
   serial path, timed honestly from cold caches;
2. **engine (cold)** — engine on, caches cleared first, ``--jobs``
   workers: what a fresh CLI invocation costs;
3. **engine (warm)** — engine on with the caches left hot: what every
   subsequent figure in the same process costs.

The figure *text* must come out byte-identical across all three passes
(the engine's contract is bit-identical results, only faster); the
report records per-figure wall clock, the speedup, the equality
verdict, cache statistics, and the aggregate speedup over the
design-space sweep figures — written to
``benchmarks/results/BENCH_experiments.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro import obs, perf

#: The Figure 3/4 design-space sweeps — the acceptance target
#: (>= 3x end-to-end vs. the reference serial path) aggregates these.
SWEEP_FIGURES = ("fig3a", "fig3b", "fig4a", "fig4b")

DEFAULT_OUTPUT = os.path.join("benchmarks", "results",
                              "BENCH_experiments.json")


@dataclass
class FigureBench:
    """Three timed regenerations of one figure."""

    name: str
    reference_s: Optional[float]
    engine_s: float
    warm_s: float
    #: reference / engine-cold wall clock; None only when no reference
    #: is available at all (skipped AND no committed baseline).
    speedup: Optional[float]
    #: Figure text identical across every pass that ran.
    identical: bool
    #: "measured" when the reference pass ran this invocation;
    #: "baseline" when ``--skip-reference`` reused the wall clock from
    #: the last committed report; None when neither was available.
    reference_source: Optional[str] = "measured"


@dataclass
class BenchReport:
    figures: list[FigureBench]
    #: Aggregate over the SWEEP_FIGURES subset that was benchmarked.
    sweep_reference_s: Optional[float]
    sweep_engine_s: Optional[float]
    sweep_speedup: Optional[float]
    jobs: int
    disk_cache: bool
    cache_stats: dict
    machine: dict
    #: Observability-registry snapshot taken when the run finished
    #: (worker increments are merged back by ``parallel_map``).
    metrics: dict = None

    @property
    def all_identical(self) -> bool:
        return all(f.identical for f in self.figures)


def _figure_registry() -> dict[str, Callable[[], str]]:
    from repro.cli import FIGURES
    return {name: fn for name, (_desc, fn) in FIGURES.items()
            if name != "all"}


def _baseline_references(path: str = DEFAULT_OUTPUT) -> dict[str, float]:
    """Measured reference wall clocks from the last committed report.

    ``--skip-reference`` used to leave ``speedup: null``; instead the
    engine passes are compared against the baseline's *measured*
    reference times (never against another baseline-sourced number, so
    stale chains cannot form).  Missing/unreadable report: empty dict.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
        return {
            f["name"]: float(f["reference_s"])
            for f in payload.get("figures", [])
            if f.get("reference_s") is not None
            and f.get("reference_source", "measured") == "measured"
        }
    except (OSError, ValueError, KeyError, TypeError):
        return {}


def _timed(fn: Callable[[], str], name: str = "",
           mode: str = "") -> tuple[float, str]:
    with obs.span("bench_figure", component="bench", figure=name,
                  mode=mode):
        started = time.perf_counter()
        text = fn()
        return time.perf_counter() - started, text


def run_bench(figures: Optional[list[str]] = None,
              jobs: Optional[int] = None,
              skip_reference: bool = False,
              disk_cache: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> BenchReport:
    """Benchmark *figures* (default: the Figure 3/4 sweeps)."""
    registry = _figure_registry()
    names = list(figures) if figures else list(SWEEP_FIGURES)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(f"unknown figures: {', '.join(unknown)}; "
                       f"available: {', '.join(sorted(registry))}")
    if jobs is not None:
        perf.set_jobs(jobs)
    effective_jobs = perf.get_jobs()

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    # Each pass runs the whole figure list end to end; caches are
    # cleared once at the start of a pass, not between figures.  Both
    # pipelines amortise within their own pass the way a real
    # ``python -m repro all`` invocation would (the pre-engine path,
    # too, shared its baseline-runs cache across figures in-process),
    # so per-figure speedups are an honest like-for-like comparison.
    reference_times: dict[str, float] = {}
    reference_texts: dict[str, str] = {}
    baseline_refs: dict[str, float] = {}
    if skip_reference:
        baseline_refs = _baseline_references()
    if not skip_reference:
        perf.clear_caches()
        previous_jobs = perf.get_jobs()
        perf.set_jobs(1)
        try:
            with perf.engine_disabled():
                for name in names:
                    note(f"{name}: reference (engine off, serial)")
                    reference_times[name], reference_texts[name] = \
                        _timed(registry[name], name, "reference")
        finally:
            perf.set_jobs(previous_jobs)

    perf.clear_caches()
    if disk_cache:
        perf.enable_disk_cache()
    engine_times: dict[str, float] = {}
    engine_texts: dict[str, str] = {}
    for name in names:
        note(f"{name}: engine cold ({effective_jobs} jobs)")
        engine_times[name], engine_texts[name] = \
            _timed(registry[name], name, "cold")

    results: list[FigureBench] = []
    for name in names:
        note(f"{name}: engine warm")
        warm_s, warm_text = _timed(registry[name], name, "warm")
        reference_s = reference_times.get(name)
        source = "measured" if reference_s is not None else None
        if reference_s is None and name in baseline_refs:
            reference_s = baseline_refs[name]
            source = "baseline"
        engine_s = engine_times[name]
        texts = [t for t in (reference_texts.get(name),
                             engine_texts[name], warm_text)
                 if t is not None]
        identical = all(t == texts[0] for t in texts)
        speedup = (reference_s / engine_s
                   if reference_s is not None and engine_s > 0 else None)
        results.append(FigureBench(
            name=name, reference_s=reference_s, engine_s=engine_s,
            warm_s=warm_s, speedup=speedup, identical=identical,
            reference_source=source))

    swept = [f for f in results if f.name in SWEEP_FIGURES]
    sweep_ref = (sum(f.reference_s for f in swept)
                 if swept and all(f.reference_s is not None for f in swept)
                 else None)
    sweep_eng = sum(f.engine_s for f in swept) if swept else None
    sweep_speedup = (sweep_ref / sweep_eng
                     if sweep_ref is not None and sweep_eng else None)
    return BenchReport(
        figures=results,
        sweep_reference_s=sweep_ref,
        sweep_engine_s=sweep_eng,
        sweep_speedup=sweep_speedup,
        jobs=effective_jobs,
        disk_cache=disk_cache,
        cache_stats=perf.cache_stats(),
        machine={
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        metrics=obs.metrics_snapshot(),
    )


def write_report(report: BenchReport,
                 path: str = DEFAULT_OUTPUT) -> str:
    """Serialise *report* as JSON; returns the path written."""
    payload = {
        "figures": [asdict(f) for f in report.figures],
        "sweep": {
            "figures": [f.name for f in report.figures
                        if f.name in SWEEP_FIGURES],
            "reference_s": report.sweep_reference_s,
            "engine_s": report.sweep_engine_s,
            "speedup": report.sweep_speedup,
            "reference_source": (
                "baseline" if any(f.reference_source == "baseline"
                                  for f in report.figures)
                else "measured" if any(
                    f.reference_source == "measured"
                    for f in report.figures)
                else None),
        },
        "all_identical": report.all_identical,
        "jobs": report.jobs,
        "disk_cache": report.disk_cache,
        "cache_stats": report.cache_stats,
        "machine": report.machine,
        "metrics": report.metrics or {},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def format_bench(report: BenchReport) -> str:
    from repro.experiments.common import format_table, fmt
    rows = []
    baseline_used = False
    for f in report.figures:
        star = "*" if f.reference_source == "baseline" else ""
        baseline_used = baseline_used or bool(star)
        rows.append((
            f.name,
            (fmt(f.reference_s, 2) + star)
            if f.reference_s is not None else "-",
            fmt(f.engine_s, 2),
            fmt(f.warm_s, 2),
            (f"{f.speedup:.2f}x" + star)
            if f.speedup is not None else "-",
            "yes" if f.identical else "NO",
        ))
    table = format_table(
        ["figure", "reference [s]", "engine cold [s]", "engine warm [s]",
         "speedup", "identical"],
        rows, title="Experiment engine benchmark")
    lines = [table]
    if baseline_used:
        lines.append("* reference wall clock reused from the last "
                     "committed baseline (--skip-reference)")
    if report.sweep_speedup is not None:
        lines.append(
            f"design-space sweeps ({', '.join(SWEEP_FIGURES)}): "
            f"{report.sweep_reference_s:.2f}s reference -> "
            f"{report.sweep_engine_s:.2f}s engine "
            f"({report.sweep_speedup:.2f}x)")
    t = report.cache_stats.get("translation", {})
    lines.append(
        f"translation cache: {t.get('hits', 0)} hits / "
        f"{t.get('misses', 0)} misses "
        f"(hit rate {t.get('hit_rate', 0.0):.1%}, "
        f"{t.get('exact_fallbacks', 0)} exact-II fallbacks), "
        f"{report.cache_stats.get('cycles_entries', 0)} cycle-timing "
        f"entries, jobs={report.jobs}")
    incidents = report.cache_stats.get("incidents", {})
    if incidents:
        # A healthy bench run records none; anything here means the
        # resilience layer recovered from real trouble mid-benchmark.
        lines.append("resilience incidents: " + ", ".join(
            f"{kind}={count}" for kind, count in incidents.items()))
    lines.append("figure text identical across passes: "
                 + ("yes" if report.all_identical else "NO"))
    return "\n".join(lines)

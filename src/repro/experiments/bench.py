"""Benchmark the experiment engine against the reference serial path.

``python -m repro bench`` regenerates the selected figures once per
engine tier:

1. **reference** — engine level 0 (reference interpreter, no
   translation/cycles caching) and a single process: the pre-engine
   serial path, timed honestly from cold caches;
2. **engine (cold)** — level 1 (compiled closures + caching), caches
   cleared first, ``--jobs`` workers: what a fresh invocation costs,
   translation included;
3. **engine (warm)** — level 1 with the caches left hot: what every
   subsequent figure in the same process costs;
4. **specialized (warm)** — level 2 (specialized kernels from
   :mod:`repro.accelerator.jit`) after one warm-up regeneration that
   populates the code cache: the steady-state cost of the top tier.

Cold and warm speedups are reported *separately* — the cold number
pays the one-time translation/compilation cost and must never be
quoted as the engine's steady-state speedup.  The figure *text* must
come out byte-identical across every pass (each tier's contract is
bit-identical results, only faster); the report records per-figure
wall clock, the three speedups, the equality verdict, cache
statistics, and the aggregate speedup over the design-space sweep
figures — written to ``benchmarks/results/BENCH_experiments.json``.
:func:`compare_report` diffs a fresh run against the last committed
report and flags warm-speedup regressions (the ``--compare`` gate).
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro import obs, perf
# The canonical figure-set constants live with the experiment manager;
# these re-exports keep the historical import paths working.
from repro.xp.config import DEFAULT_FIGURES as DEFAULT_BENCH_FIGURES
from repro.xp.config import SWEEP_FIGURES

DEFAULT_OUTPUT = os.path.join("benchmarks", "results",
                              "BENCH_experiments.json")

#: ``--compare`` fails on a warm speedup more than this far below the
#: committed baseline's.
REGRESSION_THRESHOLD = 0.10


@dataclass
class FigureBench:
    """Timed regenerations of one figure, one per engine tier."""

    name: str
    reference_s: Optional[float]
    engine_s: float
    warm_s: float
    #: Level-2 wall clock with a hot code cache (None if that pass
    #: was not run).
    specialized_s: Optional[float]
    #: reference / engine-cold: pays translation + compilation, the
    #: honest cost of a fresh invocation.  None only when no reference
    #: is available at all (skipped AND no committed baseline).
    speedup_cold: Optional[float]
    #: reference / engine-warm: the steady-state compiled-tier speedup.
    speedup_warm: Optional[float]
    #: reference / specialized-warm: the steady-state top-tier speedup.
    speedup_specialized: Optional[float]
    #: Figure text identical across every pass that ran.
    identical: bool
    #: "measured" when the reference pass ran this invocation;
    #: "baseline" when ``--skip-reference`` reused the wall clock from
    #: the last committed report; None when neither was available.
    reference_source: Optional[str] = "measured"


@dataclass
class BenchReport:
    figures: list[FigureBench]
    #: Aggregate over the SWEEP_FIGURES subset that was benchmarked.
    sweep_reference_s: Optional[float]
    sweep_engine_s: Optional[float]
    sweep_speedup: Optional[float]
    sweep_warm_s: Optional[float]
    sweep_speedup_warm: Optional[float]
    jobs: int
    disk_cache: bool
    cache_stats: dict
    machine: dict
    #: Observability-registry snapshot taken when the run finished
    #: (worker increments are merged back by ``parallel_map``).
    metrics: dict = None

    @property
    def all_identical(self) -> bool:
        return all(f.identical for f in self.figures)


def _figure_registry() -> dict[str, Callable[[], str]]:
    from repro.experiments.figures import benchable_figures
    return benchable_figures()


def _baseline_references(path: str = DEFAULT_OUTPUT) -> dict[str, float]:
    """Measured reference wall clocks from the last committed report
    (now :func:`repro.xp.runner.baseline_references`)."""
    from repro.xp.runner import baseline_references
    return baseline_references(path)


def run_bench(figures: Optional[list[str]] = None,
              jobs: Optional[int] = None,
              skip_reference: bool = False,
              disk_cache: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> BenchReport:
    """Benchmark *figures* (default: sweeps + the utilization figure).

    .. deprecated::
        A compatibility shim over :func:`repro.xp.runner.measure_figures`
        — the engine-tier pass structure, the row fields, and the
        report are unchanged, but new code should drive measurements
        through ``python -m repro xp run`` / :func:`repro.api.benchmark`
        so every number lands in the provenance-stamped run store.
    """
    from repro.deprecation import warn_once
    from repro.xp.runner import measure_figures
    warn_once("repro.experiments.bench",
              "repro.xp (python -m repro xp run|report|compare)")
    names = list(figures) if figures else list(DEFAULT_BENCH_FIGURES)
    baseline_refs = _baseline_references() if skip_reference else None
    rows, effective_jobs = measure_figures(
        names, jobs=jobs, skip_reference=skip_reference,
        disk_cache=disk_cache, registry=_figure_registry(),
        baseline_refs=baseline_refs, progress=progress)
    results = [FigureBench(**row) for row in rows]

    swept = [f for f in results if f.name in SWEEP_FIGURES]
    sweep_ref = (sum(f.reference_s for f in swept)
                 if swept and all(f.reference_s is not None for f in swept)
                 else None)
    sweep_eng = sum(f.engine_s for f in swept) if swept else None
    sweep_warm = sum(f.warm_s for f in swept) if swept else None
    sweep_speedup = (sweep_ref / sweep_eng
                     if sweep_ref is not None and sweep_eng else None)
    sweep_speedup_warm = (sweep_ref / sweep_warm
                          if sweep_ref is not None and sweep_warm else None)
    return BenchReport(
        figures=results,
        sweep_reference_s=sweep_ref,
        sweep_engine_s=sweep_eng,
        sweep_speedup=sweep_speedup,
        sweep_warm_s=sweep_warm,
        sweep_speedup_warm=sweep_speedup_warm,
        jobs=effective_jobs,
        disk_cache=disk_cache,
        cache_stats=perf.cache_stats(),
        machine={
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        metrics=obs.metrics_snapshot(),
    )


def write_report(report: BenchReport,
                 path: str = DEFAULT_OUTPUT) -> str:
    """Serialise *report* as JSON; returns the path written."""
    payload = {
        "figures": [asdict(f) for f in report.figures],
        "sweep": {
            "figures": [f.name for f in report.figures
                        if f.name in SWEEP_FIGURES],
            "reference_s": report.sweep_reference_s,
            "engine_s": report.sweep_engine_s,
            "warm_s": report.sweep_warm_s,
            "speedup": report.sweep_speedup,
            "speedup_warm": report.sweep_speedup_warm,
            "reference_source": (
                "baseline" if any(f.reference_source == "baseline"
                                  for f in report.figures)
                else "measured" if any(
                    f.reference_source == "measured"
                    for f in report.figures)
                else None),
        },
        "all_identical": report.all_identical,
        "jobs": report.jobs,
        "disk_cache": report.disk_cache,
        "cache_stats": report.cache_stats,
        "machine": report.machine,
        "metrics": report.metrics or {},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def format_bench(report: BenchReport) -> str:
    from repro.experiments.common import format_table, fmt

    def speed(value: Optional[float], star: str = "") -> str:
        return f"{value:.2f}x{star}" if value is not None else "-"

    rows = []
    baseline_used = False
    for f in report.figures:
        star = "*" if f.reference_source == "baseline" else ""
        baseline_used = baseline_used or bool(star)
        rows.append((
            f.name,
            (fmt(f.reference_s, 2) + star)
            if f.reference_s is not None else "-",
            fmt(f.engine_s, 2),
            fmt(f.warm_s, 2),
            fmt(f.specialized_s, 2) if f.specialized_s is not None else "-",
            speed(f.speedup_cold, star),
            speed(f.speedup_warm, star),
            speed(f.speedup_specialized, star),
            "yes" if f.identical else "NO",
        ))
    table = format_table(
        ["figure", "reference [s]", "cold [s]", "warm [s]", "spec [s]",
         "cold x", "warm x", "spec x", "identical"],
        rows, title="Experiment engine benchmark")
    lines = [table]
    if baseline_used:
        lines.append("* reference wall clock reused from the last "
                     "committed baseline (--skip-reference)")
    if report.sweep_speedup is not None:
        warm_part = (f", {report.sweep_speedup_warm:.2f}x warm"
                     if report.sweep_speedup_warm is not None else "")
        lines.append(
            f"design-space sweeps ({', '.join(SWEEP_FIGURES)}): "
            f"{report.sweep_reference_s:.2f}s reference -> "
            f"{report.sweep_engine_s:.2f}s engine cold "
            f"({report.sweep_speedup:.2f}x{warm_part})")
    t = report.cache_stats.get("translation", {})
    lines.append(
        f"translation cache: {t.get('hits', 0)} hits / "
        f"{t.get('misses', 0)} misses "
        f"(hit rate {t.get('hit_rate', 0.0):.1%}, "
        f"{t.get('exact_fallbacks', 0)} exact-II fallbacks), "
        f"{report.cache_stats.get('cycles_entries', 0)} cycle-timing "
        f"entries, jobs={report.jobs}")
    incidents = report.cache_stats.get("incidents", {})
    if incidents:
        # A healthy bench run records none; anything here means the
        # resilience layer recovered from real trouble mid-benchmark.
        lines.append("resilience incidents: " + ", ".join(
            f"{kind}={count}" for kind, count in incidents.items()))
    lines.append("figure text identical across passes: "
                 + ("yes" if report.all_identical else "NO"))
    return "\n".join(lines)


def load_baseline(path: str = DEFAULT_OUTPUT) -> Optional[dict]:
    """The last committed report payload, or None when unreadable.

    Load this *before* :func:`write_report` overwrites the file.
    """
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def compare_report(report: BenchReport, baseline: Optional[dict],
                   threshold: float = REGRESSION_THRESHOLD) -> list[str]:
    """Warm-speedup regressions of *report* vs a committed *baseline*.

    Returns one message per figure whose warm speedup fell more than
    *threshold* below the baseline's (the ``--compare`` gate exits
    nonzero when this list is non-empty).  Figures absent from either
    side, or without a ``speedup_warm`` on both sides (e.g. a baseline
    written before the column existed, or a ``--skip-reference`` run
    with no reference at all), are skipped — the gate compares only
    what both runs actually measured.  Identity failures are always
    regressions, whatever the timings say.

    .. deprecated::
        A shim over :func:`repro.xp.compare.legacy_compare_report`;
        the generalized gate (latency percentiles, service configs,
        machine-stamp awareness) is ``python -m repro xp compare``.
    """
    from repro.deprecation import warn_once
    from repro.xp.compare import legacy_compare_report
    warn_once("repro.experiments.bench",
              "repro.xp (python -m repro xp run|report|compare)")
    return legacy_compare_report(report, baseline, threshold)

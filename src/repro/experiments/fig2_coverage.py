"""Figure 2: percent of execution time spent in various types of code.

For each benchmark, baseline (ARM11) cycles are attributed to four
categories: modulo-schedulable loops, loops needing speculation support
(while-loops / side exits), loops with non-inlinable subroutine calls,
and acyclic code.  Media and FP applications should land mostly in the
first category; the SPECint controls mostly in the others — exactly the
left/right split of the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.schedulability import LoopCategory, check_schedulability
from repro.cpu.pipeline import ARM11, InOrderPipeline
from repro.experiments.common import format_table, fmt
from repro.workloads.suite import Benchmark, all_benchmarks


@dataclass
class CoverageRow:
    """One benchmark's Figure 2 bar."""

    benchmark: str
    suite: str
    modulo: float
    speculation: float
    subroutine: float
    acyclic: float

    def as_tuple(self) -> tuple:
        return (self.benchmark, self.suite, self.modulo, self.speculation,
                self.subroutine, self.acyclic)


def run_coverage(benchmarks: list[Benchmark] | None = None
                 ) -> list[CoverageRow]:
    """Classify every benchmark's baseline time per Figure 2."""
    benches = all_benchmarks() if benchmarks is None else benchmarks
    pipe = InOrderPipeline(ARM11)
    rows: list[CoverageRow] = []
    for bench in benches:
        per_cat = {LoopCategory.MODULO: 0.0, LoopCategory.SPECULATION: 0.0,
                   LoopCategory.SUBROUTINE: 0.0}
        for loop in bench.kernels:
            report = check_schedulability(loop)
            category = report.category
            if category is LoopCategory.MALFORMED:
                category = LoopCategory.SPECULATION
            cycles = pipe.loop_cycles(loop) * loop.invocations
            per_cat[category] = per_cat.get(category, 0.0) + cycles
        acyclic = bench.acyclic_arm11_cycles()
        total = sum(per_cat.values()) + acyclic
        rows.append(CoverageRow(
            benchmark=bench.name,
            suite=bench.suite,
            modulo=per_cat[LoopCategory.MODULO] / total,
            speculation=per_cat[LoopCategory.SPECULATION] / total,
            subroutine=per_cat[LoopCategory.SUBROUTINE] / total,
            acyclic=acyclic / total,
        ))
    return rows


def format_coverage(rows: list[CoverageRow]) -> str:
    table_rows = [(r.benchmark, r.suite, fmt(100 * r.modulo, 1),
                   fmt(100 * r.speculation, 1), fmt(100 * r.subroutine, 1),
                   fmt(100 * r.acyclic, 1)) for r in rows]
    media = [r.modulo for r in rows if r.suite in ("mediabench", "specfp")]
    control = [r.modulo for r in rows if r.suite == "specint"]
    summary = (
        f"\nmean modulo-schedulable time: media/FP "
        f"{fmt(100 * sum(media) / max(len(media), 1), 1)}%  vs  SPECint "
        f"{fmt(100 * sum(control) / max(len(control), 1), 1)}%")
    return format_table(
        ["benchmark", "suite", "modulo%", "speculation%", "subroutine%",
         "acyclic%"],
        table_rows,
        title="Figure 2: execution-time coverage by loop category",
    ) + summary

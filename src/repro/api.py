"""``repro.api`` — the stable programmatic surface of the reproduction.

Every way of driving the system from outside — examples, the CLI, the
loop-acceleration service (:mod:`repro.service`), tests, notebooks —
goes through this one facade instead of reaching into the internals
(``vm.runtime``, ``experiments.*``, ``perf.parallel``):

* :class:`Settings` — one consolidated, validated configuration object
  for the whole stack (worker count, engine switch, disk cache, trace
  sink, incident log), loadable from the environment with
  :meth:`Settings.from_env`;
* :class:`Session` — a configured (accelerator, options, CPU, guard)
  context with ``translate`` / ``run_loop`` / ``run_suite`` methods;
* module-level :func:`translate`, :func:`run_loop`, :func:`run_suite`,
  :func:`sweep`, :func:`fraction_of_infinite`, :func:`run_figure` —
  one-shot conveniences over a default session.

The facade adds no behaviour of its own: results are byte-identical to
calling the underlying layers directly, which is what lets the service
path and the serial reference path be compared bit for bit.  The old
scattered helpers remain as :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.accelerator.config import LAConfig
from repro.cpu.pipeline import ARM11, CPUConfig
from repro.errors import SettingsError
from repro.vm.guard import GuardConfig
from repro.vm.runtime import AppRun, LoopOutcome, VMConfig, VirtualMachine
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    translate_loop,
)

#: The env vars :meth:`Settings.from_env` consolidates, in one place.
JOBS_ENV = "REPRO_JOBS"
ENGINE_ENV = "REPRO_ENGINE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
TRACE_ENV = "REPRO_TRACE"
INCIDENT_LOG_ENV = "REPRO_INCIDENT_LOG"
SERVICE_HOST_ENV = "REPRO_SERVICE_HOST"
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"
SERVICE_SECRET_ENV = "REPRO_SERVICE_SECRET"
SHARDS_ENV = "REPRO_SHARDS"
RETRY_ATTEMPTS_ENV = "REPRO_RETRY_ATTEMPTS"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
ARTIFACT_ENV = "REPRO_ARTIFACT"
CACHE_BUDGET_ENV = "REPRO_CACHE_BUDGET"
JIT_CACHE_ENV = "REPRO_JIT_CACHE"
BENCH_REPEAT_ENV = "REPRO_BENCH_REPEAT"
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def _default_accelerator() -> LAConfig:
    from repro.accelerator import PROPOSED_LA
    return PROPOSED_LA


#: Sentinel distinguishing "not specified" (the proposed design) from an
#: explicit ``accelerator=None`` (a scalar-only machine) in `Session`.
_PROPOSED = object()


@dataclass(frozen=True)
class Settings:
    """One validated configuration for the whole stack.

    Replaces the scattered knobs (``REPRO_CACHE_DIR`` handling in the
    CLI, ``perf.set_jobs`` calls, ``REPRO_TRACE``/``REPRO_INCIDENT_LOG``
    read in three different modules) with a single object the service,
    the CLI and the tests all construct the same way.  :meth:`apply`
    pushes the values into the global switches; nothing is applied at
    construction time, so a ``Settings`` is inert data until then.
    """

    #: Worker processes experiment fan-out may use (1 = serial).
    jobs: int = 1
    #: Engine tier: 0 = reference interpreter only, 1 = compiled per-op
    #: closures + caching, 2 = specialized kernels (the default).
    #: Boolean spellings still parse (False -> 0, True -> 2).
    engine: int = 2
    #: On-disk translation-cache directory (None = memory-only).
    cache_dir: Optional[str] = None
    #: JSONL span-trace sink (None = tracing off).
    trace_path: Optional[str] = None
    #: JSONL incident-log sink (None = in-memory only).
    incident_log: Optional[str] = None
    #: Network service endpoint for :func:`connect` / ``serve --port``.
    service_host: str = "127.0.0.1"
    #: 0 = pick a free ephemeral port when serving.
    service_port: int = 0
    #: Shared frame-authentication secret (HMAC); mandatory for any
    #: non-loopback service host — see the
    #: :mod:`repro.service.wire` trust model.
    service_secret: Optional[str] = None
    #: Shard processes for the served stack (1 = single server; > 1
    #: boots a supervised cluster — see :mod:`repro.service.cluster`).
    shards: int = 1
    #: Network client retry policy (attempts and backoff base).
    retry_attempts: int = 5
    retry_backoff_s: float = 0.02
    #: AOT artifact installed into the translation cache by
    #: :meth:`apply` (None = no artifact).  A missing file raises
    #: :class:`~repro.errors.ArtifactError`; a corrupt/stale one is
    #: quarantined and the run proceeds with dynamic translation.
    artifact_path: Optional[str] = None
    #: Disk-cache size budget in bytes for the GC sweep (None = the
    #: transcache default, 256 MiB).
    cache_budget: Optional[int] = None
    #: Max specialized kernels the JIT code cache keeps (None = the
    #: jit default, 256).
    jit_cache: Optional[int] = None
    #: Repeats per ``xp run`` invocation (``--repeat`` wins over this).
    bench_repeat: int = 1
    #: Benchmark results root the run store, baselines and the legacy
    #: reports all live under (None = ``benchmarks/results``).
    bench_dir: Optional[str] = None

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None, *,
                 jobs: Optional[int | str] = None,
                 engine: Optional[bool | int | str] = None,
                 cache_dir: Optional[str] = None,
                 trace_path: Optional[str] = None,
                 incident_log: Optional[str] = None,
                 service_host: Optional[str] = None,
                 service_port: Optional[int | str] = None,
                 service_secret: Optional[str] = None,
                 shards: Optional[int | str] = None,
                 retry_attempts: Optional[int | str] = None,
                 retry_backoff_s: Optional[float | str] = None,
                 artifact_path: Optional[str] = None,
                 cache_budget: Optional[int | str] = None,
                 jit_cache: Optional[int | str] = None,
                 bench_repeat: Optional[int | str] = None,
                 bench_dir: Optional[str] = None
                 ) -> "Settings":
        """Load settings from *environ* (default ``os.environ``).

        Explicit keyword overrides (e.g. a ``--jobs`` CLI flag) win
        over the environment.  Invalid values raise
        :class:`~repro.errors.SettingsError` naming the offending
        variable — a typo must fail loudly at startup, not silently
        fall back to a default.
        """
        env = os.environ if environ is None else environ
        if jobs is not None:
            job_count = cls._parse_jobs(jobs, "--jobs")
        else:
            raw = env.get(JOBS_ENV)
            job_count = cls._parse_jobs(raw, JOBS_ENV) if raw else 1
        engine_source = "engine" if engine is not None else ENGINE_ENV
        if engine is None:
            engine = env.get(ENGINE_ENV)
        engine_level = cls._parse_engine(engine, engine_source)
        if service_port is None:
            service_port = env.get(SERVICE_PORT_ENV, 0)
        if shards is None:
            shards = env.get(SHARDS_ENV, 1)
        if retry_attempts is None:
            retry_attempts = env.get(RETRY_ATTEMPTS_ENV, 5)
        if retry_backoff_s is None:
            retry_backoff_s = env.get(RETRY_BACKOFF_ENV, 0.02)
        if cache_budget is None:
            cache_budget = env.get(CACHE_BUDGET_ENV) or None
        if jit_cache is None:
            jit_cache = env.get(JIT_CACHE_ENV) or None
        if bench_repeat is None:
            bench_repeat = env.get(BENCH_REPEAT_ENV, 1)
        return cls(
            jobs=job_count,
            engine=engine_level,
            cache_dir=cache_dir or env.get(CACHE_DIR_ENV) or None,
            trace_path=trace_path or env.get(TRACE_ENV) or None,
            incident_log=incident_log or env.get(INCIDENT_LOG_ENV) or None,
            service_host=(service_host or env.get(SERVICE_HOST_ENV)
                          or "127.0.0.1"),
            service_port=cls._parse_int(service_port, SERVICE_PORT_ENV,
                                        minimum=0, maximum=65535),
            service_secret=(service_secret
                            or env.get(SERVICE_SECRET_ENV) or None),
            shards=cls._parse_int(shards, SHARDS_ENV, minimum=1),
            retry_attempts=cls._parse_int(retry_attempts,
                                          RETRY_ATTEMPTS_ENV, minimum=1),
            retry_backoff_s=cls._parse_seconds(retry_backoff_s,
                                               RETRY_BACKOFF_ENV),
            artifact_path=(artifact_path or env.get(ARTIFACT_ENV)
                           or None),
            cache_budget=(None if cache_budget is None
                          else cls._parse_int(cache_budget,
                                              CACHE_BUDGET_ENV,
                                              minimum=0)),
            jit_cache=(None if jit_cache is None
                       else cls._parse_int(jit_cache, JIT_CACHE_ENV,
                                           minimum=1)),
            bench_repeat=cls._parse_int(bench_repeat, BENCH_REPEAT_ENV,
                                        minimum=1),
            bench_dir=bench_dir or env.get(BENCH_DIR_ENV) or None,
        )

    @staticmethod
    def _parse_engine(value: bool | int | str | None, source: str) -> int:
        from repro import perf
        try:
            return perf.parse_engine_level(value)
        except ValueError:
            raise SettingsError(
                f"{source} must be an engine level 0..2 or a boolean "
                f"spelling, got {value!r}",
                name=source, value=str(value)) from None

    @staticmethod
    def _parse_jobs(value: int | str, source: str) -> int:
        try:
            jobs = int(value)
        except (TypeError, ValueError):
            raise SettingsError(
                f"{source} must be an integer, got {value!r}",
                name=source, value=str(value)) from None
        if jobs < 1:
            raise SettingsError(
                f"{source} must be >= 1, got {jobs}",
                name=source, value=str(value))
        return jobs

    @staticmethod
    def _parse_int(value: int | str, source: str, minimum: int = 0,
                   maximum: Optional[int] = None) -> int:
        try:
            parsed = int(value)
        except (TypeError, ValueError):
            raise SettingsError(
                f"{source} must be an integer, got {value!r}",
                name=source, value=str(value)) from None
        if parsed < minimum or (maximum is not None and parsed > maximum):
            bound = (f"{minimum}..{maximum}" if maximum is not None
                     else f">= {minimum}")
            raise SettingsError(
                f"{source} must be {bound}, got {parsed}",
                name=source, value=str(value))
        return parsed

    @staticmethod
    def _parse_seconds(value: float | str, source: str) -> float:
        try:
            parsed = float(value)
        except (TypeError, ValueError):
            raise SettingsError(
                f"{source} must be a number of seconds, got {value!r}",
                name=source, value=str(value)) from None
        if parsed < 0:
            raise SettingsError(
                f"{source} must be >= 0, got {parsed}",
                name=source, value=str(value))
        return parsed

    def retry_policy(self):
        """The network client retry policy these settings describe."""
        from repro.service.client import RetryPolicy
        return RetryPolicy(attempts=self.retry_attempts,
                           base_delay_s=self.retry_backoff_s)

    def apply(self) -> "Settings":
        """Push these settings into the global switches.

        An unusable :attr:`cache_dir` raises
        :class:`~repro.errors.CacheConfigError` (strict validation: the
        directory was configured by name).  A :attr:`trace_path` is
        attached only when tracing is not already active, and without
        truncating — ``python -m repro trace`` owns the
        truncate-then-write lifecycle for its own output file.
        """
        from repro import obs, perf
        from repro.accelerator import jit
        from repro.perf import transcache
        from repro.resilience.incidents import incident_log
        perf.set_engine_level(self.engine)
        perf.set_jobs(self.jobs)
        if self.cache_budget is not None:
            transcache.set_gc_budget(self.cache_budget)
        if self.jit_cache is not None:
            jit.set_code_cache_limit(self.jit_cache)
        if self.cache_dir is not None:
            perf.translation_cache().attach_disk(self.cache_dir,
                                                 strict=True)
        if self.incident_log is not None:
            incident_log().configure_sink(self.incident_log)
        if self.trace_path is not None and not obs.tracing_active():
            obs.start_trace(self.trace_path, truncate=False)
        if self.artifact_path is not None:
            from repro import aot
            aot.install(self.artifact_path)
        return self


class Session:
    """A configured context for translating and running loops.

    Bundles the four configuration axes every operation needs — the
    accelerator present in the system, the static/dynamic translation
    options, the scalar CPU model and the guard policy — so call sites
    name them once instead of threading them through every call:

        session = repro.api.Session()          # the proposed design
        result = session.translate(loop)
        outcome = session.run_loop(loop)
        runs = session.run_suite()

    Pass ``accelerator=None`` explicitly for a scalar-only machine
    (no accelerator present); leaving it unspecified means the paper's
    proposed design.
    """

    def __init__(self, accelerator: Any = _PROPOSED,
                 options: TranslationOptions = TranslationOptions(),
                 cpu: CPUConfig = ARM11,
                 guard: GuardConfig = GuardConfig(),
                 settings: Optional[Settings] = None,
                 **vm_overrides: Any) -> None:
        if settings is not None:
            settings.apply()
        self.accelerator = (_default_accelerator()
                            if accelerator is _PROPOSED else accelerator)
        self.options = options
        self.cpu = cpu
        self.guard = guard
        self._vm_overrides = vm_overrides
        self._vm: Optional[VirtualMachine] = None

    def vm_config(self) -> VMConfig:
        """The :class:`~repro.vm.runtime.VMConfig` this session runs."""
        return VMConfig(cpu=self.cpu, accelerator=self.accelerator,
                        options=self.options, guard=self.guard,
                        **self._vm_overrides)

    def _machine(self) -> VirtualMachine:
        if self._vm is None:
            self._vm = VirtualMachine(self.vm_config())
        return self._vm

    def translate(self, loop) -> TranslationResult:
        """Translate *loop* for this session's accelerator."""
        if self.accelerator is None:
            raise ValueError(
                "this session models a scalar-only machine "
                "(accelerator=None); translation needs an accelerator")
        return translate_loop(loop, self.accelerator, self.options)

    def run_loop(self, loop, scalars: Optional[dict] = None,
                 seed: int = 1234) -> LoopOutcome:
        """Measure *loop* under this session's full VM configuration."""
        return self._machine().run_loop(loop, scalars=scalars, seed=seed)

    def run_benchmark(self, benchmark) -> AppRun:
        """Run one benchmark end to end under this session's config."""
        return self._machine().run_benchmark(benchmark)

    def run_suite(self, benchmarks: Optional[list] = None,
                  annotate: bool = False,
                  jobs: Optional[int] = None) -> dict[str, AppRun]:
        """Run the benchmark suite under this session's config."""
        from repro.experiments.common import _run_suite
        return _run_suite(self.vm_config(), benchmarks=benchmarks,
                          annotate=annotate, jobs=jobs)


# -- one-shot conveniences ----------------------------------------------------

def translate(loop, config: Optional[LAConfig] = None,
              options: Optional[TranslationOptions] = None
              ) -> TranslationResult:
    """Translate *loop* for *config* (default: the proposed LA)."""
    return translate_loop(
        loop, _default_accelerator() if config is None else config,
        TranslationOptions() if options is None else options)


def run_loop(loop, config: Optional[LAConfig] = None,
             options: Optional[TranslationOptions] = None,
             scalars: Optional[dict] = None, seed: int = 1234,
             guard: GuardConfig = GuardConfig()) -> LoopOutcome:
    """Measure one loop under a fresh default session."""
    session = Session(accelerator=(_default_accelerator()
                                   if config is None else config),
                      options=options or TranslationOptions(),
                      guard=guard)
    return session.run_loop(loop, scalars=scalars, seed=seed)


def run_suite(config: Optional[VMConfig] = None,
              benchmarks: Optional[list] = None,
              annotate: bool = False,
              jobs: Optional[int] = None) -> dict[str, AppRun]:
    """Run every benchmark under *config*; returns runs by name.

    *config* is a full :class:`~repro.vm.runtime.VMConfig` (default:
    ARM11 + the proposed LA).  ``jobs`` > 1 fans benchmarks over worker
    processes; the result is byte-identical at any job count.
    """
    from repro.experiments.common import _run_suite
    if config is None:
        config = VMConfig(cpu=ARM11, accelerator=_default_accelerator())
    return _run_suite(config, benchmarks=benchmarks, annotate=annotate,
                      jobs=jobs)


def sweep(label: str, xs: Sequence[int],
          make_config: Callable[[int], LAConfig],
          benchmarks: Optional[list] = None,
          jobs: Optional[int] = None):
    """Design-space sweep: ``make_config(x)`` for every x.

    Returns a :class:`~repro.experiments.sweeps.SweepSeries` whose
    fractions come back in x order at any job count.
    """
    from repro.experiments.sweeps import _sweep
    return _sweep(label, list(xs), make_config, benchmarks=benchmarks,
                  jobs=jobs)


def fraction_of_infinite(config: LAConfig,
                         benchmarks: Optional[list] = None) -> float:
    """Mean fraction of the infinite-resource speedup under *config*."""
    from repro.experiments.sweeps import _fraction_of_infinite
    return _fraction_of_infinite(config, benchmarks=benchmarks)


def run_figure(name: str, jobs: Optional[int] = None) -> str:
    """Regenerate one paper figure/table by name; returns its text."""
    from repro import perf
    from repro.experiments.figures import FIGURES
    if name not in FIGURES:
        raise KeyError(f"unknown figure {name!r}; available: "
                       + ", ".join(sorted(FIGURES)))
    if jobs is not None:
        perf.set_jobs(jobs)
    _description, fn = FIGURES[name]
    return fn()


def connect(host: Optional[str] = None, port: Optional[int] = None,
            settings: Optional[Settings] = None, **client_kwargs: Any):
    """A :class:`~repro.service.client.LoopClient` for a served stack.

    Endpoint, frame-auth secret and retry policy default to *settings*
    (or the environment: ``REPRO_SERVICE_HOST``/``REPRO_SERVICE_PORT``/
    ``REPRO_SERVICE_SECRET``/``REPRO_RETRY_ATTEMPTS``/
    ``REPRO_RETRY_BACKOFF``); explicit arguments win.  The returned client speaks the framed wire
    protocol and owns reconnection, retries and admission backoff.
    """
    from repro.service.client import LoopClient
    if settings is None:
        settings = Settings.from_env()
    return LoopClient(
        host if host is not None else settings.service_host,
        port if port is not None else settings.service_port,
        retry=client_kwargs.pop("retry", settings.retry_policy()),
        secret=client_kwargs.pop("secret", settings.service_secret),
        **client_kwargs)


def _resolve_config(config, preset_name: Optional[str]):
    """A ``repro.xp.Config`` from a Config, a name, or a preset name."""
    from repro import xp
    if config is not None and preset_name is not None:
        raise SettingsError(
            "pass either config= or preset=, not both",
            name="config", value=str(preset_name))
    if config is None:
        return xp.preset(preset_name or xp.DEFAULT_PRESET)
    if isinstance(config, str):
        return xp.preset(config)
    if not isinstance(config, xp.Config):
        raise SettingsError(
            f"config must be a repro.xp.Config or a preset name, "
            f"got {type(config).__name__}",
            name="config", value=str(config))
    return config


def benchmark(config=None, *, preset: Optional[str] = None,
              repeat: Optional[int] = None,
              directory: Optional[str] = None,
              registry: Optional[dict] = None,
              settings: Optional[Settings] = None,
              progress: Optional[Callable[[str], None]] = None):
    """Run one named experiment configuration through ``repro.xp``.

    *config* is a :class:`repro.xp.Config` or a preset name (so is
    *preset*; passing both is a :class:`SettingsError`, as is an
    unknown name).  Returns the :class:`repro.xp.XpRun` whose
    timestamped records just landed in the run store; call
    ``.aggregate()`` on it for the median/IQR summary.
    """
    from repro import xp
    resolved = _resolve_config(config, preset)
    return xp.run_config(resolved, repeat=repeat, directory=directory,
                         registry=registry, settings=settings,
                         progress=progress)


def compare(config=None, *, preset: Optional[str] = None,
            baseline_path: Optional[str] = None,
            directory: Optional[str] = None,
            threshold: Optional[float] = None,
            strict: bool = False,
            settings: Optional[Settings] = None):
    """Gate the latest recorded run of a configuration.

    Aggregates the most recent ``xp run`` records for *config* (or
    *preset*) from the run store and diffs them against the committed
    baseline.  Returns a :class:`repro.xp.CompareResult`; ``.ok`` is
    False on any regression — no records at all is itself a gating
    problem, not a silent pass.
    """
    from repro import xp
    resolved = _resolve_config(config, preset)
    digest = xp.config_digest(resolved)
    records = xp.latest_run_records(xp.load_records(
        resolved.name, digest, directory, settings))
    if not records:
        result = xp.CompareResult(config_name=resolved.name)
        result.problems.append(
            f"no run records for config {resolved.name!r} (digest "
            f"{digest[:8]}); run `python -m repro xp run "
            f"--preset {resolved.name}` first")
        return result
    baseline = xp.load_baseline(resolved.name, directory,
                                baseline_path, settings)
    agg = xp.aggregate_records(records)
    if threshold is None:
        threshold = xp.DEFAULT_THRESHOLD
    return xp.compare_aggregate(agg, baseline, threshold=threshold,
                                strict=strict)


def figures() -> dict[str, str]:
    """Figure name -> one-line description, for discovery."""
    from repro.experiments.figures import FIGURES
    return {name: description
            for name, (description, _fn) in FIGURES.items()}


__all__ = [
    "Session", "Settings", "TranslationOptions", "TranslationResult",
    "VMConfig", "benchmark", "compare", "connect", "figures",
    "fraction_of_infinite", "run_figure", "run_loop", "run_suite",
    "sweep", "translate",
]

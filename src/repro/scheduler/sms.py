"""Swing modulo scheduling: the list scheduler.

Ops are placed in priority order into the modulo reservation table.
Each op's candidate window is derived from its already-placed
neighbours: placed predecessors give an earliest start, placed
successors a latest start, and the scan direction "swings" accordingly
(forward when pulled from above, backward when pulled from below) so
values live as briefly as possible.  A window is II cycles wide — if no
slot in II consecutive cycles is free, none ever will be, so the attempt
fails and II is incremented (Section 4.1's op-10 walk-through shows the
increment-on-conflict behaviour at fine grain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.dfg import DataflowGraph
from repro.scheduler.mii import MIIResult, compute_mii, sched_resource
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.priority import PriorityResult, height_priority, swing_priority
from repro.scheduler.schedule import ModuloSchedule


@dataclass
class ScheduleFailure:
    """Why a loop could not be modulo scheduled onto the target."""

    reason: str
    mii: Optional[MIIResult] = None


def _try_schedule(dfg: DataflowGraph, order: list[int],
                  earliest_hint: dict[int, int], ii: int,
                  units: dict[str, int],
                  work: Optional[Callable[[int], None]] = None
                  ) -> Optional[dict[int, int]]:
    """One list-scheduling attempt at a fixed II."""
    mrt = ModuloReservationTable(ii, units)
    times: dict[int, int] = {}
    scheduled = set()
    for opid in order:
        resource = sched_resource(dfg.op(opid))
        estart: Optional[int] = None
        lstart: Optional[int] = None
        for e in dfg.in_edges(opid):
            if work is not None:
                work(1)
            if e.src in times:
                bound = times[e.src] + e.latency - ii * e.distance
                estart = bound if estart is None else max(estart, bound)
        for e in dfg.out_edges(opid):
            if work is not None:
                work(1)
            if e.dst in times:
                bound = times[e.dst] - dfg.latency(opid) + ii * e.distance
                lstart = bound if lstart is None else min(lstart, bound)
        # Schedule times may be negative during construction (bottom-up
        # placement below already-placed successors); the whole schedule
        # is normalised to start at 0 afterwards, which preserves both
        # the dependence inequalities and the mod-II resource pattern.
        if estart is None and lstart is None:
            base = earliest_hint.get(opid, 0)
            candidates = range(base, base + ii)
        elif lstart is None:
            candidates = range(estart, estart + ii)
        elif estart is None:
            candidates = range(lstart, lstart - ii, -1)
        else:
            top = min(lstart, estart + ii - 1)
            if top < estart:
                return None
            candidates = range(estart, top + 1)
        placed_at: Optional[int] = None
        for t in candidates:
            if work is not None:
                work(1)
            if mrt.available(t, resource):
                placed_at = t
                break
        if placed_at is None:
            return None
        mrt.reserve(placed_at, resource)
        times[opid] = placed_at
        scheduled.add(opid)
    if times:
        low = min(times.values())
        if low != 0:
            times = {opid: t - low for opid, t in times.items()}
    return times


def modulo_schedule(dfg: DataflowGraph, schedulable: set[int],
                    units: dict[str, int], max_ii: int,
                    priority: Optional[PriorityResult] = None,
                    priority_kind: str = "swing",
                    work: Optional[Callable[[int], None]] = None,
                    mii_result: Optional[MIIResult] = None,
                    priority_work: Optional[Callable[[int], None]] = None,
                    ) -> ModuloSchedule | ScheduleFailure:
    """Modulo schedule *schedulable* ops of *dfg* onto *units*.

    Args:
        dfg: The loop's dataflow graph (after CCA mapping).
        schedulable: The compute partition's opids.
        units: Resource pool sizes ("int", "fp", "cca", "ldgen", "stgen").
        max_ii: The accelerator's maximum supported II — "loops that
            cannot be scheduled at the maximum II will not be
            accelerated" (Section 3.1).
        priority: Precomputed ordering (the statically-encoded priority
            of Figure 9(c)); computed dynamically when None.
        priority_kind: "swing" or "height" for dynamic computation.
        work: Translation cost-model callback.
        mii_result: Precomputed MII (statically-encoded variant).
    """
    if not schedulable:
        return ScheduleFailure("no schedulable operations")
    if mii_result is None:
        mii_result = compute_mii(dfg, schedulable, units, work)
    if not mii_result.feasible:
        return ScheduleFailure(
            "resource class required by the loop is absent", mii_result)
    mii = mii_result.mii
    if mii > max_ii:
        return ScheduleFailure(
            f"MII {mii} exceeds accelerator maximum II {max_ii}", mii_result)
    static_priority = priority is not None

    def orders_for(ii: int) -> list[PriorityResult]:
        """Candidate orderings for one II attempt.

        With a static encoding the order is fixed (that is the point of
        the encoding); a cheap program-order fallback still applies so a
        marginal loop degrades to a worse schedule rather than to the
        scalar core.  Dynamically, the priority is recomputed at each
        candidate II — E/L windows tighten as II grows, which is how the
        SMS algorithm itself iterates — with the height order as a
        secondary attempt.
        """
        pwork = priority_work if priority_work is not None else work
        candidates: list[PriorityResult] = []
        if static_priority:
            assert priority is not None
            candidates.append(priority)
        elif priority_kind == "swing":
            candidates.append(swing_priority(dfg, schedulable, ii, pwork))
            candidates.append(height_priority(dfg, schedulable, ii, pwork))
        elif priority_kind == "height":
            candidates.append(height_priority(dfg, schedulable, ii, pwork))
        else:
            raise ValueError(f"unknown priority kind {priority_kind!r}")
        candidates.append(PriorityResult.from_order(sorted(schedulable)))
        return candidates

    def normalise(result: PriorityResult) -> list[int]:
        order = [opid for opid in result.order if opid in schedulable]
        missing = schedulable - set(order)
        return order + sorted(missing)

    for ii in range(mii, max_ii + 1):
        for candidate in orders_for(ii):
            times = _try_schedule(dfg, normalise(candidate),
                                  candidate.earliest, ii, units, work)
            if times is not None:
                return ModuloSchedule(ii=ii, times=times, units=dict(units),
                                      mii=mii, res_mii=mii_result.res_mii,
                                      rec_mii=mii_result.rec_mii)
    return ScheduleFailure(
        f"no feasible schedule up to maximum II {max_ii}", mii_result)

"""Swing modulo scheduling: the list scheduler.

Ops are placed in priority order into the modulo reservation table.
Each op's candidate window is derived from its already-placed
neighbours: placed predecessors give an earliest start, placed
successors a latest start, and the scan direction "swings" accordingly
(forward when pulled from above, backward when pulled from below) so
values live as briefly as possible.  A window is II cycles wide — if no
slot in II consecutive cycles is free, none ever will be, so the attempt
fails and II is incremented (Section 4.1's op-10 walk-through shows the
increment-on-conflict behaviour at fine grain).

Failed schedules are not silent: every attempt records *which* op could
not be placed and on what resource (or that its dependence window
closed), and the final :class:`ScheduleFailure` aggregates those into
the blocking resource/recurrence diagnosis the VM's blacklist and the
CLI surface.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.ir.dfg import DataflowGraph
from repro.scheduler.mii import MIIResult, compute_mii, sched_resource
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.priority import PriorityResult, height_priority, swing_priority
from repro.scheduler.schedule import ModuloSchedule


@dataclass(frozen=True)
class AttemptDiagnostic:
    """Why one list-scheduling attempt at one II failed.

    ``cause`` is ``"window closed"`` when an op's dependence window was
    empty (latest start below earliest start — a recurrence squeeze) or
    ``"resource conflict"`` when every slot in the II-wide window was
    occupied on ``resource``.
    """

    ii: int
    order_kind: str
    failed_opid: Optional[int]
    resource: Optional[str]
    cause: str

    def describe(self) -> str:
        where = (f"op{self.failed_opid}" if self.failed_opid is not None
                 else "?")
        if self.cause == "resource conflict":
            return (f"II={self.ii} ({self.order_kind} order): {where} found "
                    f"no free {self.resource!r} slot")
        return (f"II={self.ii} ({self.order_kind} order): {where}'s "
                f"dependence window closed")


@dataclass
class ScheduleFailure:
    """Why a loop could not be modulo scheduled onto the target.

    Beyond the human-readable ``reason``, the failure carries the MII
    breakdown and every attempt's diagnostic so callers (the VM
    blacklist, the CLI's ``translate`` command) can report *which*
    resource or recurrence is to blame without re-running the scheduler.
    """

    reason: str
    mii: Optional[MIIResult] = None
    attempts: list[AttemptDiagnostic] = field(default_factory=list)

    @property
    def blocking_resource(self) -> Optional[str]:
        """The resource most often responsible across failed attempts."""
        resources = [a.resource for a in self.attempts
                     if a.resource is not None]
        if not resources:
            return None
        return Counter(resources).most_common(1)[0][0]

    @property
    def binding_constraint(self) -> Optional[str]:
        """Which MII component bound the schedule, when known."""
        if self.mii is None:
            return None
        if self.mii.rec_mii >= self.mii.res_mii:
            return f"recurrence (RecMII={self.mii.rec_mii})"
        binding = [rc for rc, v in self.mii.per_resource.items()
                   if v == self.mii.res_mii]
        name = binding[0] if binding else "resource"
        return f"resource {name!r} (ResMII={self.mii.res_mii})"

    def describe(self) -> str:
        """Multi-line diagnostic for logs and the CLI."""
        lines = [self.reason]
        if self.binding_constraint is not None:
            lines.append(f"  binding constraint: {self.binding_constraint}")
        if self.blocking_resource is not None:
            lines.append(f"  blocking resource: {self.blocking_resource!r}")
        for attempt in self.attempts[-4:]:
            lines.append(f"  {attempt.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _PlacementFailure:
    """Internal: one op's placement failing inside ``_try_schedule``."""

    failed_opid: Optional[int]
    resource: Optional[str]
    cause: str


def _try_schedule(dfg: DataflowGraph, order: list[int],
                  earliest_hint: dict[int, int], ii: int,
                  units: dict[str, int],
                  work: Optional[Callable[[int], None]] = None
                  ) -> dict[int, int] | _PlacementFailure:
    """One list-scheduling attempt at a fixed II."""
    mrt = ModuloReservationTable(ii, units)
    times: dict[int, int] = {}
    scheduled = set()
    for opid in order:
        resource = sched_resource(dfg.op(opid))
        estart: Optional[int] = None
        lstart: Optional[int] = None
        for e in dfg.in_edges(opid):
            if work is not None:
                work(1)
            if e.src in times:
                bound = times[e.src] + e.latency - ii * e.distance
                estart = bound if estart is None else max(estart, bound)
        for e in dfg.out_edges(opid):
            if work is not None:
                work(1)
            if e.dst in times:
                bound = times[e.dst] - dfg.latency(opid) + ii * e.distance
                lstart = bound if lstart is None else min(lstart, bound)
        # Schedule times may be negative during construction (bottom-up
        # placement below already-placed successors); the whole schedule
        # is normalised to start at 0 afterwards, which preserves both
        # the dependence inequalities and the mod-II resource pattern.
        if estart is None and lstart is None:
            base = earliest_hint.get(opid, 0)
            candidates = range(base, base + ii)
        elif lstart is None:
            candidates = range(estart, estart + ii)
        elif estart is None:
            candidates = range(lstart, lstart - ii, -1)
        else:
            top = min(lstart, estart + ii - 1)
            if top < estart:
                return _PlacementFailure(opid, resource, "window closed")
            candidates = range(estart, top + 1)
        placed_at: Optional[int] = None
        for t in candidates:
            if work is not None:
                work(1)
            if mrt.available(t, resource):
                placed_at = t
                break
        if placed_at is None:
            return _PlacementFailure(opid, resource, "resource conflict")
        mrt.reserve(placed_at, resource)
        times[opid] = placed_at
        scheduled.add(opid)
    if times:
        low = min(times.values())
        if low != 0:
            times = {opid: t - low for opid, t in times.items()}
    return times


def modulo_schedule(dfg: DataflowGraph, schedulable: set[int],
                    units: dict[str, int], max_ii: int,
                    priority: Optional[PriorityResult] = None,
                    priority_kind: str = "swing",
                    work: Optional[Callable[[int], None]] = None,
                    mii_result: Optional[MIIResult] = None,
                    priority_work: Optional[Callable[[int], None]] = None,
                    ) -> ModuloSchedule | ScheduleFailure:
    """Modulo schedule *schedulable* ops of *dfg* onto *units*.

    Args:
        dfg: The loop's dataflow graph (after CCA mapping).
        schedulable: The compute partition's opids.
        units: Resource pool sizes ("int", "fp", "cca", "ldgen", "stgen").
        max_ii: The accelerator's maximum supported II — "loops that
            cannot be scheduled at the maximum II will not be
            accelerated" (Section 3.1).
        priority: Precomputed ordering (the statically-encoded priority
            of Figure 9(c)); computed dynamically when None.
        priority_kind: "swing" or "height" for dynamic computation.
        work: Translation cost-model callback.
        mii_result: Precomputed MII (statically-encoded variant).
    """
    if not schedulable:
        return ScheduleFailure("no schedulable operations")
    if mii_result is None:
        mii_result = compute_mii(dfg, schedulable, units, work)
    if not mii_result.feasible:
        missing = [rc for rc, v in mii_result.per_resource.items()
                   if v >= 10 ** 9]
        return ScheduleFailure(
            "resource class required by the loop is absent"
            + (f" ({', '.join(sorted(missing))})" if missing else ""),
            mii_result)
    mii = mii_result.mii
    if mii > max_ii:
        return ScheduleFailure(
            f"MII {mii} exceeds accelerator maximum II {max_ii}", mii_result)
    static_priority = priority is not None

    def orders_for(ii: int) -> list[tuple[str, PriorityResult]]:
        """Candidate (kind, ordering) pairs for one II attempt.

        With a static encoding the order is fixed (that is the point of
        the encoding); a cheap program-order fallback still applies so a
        marginal loop degrades to a worse schedule rather than to the
        scalar core.  Dynamically, the priority is recomputed at each
        candidate II — E/L windows tighten as II grows, which is how the
        SMS algorithm itself iterates — with the height order as a
        secondary attempt.
        """
        pwork = priority_work if priority_work is not None else work
        candidates: list[tuple[str, PriorityResult]] = []
        if static_priority:
            assert priority is not None
            candidates.append(("static", priority))
        elif priority_kind == "swing":
            candidates.append(
                ("swing", swing_priority(dfg, schedulable, ii, pwork)))
            candidates.append(
                ("height", height_priority(dfg, schedulable, ii, pwork)))
        elif priority_kind == "height":
            candidates.append(
                ("height", height_priority(dfg, schedulable, ii, pwork)))
        else:
            raise ValueError(f"unknown priority kind {priority_kind!r}")
        candidates.append(
            ("program", PriorityResult.from_order(sorted(schedulable))))
        return candidates

    def normalise(result: PriorityResult) -> list[int]:
        order = [opid for opid in result.order if opid in schedulable]
        missing = schedulable - set(order)
        return order + sorted(missing)

    attempts: list[AttemptDiagnostic] = []
    for ii in range(mii, max_ii + 1):
        for order_kind, candidate in orders_for(ii):
            obs.inc("scheduler.attempts")
            outcome = _try_schedule(dfg, normalise(candidate),
                                    candidate.earliest, ii, units, work)
            if isinstance(outcome, _PlacementFailure):
                attempts.append(AttemptDiagnostic(
                    ii=ii, order_kind=order_kind,
                    failed_opid=outcome.failed_opid,
                    resource=outcome.resource, cause=outcome.cause))
                continue
            obs.inc("scheduler.schedules")
            obs.observe("scheduler.attempts_per_ii", ii - mii + 1)
            obs.observe("scheduler.ii", ii)
            return ModuloSchedule(ii=ii, times=outcome, units=dict(units),
                                  mii=mii, res_mii=mii_result.res_mii,
                                  rec_mii=mii_result.rec_mii)
    obs.inc("scheduler.exhaustions")
    return ScheduleFailure(
        f"no feasible schedule up to maximum II {max_ii}", mii_result,
        attempts)

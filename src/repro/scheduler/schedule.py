"""Modulo schedule representation, validation and timing.

A modulo schedule assigns each compute op an absolute time within one
iteration's software pipeline.  ``stage = time // II`` and
``cycle = time mod II`` (Section 2.2); the schedule's *stage count* (SC)
bounds iteration latency while II bounds throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.dfg import DataflowGraph
from repro.scheduler.mii import sched_resource


@dataclass
class ModuloSchedule:
    """A complete modulo schedule for one loop's compute partition.

    Attributes:
        ii: The initiation interval achieved.
        times: opid -> absolute schedule time (>= 0).
        units: The resource pools the schedule was built against.
        mii / res_mii / rec_mii: The bounds that constrained it.
    """

    ii: int
    times: dict[int, int]
    units: dict[str, int]
    mii: int = 1
    res_mii: int = 1
    rec_mii: int = 1

    def cycle(self, opid: int) -> int:
        return self.times[opid] % self.ii

    def stage(self, opid: int) -> int:
        return self.times[opid] // self.ii

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages (SC)."""
        if not self.times:
            return 1
        return max(self.times.values()) // self.ii + 1

    def completion_time(self, dfg: DataflowGraph) -> int:
        """Cycles from an iteration's start until its last result."""
        if not self.times:
            return 0
        return max(t + dfg.latency(opid) for opid, t in self.times.items())

    def kernel_cycles(self, trip_count: int, dfg: DataflowGraph) -> int:
        """Total cycles to execute *trip_count* overlapped iterations.

        Iteration *k* starts at ``k * II``; the loop completes when the
        last iteration's last result retires: ``(N-1) * II + span``.
        Prologue and epilogue are inside this expression — no separate
        ramp accounting is needed.
        """
        if trip_count <= 0 or not self.times:
            return 0
        return (trip_count - 1) * self.ii + self.completion_time(dfg)

    def placements(self) -> dict[int, tuple[int, str]]:
        """opid -> (time, resource) map for MRT rendering."""
        return {opid: (t, "?") for opid, t in self.times.items()}


def validate_schedule(schedule: ModuloSchedule, dfg: DataflowGraph,
                      schedulable: set[int]) -> list[str]:
    """Check modulo-scheduling invariants; returns a list of violations.

    * Coverage: every schedulable op has a time, and nothing else does.
    * Dependences: for every edge within the schedulable set,
      ``t(dst) >= t(src) + latency - II * distance``.
    * Resources: at each kernel cycle, per-pool usage <= pool size.
    """
    problems: list[str] = []
    ii = schedule.ii
    timed = set(schedule.times)
    for opid in schedulable - timed:
        problems.append(f"op{opid} not scheduled")
    for opid in timed - schedulable:
        problems.append(f"op{opid} scheduled but not schedulable")
    for opid, t in schedule.times.items():
        if t < 0:
            problems.append(f"op{opid} scheduled at negative time {t}")
    for e in dfg.edges:
        if e.src in schedule.times and e.dst in schedule.times:
            lhs = schedule.times[e.dst]
            rhs = schedule.times[e.src] + e.latency - ii * e.distance
            if lhs < rhs:
                problems.append(
                    f"edge op{e.src}->op{e.dst} (lat {e.latency}, "
                    f"dist {e.distance}) violated: {lhs} < {rhs}")
    usage: dict[tuple[int, str], int] = {}
    for opid, t in schedule.times.items():
        rc = sched_resource(dfg.op(opid))
        key = (t % ii, rc)
        usage[key] = usage.get(key, 0) + 1
    for (cycle, rc), used in usage.items():
        if used > schedule.units.get(rc, 0):
            problems.append(
                f"cycle {cycle}: {used} ops on {rc!r} but only "
                f"{schedule.units.get(rc, 0)} units")
    return problems

"""Physical register assignment with modulo variable expansion.

A value produced in one kernel iteration can still be live while later
iterations produce *their* copies of the same virtual register; a value
live for L cycles under initiation interval II needs ``ceil(L / II)``
physical copies, rotated across iterations (Rau's modulo variable
expansion — the software analogue of a rotating register file).

:mod:`repro.scheduler.regalloc` computes the per-value copy *demand*;
this module actually places every copy into a physical register file and
proves the placement sound: two live ranges sharing a physical register
never overlap in time, checked over an unrolled window of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.partition import LoopPartition
from repro.ir.dfg import DataflowGraph
from repro.ir.loop import Loop
from repro.ir.ops import Reg
from repro.scheduler.schedule import ModuloSchedule


@dataclass(frozen=True)
class LiveRange:
    """One virtual register's per-iteration lifetime.

    ``start`` is the producer's completion time within its own
    iteration; ``end`` the latest consumption time (across loop-carried
    uses, expressed in the producer iteration's frame).  In iteration k
    the range occupies absolute cycles ``[k*II + start, k*II + end)``.
    """

    vreg: Reg
    start: int
    end: int

    @property
    def length(self) -> int:
        return max(self.end - self.start, 0)


@dataclass
class PhysicalAssignment:
    """Placement of every live value into physical registers.

    Attributes:
        copies: vreg -> number of physical copies (modulo expansion).
        physical: (vreg, copy_index) -> physical register number, per
            register space.
        int_used / fp_used: physical registers consumed per space.
    """

    ranges: dict[Reg, LiveRange]
    copies: dict[Reg, int]
    physical: dict[tuple[Reg, int], int]
    int_used: int
    fp_used: int

    def register_for(self, vreg: Reg, iteration: int) -> int:
        """Physical register holding *vreg*'s iteration-*k* value."""
        n = self.copies[vreg]
        return self.physical[(vreg, iteration % n)]


def live_ranges(loop: Loop, dfg: DataflowGraph, schedule: ModuloSchedule,
                partition: LoopPartition) -> dict[Reg, LiveRange]:
    """Per-value live ranges under the modulo schedule.

    Mirrors the demand accounting of
    :func:`repro.scheduler.regalloc.register_requirements`: load results
    live in FIFOs, store-data operands stream out, and values consumed
    the cycle they appear ride the interconnect — none of those occupy
    registers.
    """
    ranges: dict[Reg, LiveRange] = {}
    ii = schedule.ii
    for op in loop.body:
        if op.opid not in partition.compute or op.opid not in schedule.times:
            continue
        if op.is_load:
            continue
        t_ready = schedule.times[op.opid] + dfg.latency(op.opid)
        for dest in op.dests:
            end = t_ready
            for e in dfg.out_edges(op.opid):
                if e.kind != "flow" or e.dst not in schedule.times:
                    continue
                consumer = loop.op(e.dst)
                if dest not in consumer.src_regs():
                    continue
                if consumer.is_store and len(consumer.srcs) > 2 and \
                        consumer.srcs[2] == dest and \
                        consumer.srcs[0] != dest and \
                        consumer.predicate != dest:
                    continue
                end = max(end, schedule.times[e.dst] + ii * e.distance)
            if dest in loop.live_outs:
                end = max(end, t_ready + 1)
            if end > t_ready:
                current = ranges.get(dest)
                rng = LiveRange(dest, t_ready, end)
                if current is None or rng.length > current.length:
                    ranges[dest] = rng
    return ranges


def assign_physical(loop: Loop, dfg: DataflowGraph,
                    schedule: ModuloSchedule,
                    partition: LoopPartition) -> PhysicalAssignment:
    """Place every live value's copies into physical registers.

    Uses linear-scan per register space over (copy, live-range) pairs;
    copies of one value are deliberately given distinct physical
    registers — that is the whole point of the expansion.
    """
    ii = schedule.ii
    ranges = live_ranges(loop, dfg, schedule, partition)
    copies = {vreg: -(-rng.length // ii) for vreg, rng in ranges.items()}
    physical: dict[tuple[Reg, int], int] = {}
    next_free = {"int": 0, "fp": 0}
    for vreg in sorted(ranges, key=lambda r: (r.space, r.name)):
        for c in range(copies[vreg]):
            physical[(vreg, c)] = next_free[vreg.space]
            next_free[vreg.space] += 1
    return PhysicalAssignment(ranges=ranges, copies=copies,
                              physical=physical,
                              int_used=next_free["int"],
                              fp_used=next_free["fp"])


def validate_rotation(assignment: PhysicalAssignment, ii: int,
                      window: int = 8) -> list[str]:
    """Prove no two values sharing a physical register overlap in time.

    Simulates *window* consecutive kernel iterations: value v of
    iteration k occupies physical register ``register_for(v, k)`` over
    ``[k*II + start, k*II + end)``.  Any overlap on the same physical
    register (same space) is a violation — including a value colliding
    with a later copy of itself, which is exactly what under-provisioned
    expansion would cause.
    """
    problems: list[str] = []
    occupancy: dict[tuple[str, int], list[tuple[int, int, Reg, int]]] = {}
    for vreg, rng in assignment.ranges.items():
        for k in range(window):
            phys = assignment.register_for(vreg, k)
            key = (vreg.space, phys)
            start = k * ii + rng.start
            end = k * ii + rng.end
            occupancy.setdefault(key, []).append((start, end, vreg, k))
    for (space, phys), intervals in occupancy.items():
        intervals.sort()
        for (s0, e0, v0, k0), (s1, e1, v1, k1) in zip(intervals,
                                                      intervals[1:]):
            if s1 < e0 and not (v0 == v1 and k0 == k1):
                problems.append(
                    f"{space} phys r{phys}: {v0} (iter {k0}, "
                    f"[{s0},{e0})) overlaps {v1} (iter {k1}, "
                    f"[{s1},{e1}))")
    return problems

"""Minimum initiation interval computation.

"The first step in modulo scheduling algorithms is to compute the
minimum II, which is a function of both the recurrences in the loop and
the resources available in the accelerator." (Section 4.1.)

* **ResMII**: for each resource class, ``ceil(ops / units)`` — "since
  there are 5 integer instructions in the loop and 2 integer units, II
  must be at least ceil(5/2)".
* **RecMII**: the maximum over recurrence cycles of
  ``ceil(latency(cycle) / distance(cycle))``, found by binary search on
  II with positive-cycle detection on edge weights
  ``latency - II * distance`` (a cycle with positive weight at candidate
  II means some recurrence cannot complete within its distance budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.dfg import DataflowGraph
from repro.ir.opcodes import Opcode, OpKind

#: Value used for "this resource has demand but zero units".
INFEASIBLE = 10 ** 9

#: Scheduler resource keys: integer units, FP units, the CCA, and the
#: load/store address generators that memory ops issue through.
INT_UNIT = "int"
FP_UNIT = "fp"
CCA_UNIT = "cca"
LOAD_GEN = "ldgen"
STORE_GEN = "stgen"


def sched_resource(op) -> str:
    """The accelerator resource pool *op* occupies for one cycle."""
    if op.opcode is Opcode.CCA_OP:
        return CCA_UNIT
    if op.is_load:
        return LOAD_GEN
    if op.is_store:
        return STORE_GEN
    if op.kind is OpKind.FLOAT:
        return FP_UNIT
    return INT_UNIT


@dataclass
class MIIResult:
    """Breakdown of the minimum II."""

    res_mii: int
    rec_mii: int
    per_resource: dict[str, int]

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)

    @property
    def feasible(self) -> bool:
        return self.res_mii < INFEASIBLE


def compute_res_mii(dfg: DataflowGraph, schedulable: set[int],
                    units: dict[str, int],
                    work: Optional[Callable[[int], None]] = None
                    ) -> tuple[int, dict[str, int]]:
    """Resource-constrained MII over the *schedulable* (compute) ops.

    Loads and stores are constrained by the load/store address
    generators they issue through; a class with zero available units and
    at least one op yields an infeasible ResMII (:data:`INFEASIBLE`).
    """
    counts: dict[str, int] = {}
    for opid in schedulable:
        if work is not None:
            work(1)
        rc = sched_resource(dfg.op(opid))
        counts[rc] = counts.get(rc, 0) + 1
    per_resource: dict[str, int] = {}
    res_mii = 1
    for rc, count in counts.items():
        available = units.get(rc, 0)
        if available <= 0:
            per_resource[rc] = INFEASIBLE
        else:
            per_resource[rc] = math.ceil(count / available)
        res_mii = max(res_mii, per_resource[rc])
    return res_mii, per_resource


def _has_positive_cycle(nodes: list[int],
                        edges: list[tuple[int, int, int, int]],
                        ii: int,
                        work: Optional[Callable[[int], None]] = None) -> bool:
    """Bellman-Ford longest-path relaxation; True if some cycle has
    positive weight ``latency - ii * distance``."""
    dist = {n: 0 for n in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            if work is not None:
                work(1)
            w = latency - ii * distance
            if dist[src] + w > dist[dst]:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    return True


def compute_rec_mii(dfg: DataflowGraph, schedulable: set[int],
                    work: Optional[Callable[[int], None]] = None,
                    ii_cap: int = 4096) -> int:
    """Recurrence-constrained MII over the *schedulable* ops.

    Only edges inside recurrence SCCs matter; acyclic spans cannot
    constrain II.  Binary search for the smallest II with no positive
    cycle.
    """
    sccs = dfg.recurrence_components(work=work, restrict=schedulable)
    rec_mii = 1
    for scc in sccs:
        members = set(scc)
        edges = [(e.src, e.dst, e.latency, e.distance)
                 for e in dfg.subgraph_edges(members)]
        lo, hi = 1, min(ii_cap, sum(max(e[2], 1) for e in edges) + 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if _has_positive_cycle(list(members), edges, mid, work):
                lo = mid + 1
            else:
                hi = mid
        rec_mii = max(rec_mii, lo)
    return rec_mii


def compute_mii(dfg: DataflowGraph, schedulable: set[int],
                units: dict[str, int],
                work: Optional[Callable[[int], None]] = None) -> MIIResult:
    """Full minimum-II calculation (ResMII and RecMII)."""
    res_mii, per_resource = compute_res_mii(dfg, schedulable, units, work)
    rec_mii = compute_rec_mii(dfg, schedulable, work)
    return MIIResult(res_mii=res_mii, rec_mii=rec_mii,
                     per_resource=per_resource)

"""The modulo reservation table.

"Once the ops are prioritized, a modulo reservation table is constructed
to store the scheduling results.  The table has II rows and a column for
each FU." (Section 4.1, and the right side of Figure 5.)

Rows are the II cycles of the kernel; columns are FU instances grouped
by resource pool (integer units, FP units, the CCA, load/store address
generator issue slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ModuloReservationTable:
    """Tracks per-cycle FU occupancy for one candidate II."""

    def __init__(self, ii: int, units: dict[str, int]) -> None:
        if ii < 1:
            raise ValueError("II must be at least 1")
        self.ii = ii
        self.units = dict(units)
        self._used: dict[tuple[int, str], int] = {}

    def cycle_of(self, time: int) -> int:
        """The kernel row a schedule time lands on (time mod II)."""
        return time % self.ii

    def available(self, time: int, resource: str) -> bool:
        """Is a *resource* slot free at ``time mod II``?"""
        cycle = self.cycle_of(time)
        return self._used.get((cycle, resource), 0) < self.units.get(resource, 0)

    def reserve(self, time: int, resource: str) -> None:
        """Claim a slot; caller must have checked :meth:`available`."""
        if not self.available(time, resource):
            raise ValueError(
                f"no free {resource!r} unit at cycle {self.cycle_of(time)}")
        key = (self.cycle_of(time), resource)
        self._used[key] = self._used.get(key, 0) + 1

    def release(self, time: int, resource: str) -> None:
        """Return a slot (used when ejecting an op during backtracking)."""
        key = (self.cycle_of(time), resource)
        if self._used.get(key, 0) <= 0:
            raise ValueError(f"releasing unreserved {resource!r} slot")
        self._used[key] -= 1

    def occupancy(self, resource: str) -> float:
        """Fraction of this resource's II slots that are reserved."""
        total = self.units.get(resource, 0) * self.ii
        if total == 0:
            return 0.0
        used = sum(v for (cycle, r), v in self._used.items() if r == resource)
        return used / total

    def render(self, placements: dict[int, tuple[int, str]]) -> str:
        """ASCII rendering like Figure 5's table.

        Args:
            placements: opid -> (schedule time, resource).
        """
        columns: list[tuple[str, int]] = []
        for resource, count in sorted(self.units.items()):
            for k in range(count):
                columns.append((resource, k))
        grid: dict[tuple[int, str, int], list[int]] = {}
        slot_of: dict[tuple[int, str], int] = {}
        for opid, (time, resource) in sorted(placements.items(),
                                             key=lambda kv: kv[1][0]):
            cycle = self.cycle_of(time)
            index = slot_of.get((cycle, resource), 0)
            slot_of[(cycle, resource)] = index + 1
            grid.setdefault((cycle, resource, index), []).append(opid)
        header = "cycle | " + " | ".join(f"{r}{k}" for r, k in columns)
        lines = [header, "-" * len(header)]
        for cycle in range(self.ii):
            cells = []
            for resource, k in columns:
                ops = grid.get((cycle, resource, k), [])
                cells.append(",".join(f"op{o}" for o in ops) or ".")
            lines.append(f"{cycle:5d} | " + " | ".join(f"{c:>5}" for c in cells))
        return "\n".join(lines)

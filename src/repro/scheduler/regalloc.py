"""Register requirement analysis and assignment.

"After a loop schedule is generated, a postpass maps operands from the
loop representation in baseline assembly code to the register
files/memory buffers in the LA.  If there are not enough registers to
support the translated loop, translation aborts, and the loop is
executed on the baseline processor." (Section 4.1.)

Figure 3(b)'s accounting rules are implemented exactly: registers hold
live-ins, live-outs, constants and temporaries, but NOT values read
from / written into memory FIFOs, nor values read directly off the
interconnect (consumed the cycle they are produced).  Values that stay
live across multiple concurrent iterations need one register per live
copy (modulo variable expansion: ``ceil(lifetime / II)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.partition import LoopPartition
from repro.ir.dfg import DataflowGraph
from repro.ir.loop import Loop
from repro.ir.ops import Imm, Reg
from repro.scheduler.schedule import ModuloSchedule


@dataclass
class RegisterAssignment:
    """Operand mapping into the accelerator's register files.

    Attributes:
        int_regs / fp_regs: physical registers needed per file.
        mapping: virtual register -> physical index within its space.
        constants: distinct immediates materialised into registers,
            keyed by (space, value).
        detail: per-category counts for the Figure 3(b) analysis.
    """

    int_regs: int
    fp_regs: int
    mapping: dict[Reg, int] = field(default_factory=dict)
    constants: dict[tuple[str, object], int] = field(default_factory=dict)
    detail: dict[str, int] = field(default_factory=dict)


def register_requirements(loop: Loop, dfg: DataflowGraph,
                          schedule: ModuloSchedule,
                          partition: LoopPartition,
                          work: Optional[Callable[[int], None]] = None
                          ) -> RegisterAssignment:
    """Compute the register-file demand of a scheduled loop.

    Uses a one-to-one mapping from baseline virtual registers to
    accelerator registers (Section 4.2: "The register assignment process
    uses a one-to-one mapping from the baseline ISA to the accelerator
    registers"), with FIFO and interconnect exemptions applied.
    """
    def charge(n: int) -> None:
        if work is not None:
            work(n)

    compute = partition.compute
    ii = schedule.ii
    demand: dict[Reg, int] = {}
    reg_space: dict[Reg, str] = {}

    # Live-in scalars consumed by compute ops.  Array bases / induction
    # state consumed only by address generators and loop control live in
    # that hardware's own configuration storage.
    live_in_set = set(loop.live_ins)
    for op in loop.body:
        if op.opid not in compute:
            continue
        charge(1)
        for reg in op.src_regs():
            if reg in live_in_set:
                demand[reg] = max(demand.get(reg, 0), 1)
                reg_space[reg] = reg.space
    live_in_count = len(demand)

    # Distinct constants used by compute ops.  Memory-op immediates are
    # address offsets folded into the address generator configuration,
    # and short integer literals (8-bit signed) fold into the FU control
    # words; only wide literals occupy register-file entries, matching
    # Figure 3(b)'s "constants" accounting.
    constants: dict[tuple[str, object], int] = {}

    def note_constants(srcs) -> None:
        for src in srcs:
            charge(1)
            if isinstance(src, Imm):
                if isinstance(src.value, int) and -128 <= src.value <= 127:
                    continue
                space = "fp" if isinstance(src.value, float) else "int"
                constants.setdefault((space, src.value), len(constants))

    for op in loop.body:
        if op.opid not in compute or op.is_memory:
            continue
        note_constants(op.srcs)
        for inner in op.inner:  # CCA compounds carry their own literals
            note_constants(inner.srcs)

    # Temporaries: producer in compute, consumer in compute.
    for op in loop.body:
        if op.opid not in compute or op.opid not in schedule.times:
            continue
        if op.is_load:
            continue  # value waits in the input FIFO, not a register
        t_ready = schedule.times[op.opid] + dfg.latency(op.opid)
        for dest in op.dests:
            lifetime = 0
            is_live_out = dest in loop.live_outs
            for e in dfg.out_edges(op.opid):
                charge(1)
                if e.kind != "flow" or e.dst not in schedule.times:
                    continue
                consumer = loop.op(e.dst)
                if dest not in consumer.src_regs():
                    continue
                if consumer.is_store and len(consumer.srcs) > 2 and \
                        consumer.srcs[2] == dest and \
                        consumer.srcs[0] != dest and \
                        consumer.predicate != dest:
                    # Store data goes straight into the output FIFO —
                    # "registers are not needed ... for values written
                    # into memory FIFOs" (Figure 3(b) accounting).
                    continue
                use_time = schedule.times[e.dst] + ii * e.distance
                lifetime = max(lifetime, use_time - t_ready)
            if is_live_out:
                lifetime = max(lifetime, 1)
            if lifetime > 0:
                copies = -(-lifetime // ii)  # ceil
                demand[dest] = max(demand.get(dest, 0), copies)
                reg_space[dest] = dest.space

    int_total = sum(c for r, c in demand.items()
                    if reg_space.get(r, "int") == "int")
    fp_total = sum(c for r, c in demand.items()
                   if reg_space.get(r, "fp") == "fp")
    int_total += sum(1 for (space, _v) in constants if space == "int")
    fp_total += sum(1 for (space, _v) in constants if space == "fp")

    mapping: dict[Reg, int] = {}
    next_index = {"int": 0, "fp": 0}
    for reg in sorted(demand, key=lambda r: (r.space, r.name)):
        space = reg_space.get(reg, reg.space)
        mapping[reg] = next_index[space]
        next_index[space] += demand[reg]

    detail = {
        "live_ins": live_in_count,
        "live_outs": len(loop.live_outs),
        "constants": len(constants),
        "values": len(demand),
    }
    return RegisterAssignment(int_regs=int_total, fp_regs=fp_total,
                              mapping=mapping, constants=constants,
                              detail=detail)


def fits(assignment: RegisterAssignment, num_int: int, num_fp: int) -> bool:
    """Does the demand fit the accelerator's register files?"""
    return assignment.int_regs <= num_int and assignment.fp_regs <= num_fp

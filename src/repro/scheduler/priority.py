"""Scheduling priority computation.

Two priority functions from the paper's evaluation (Section 4.2/4.3):

* **Swing priority** — the ordering phase of Swing Modulo Scheduling
  [Llosa et al.]: schedule the most critical recurrence first, then less
  critical recurrences (together with the nodes on paths connecting
  them), then the acyclic remainder; within each set, alternate
  top-down/bottom-up so every node is placed adjacent to already-placed
  neighbours.  This is the step that consumed 69% of translation time
  (Figure 8) and is the prime candidate for static encoding (Figure 9c).

* **Height-based priority** — Rau's iterative-modulo-scheduling priority
  [24]: order by decreasing height (longest II-weighted path to the end
  of the iteration).  Much cheaper to compute, but "using the
  height-based priority function in conjunction with the single-pass
  list scheduling often yielded sub-optimal schedules" — the "Fully
  Dynamic Height Priority" bars of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ir.dfg import DataflowGraph, Edge
from repro.scheduler.mii import compute_rec_mii


@dataclass
class PriorityResult:
    """Scheduling order plus the analyses behind it.

    ``order`` is the list of opids in scheduling order; ``rank[opid]``
    is its position — the single number per op that static priority
    encoding places in the binary's data section (Figure 9(c)).
    """

    order: list[int]
    rank: dict[int, int]
    earliest: dict[int, int]
    latest: dict[int, int]
    height: dict[int, int]
    depth: dict[int, int]
    scc_miis: list[tuple[int, list[int]]] = field(default_factory=list)

    @classmethod
    def from_order(cls, order: list[int]) -> "PriorityResult":
        rank = {opid: i for i, opid in enumerate(order)}
        zeros = {opid: 0 for opid in order}
        return cls(order=order, rank=rank, earliest=dict(zeros),
                   latest=dict(zeros), height=dict(zeros), depth=dict(zeros))


def _sub_edges(dfg: DataflowGraph, nodes: set[int]) -> list[Edge]:
    return [e for e in dfg.edges
            if e.kind == "flow" and e.src in nodes and e.dst in nodes]


def _asap_alap(dfg: DataflowGraph, nodes: set[int], ii: int,
               work: Optional[Callable[[int], None]] = None
               ) -> tuple[dict[int, int], dict[int, int]]:
    """Earliest/latest start times at initiation interval *ii*.

    Longest-path fixpoints with edge weight ``latency - ii * distance``;
    converges because ii >= RecMII guarantees no positive cycles.
    """
    edges = _sub_edges(dfg, nodes)
    earliest = {n: 0 for n in nodes}
    for _ in range(len(nodes) + 1):
        changed = False
        for e in edges:
            if work is not None:
                work(1)
            t = earliest[e.src] + e.latency - ii * e.distance
            if t > earliest[e.dst]:
                earliest[e.dst] = t
                changed = True
        if not changed:
            break
    end = max((earliest[n] + dfg.latency(n) for n in nodes), default=0)
    latest = {n: end - dfg.latency(n) for n in nodes}
    for _ in range(len(nodes) + 1):
        changed = False
        for e in edges:
            if work is not None:
                work(1)
            t = latest[e.dst] - e.latency + ii * e.distance
            if t < latest[e.src]:
                latest[e.src] = t
                changed = True
        if not changed:
            break
    return earliest, latest


def height_priority(dfg: DataflowGraph, schedulable: set[int], ii: int,
                    work: Optional[Callable[[int], None]] = None
                    ) -> PriorityResult:
    """Rau's height-based priority: decreasing height order."""
    earliest, latest = _asap_alap(dfg, schedulable, ii, work)
    end = max((earliest[n] + dfg.latency(n) for n in schedulable), default=0)
    height = {n: end - latest[n] for n in schedulable}
    depth = dict(earliest)
    order = sorted(schedulable, key=lambda n: (-height[n], earliest[n], n))
    if work is not None:
        work(len(order))
    rank = {opid: i for i, opid in enumerate(order)}
    return PriorityResult(order=order, rank=rank, earliest=earliest,
                          latest=latest, height=height, depth=depth)


def _reachable(dfg: DataflowGraph, sources: set[int], within: set[int],
               forward: bool,
               work: Optional[Callable[[int], None]] = None) -> set[int]:
    """Nodes of *within* reachable from *sources* along flow edges."""
    seen = set(sources)
    frontier = list(sources)
    while frontier:
        node = frontier.pop()
        neighbours = dfg.successors(node) if forward else dfg.predecessors(node)
        for n in neighbours:
            if work is not None:
                work(1)
            if n in within and n not in seen:
                seen.add(n)
                frontier.append(n)
    return seen


def _build_sets(dfg: DataflowGraph, schedulable: set[int],
                work: Optional[Callable[[int], None]] = None
                ) -> tuple[list[list[int]], list[tuple[int, list[int]]]]:
    """SMS node sets: recurrences by decreasing criticality, each
    augmented with the nodes on paths to previously chosen sets, then
    the acyclic remainder."""
    sccs = dfg.recurrence_components(work=work, restrict=schedulable)
    scored: list[tuple[int, list[int]]] = []
    for scc in sccs:
        mii = compute_rec_mii(dfg, set(scc), work=work)
        scored.append((mii, sorted(scc)))
    scored.sort(key=lambda item: (-item[0], item[1]))

    sets: list[list[int]] = []
    chosen: set[int] = set()
    for _, scc in scored:
        members = set(scc) - chosen
        if not members:
            continue
        if chosen:
            # Nodes on paths between already-chosen nodes and this SCC.
            down = _reachable(dfg, chosen, schedulable, True, work)
            up = _reachable(dfg, members, schedulable, False, work)
            bridge = (down & up) - chosen - members
            down2 = _reachable(dfg, members, schedulable, True, work)
            up2 = _reachable(dfg, chosen, schedulable, False, work)
            bridge |= (down2 & up2) - chosen - members
            members |= bridge
        sets.append(sorted(members))
        chosen |= members
    rest = schedulable - chosen
    if rest:
        sets.append(sorted(rest))
    return sets, scored


def swing_priority(dfg: DataflowGraph, schedulable: set[int], ii: int,
                   work: Optional[Callable[[int], None]] = None
                   ) -> PriorityResult:
    """Swing Modulo Scheduling node ordering.

    Within each set the order alternates direction: top-down passes pick
    the node of maximum height among nodes with an ordered predecessor,
    bottom-up passes the node of maximum depth among nodes with an
    ordered successor, so every scheduled node has a placed neighbour —
    the property that lets the scheduler keep operand lifetimes short.
    """
    earliest, latest = _asap_alap(dfg, schedulable, ii, work)
    end = max((earliest[n] + dfg.latency(n) for n in schedulable), default=0)
    height = {n: end - latest[n] for n in schedulable}
    depth = dict(earliest)
    mobility = {n: latest[n] - earliest[n] for n in schedulable}
    sets, scored = _build_sets(dfg, schedulable, work)

    def flow_succs(n: int) -> list[int]:
        return [e.dst for e in dfg.out_edges(n)
                if e.kind == "flow" and e.dst in schedulable]

    def flow_preds(n: int) -> list[int]:
        return [e.src for e in dfg.in_edges(n)
                if e.kind == "flow" and e.src in schedulable]

    order: list[int] = []
    placed: set[int] = set()
    for node_set in sets:
        unplaced = set(node_set) - placed
        while unplaced:
            with_pred = {v for v in unplaced
                         if any(p in placed for p in flow_preds(v))}
            with_succ = {v for v in unplaced
                         if any(s in placed for s in flow_succs(v))}
            if work is not None:
                work(len(unplaced))
            if with_pred and not with_succ:
                direction, ready = "down", with_pred
            elif with_succ and not with_pred:
                direction, ready = "up", with_succ
            elif with_pred:
                direction, ready = "down", with_pred
            else:
                # Nothing adjacent to placed nodes: start the set from
                # its most critical node, top-down.
                direction = "down"
                ready = {max(unplaced,
                             key=lambda v: (height[v], -mobility[v], -v))}
            while ready:
                if work is not None:
                    work(len(ready))
                if direction == "down":
                    v = max(ready, key=lambda u: (height[u], -mobility[u], -u))
                else:
                    v = max(ready, key=lambda u: (depth[u], -mobility[u], -u))
                order.append(v)
                placed.add(v)
                unplaced.discard(v)
                ready.discard(v)
                grow = flow_succs(v) if direction == "down" else flow_preds(v)
                for n in grow:
                    if n in unplaced:
                        ready.add(n)
            # Ready pool drained: swing to the other direction.
    rank = {opid: i for i, opid in enumerate(order)}
    return PriorityResult(order=order, rank=rank, earliest=earliest,
                          latest=latest, height=height, depth=depth,
                          scc_miis=scored)

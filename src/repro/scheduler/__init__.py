"""Swing modulo scheduling for loop accelerators."""

from repro.scheduler.mii import (
    CCA_UNIT,
    FP_UNIT,
    INFEASIBLE,
    INT_UNIT,
    LOAD_GEN,
    MIIResult,
    STORE_GEN,
    compute_mii,
    compute_rec_mii,
    compute_res_mii,
    sched_resource,
)
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.priority import (
    PriorityResult,
    height_priority,
    swing_priority,
)
from repro.scheduler.regalloc import (
    RegisterAssignment,
    fits,
    register_requirements,
)
from repro.scheduler.rotation import (
    LiveRange,
    PhysicalAssignment,
    assign_physical,
    live_ranges,
    validate_rotation,
)
from repro.scheduler.schedule import ModuloSchedule, validate_schedule
from repro.scheduler.sms import ScheduleFailure, modulo_schedule

__all__ = [
    "CCA_UNIT", "FP_UNIT", "INFEASIBLE", "INT_UNIT", "LOAD_GEN",
    "LiveRange", "MIIResult", "ModuloReservationTable", "ModuloSchedule",
    "PhysicalAssignment", "PriorityResult", "RegisterAssignment",
    "STORE_GEN", "ScheduleFailure", "assign_physical", "compute_mii",
    "compute_rec_mii", "compute_res_mii", "fits", "height_priority",
    "live_ranges", "modulo_schedule", "register_requirements",
    "sched_resource", "swing_priority", "validate_rotation",
    "validate_schedule",
]

"""Loop unrolling and re-rolling support.

The paper's static preparation includes "reduced unrolling" (Figure 7):
source loops often arrive over- or under-unrolled for the accelerator,
and the unroll factor is a static decision the dynamic translator
cannot revisit.  :func:`unroll_loop` replicates the body — textual
def-use semantics make plain replication semantically exact, including
in-place updates like induction variables and accumulators — which
multiplies per-iteration work (more ResMII pressure, fewer iterations).
"""

from __future__ import annotations

import itertools

from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


class UnrollError(ValueError):
    """The loop cannot be unrolled by the requested factor."""


def unroll_loop(loop: Loop, factor: int) -> Loop:
    """Unroll *loop* by *factor*.

    The trip count must be divisible by *factor* (the general case needs
    a remainder loop, which the accelerator-facing compiler avoids by
    choosing factors that divide the iteration space).  Copies 0..f-2
    keep their induction updates but drop the compare/branch; the final
    copy keeps the original control tail.
    """
    if factor < 1:
        raise UnrollError("factor must be >= 1")
    if factor == 1:
        return loop.rebuild()
    if loop.trip_count % factor != 0:
        raise UnrollError(
            f"trip count {loop.trip_count} not divisible by {factor}")
    branch = loop.branch
    if branch is None:
        raise UnrollError("loop has no loop-back branch")
    # The compare feeding the branch is dropped from all but the last copy.
    cond_srcs = set(branch.src_regs())
    drop_in_early_copies = {branch.opid}
    for op in loop.body:
        if any(d in cond_srcs for d in op.dests) and \
                op.opcode.value.startswith("cmp"):
            drop_in_early_copies.add(op.opid)

    ids = itertools.count(max(op.opid for op in loop.body) + 1)
    body: list[Operation] = []
    for copy_index in range(factor):
        last = copy_index == factor - 1
        for op in loop.body:
            if not last and op.opid in drop_in_early_copies:
                continue
            new_id = op.opid if copy_index == 0 else next(ids)
            body.append(op.copy(opid=new_id))

    new = loop.rebuild(body=body, name=f"{loop.name}_x{factor}",
                       trip_count=loop.trip_count // factor)
    transforms = list(new.annotations.get("static_transforms", []))
    if "unrolling" not in transforms:
        transforms.append("unrolling")
    new.annotations["static_transforms"] = transforms
    return new

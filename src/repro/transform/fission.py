"""Loop fission.

Section 3.1: "Another potential solution is to break the large loops up
into smaller loops using a technique such as loop fissioning.  This
would reduce the required number of streams for each individual loop but
increase memory traffic, as dividing the loop up typically creates
communication streams between the smaller loops."

Fission splits one loop into two: the SCC condensation of the dataflow
graph is walked in topological order and components are assigned to the
first loop until roughly half the FU pressure is placed; values flowing
across the cut are materialised through per-value scratch arrays (the
"communication streams").  Section 4.2 classifies this as a transform
too complex for the time-constrained dynamic environment — it runs in
the *static* compiler, which is why binaries compiled without it lose
most of the accelerator's benefit (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.partition import partition_loop
from repro.ir.dfg import build_dfg
from repro.ir.graphalgo import condensation
from repro.ir.loop import ArrayDecl, Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operation, Reg


class FissionError(ValueError):
    """The loop cannot be legally fissioned."""


def _fu_weight(op: Operation) -> int:
    """Rough FU pressure contribution used to balance the two halves."""
    if op.is_memory or op.is_control:
        return 0
    return 1


def fission_loop(loop: Loop, name_suffixes: tuple[str, str] = ("_p1", "_p2"),
                 balance: float = 0.5) -> tuple[Loop, Loop]:
    """Split *loop* into two dependence-legal halves.

    Raises :class:`FissionError` when any value would have to flow
    backwards across the cut at a loop-carried distance (a recurrence
    spanning the cut), which plain fission cannot express.

    Returns ``(first, second)``; running them back to back over the same
    memory is semantically equivalent to the original loop, which the
    transform tests check against the interpreter.
    """
    dfg = build_dfg(loop)
    part = partition_loop(loop, dfg)
    body_ids = [op.opid for op in loop.body]
    compute_ids = [i for i in body_ids if i in part.compute]
    if len(compute_ids) < 4:
        raise FissionError("loop too small to fission")

    # Condense the compute subgraph over ALL dependence distances so a
    # recurrence can never straddle the cut.
    allowed = set(compute_ids)

    def succs(n: int):
        return [e.dst for e in dfg.out_edges(n) if e.dst in allowed]

    sccs, comp_of, dag = condensation(compute_ids, succs)
    # Topological sort of the component DAG, breaking ties by program
    # order so the cut follows the textual flow of the loop.
    indeg = [0] * len(sccs)
    for a in range(len(sccs)):
        for b_ in dag[a]:
            indeg[b_] += 1
    ready = sorted([c for c in range(len(sccs)) if indeg[c] == 0],
                   key=lambda c: min(loop.index_of(m) for m in sccs[c]))
    topo: list[int] = []
    while ready:
        c = ready.pop(0)
        topo.append(c)
        for d in sorted(dag[c]):
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
        ready.sort(key=lambda c2: min(loop.index_of(m) for m in sccs[c2]))
    if len(topo) != len(sccs):
        raise FissionError("compute condensation is not a DAG")

    total_weight = sum(_fu_weight(loop.op(i)) for i in compute_ids)

    def cut_metrics(prefix: int) -> tuple[set[int], set[int], int, float]:
        """Sides, crossing-value count and weight fraction for a cut
        after *prefix* components."""
        s1 = {m for c in topo[:prefix] for m in sccs[c]}
        s2 = allowed - s1
        cross: set[Reg] = set()
        for e in dfg.edges:
            if e.src in s1 and e.dst in s2 and e.kind == "flow" and \
                    e.distance == 0:
                for d in loop.op(e.src).dests:
                    if d in loop.op(e.dst).src_regs():
                        cross.add(d)
        weight = sum(_fu_weight(loop.op(m)) for m in s1)
        frac = weight / total_weight if total_weight else 0.0
        return s1, s2, len(cross), frac

    # Choose the cut with the fewest communication streams among cuts
    # that are reasonably balanced — fission trades memory traffic for
    # per-loop resource pressure, so extra streams are the cost metric.
    best: Optional[tuple[int, float, int]] = None  # (crossing, skew, prefix)
    for prefix in range(1, len(sccs)):
        _s1, _s2, crossing_n, frac = cut_metrics(prefix)
        if not 0.25 <= frac <= 0.75:
            continue
        skew = abs(frac - balance)
        key = (crossing_n, skew, prefix)
        if best is None or key < best:
            best = key
    if best is None:
        raise FissionError("could not find a balanced cut")
    side1, side2, _, _ = cut_metrics(best[2])

    # Legality: no dependence from side2 back into side1.
    for e in dfg.edges:
        if e.src in side2 and e.dst in side1:
            raise FissionError(
                f"dependence op{e.src}->op{e.dst} crosses the cut backwards")
    # Values crossing the cut at distance >= 1 would need prologue
    # initialisation of the scratch arrays; reject for simplicity.
    crossing: dict[Reg, int] = {}
    for e in dfg.edges:
        if e.src in side1 and e.dst in side2 and e.kind == "flow":
            if e.distance > 0:
                raise FissionError(
                    f"loop-carried value crosses the cut "
                    f"(op{e.src}->op{e.dst})")
            for d in loop.op(e.src).dests:
                if d in loop.op(e.dst).src_regs():
                    crossing[d] = e.src

    # Support ops (address and control slices) are cheap and offloaded;
    # each side receives the ones its ops depend on.
    support = part.address | part.control

    def backward_closure(seed: set[int]) -> set[int]:
        needed = set(seed)
        frontier = list(seed)
        while frontier:
            n = frontier.pop()
            for e in dfg.in_edges(n):
                if e.kind != "flow" or e.distance > 0:
                    continue
                if e.src in support and e.src not in needed:
                    needed.add(e.src)
                    frontier.append(e.src)
        return needed

    # The control slice (induction, compare, branch) goes to both sides.
    control_ids = part.control

    # Communication arrays are indexed by the raw induction value, which
    # advances by the induction step each iteration — size accordingly.
    iv_for_size = _induction_reg(loop)
    iv_step = 1
    for op in loop.body:
        if op.defines(iv_for_size) and op.opcode is Opcode.ADD and \
                len(op.srcs) == 2 and isinstance(op.srcs[1], Imm):
            iv_step = max(1, abs(int(op.srcs[1].value)))
    comm_length = loop.trip_count * iv_step + 8

    def build_side(member_ids: set[int], suffix: str,
                   comm_stores: dict[Reg, int],
                   comm_loads: list[Reg]) -> Loop:
        wanted = backward_closure(member_ids | control_ids) | member_ids \
            | control_ids
        body: list[Operation] = []
        next_id = max(body_ids) + 1
        # Communication loads go first (they feed everything).
        comm_arrays: list[ArrayDecl] = []
        iv = _induction_reg(loop)
        for reg in comm_loads:
            arr_name = f"fx_{reg.name}"
            comm_arrays.append(ArrayDecl(arr_name, comm_length,
                                         is_float=reg.space == "fp"))
            addr = Reg(f"fxa_{reg.name}")
            body.append(Operation(next_id, Opcode.ADD, [addr],
                                  [Reg(arr_name), iv],
                                  comment="fission comm addr"))
            opcode = Opcode.FLOAD if reg.space == "fp" else Opcode.LOAD
            body.append(Operation(next_id + 1, opcode, [reg],
                                  [addr, Imm(0)],
                                  comment="fission comm load"))
            next_id += 2
        # Compute and address ops in original order; the control tail
        # (induction update, compare, branch) is appended last so the
        # communication streams index with the pre-increment induction
        # value on both sides.
        for op in loop.body:
            if op.opid in wanted and op.opid not in control_ids and \
                    op.opcode is not Opcode.BR:
                body.append(op.copy())
        # Communication stores before the loop control tail.
        for reg, _src in comm_stores.items():
            arr_name = f"fx_{reg.name}"
            comm_arrays.append(ArrayDecl(arr_name, comm_length,
                                         is_float=reg.space == "fp"))
            addr = Reg(f"fxs_{reg.name}")
            body.append(Operation(next_id, Opcode.ADD, [addr],
                                  [Reg(arr_name), iv],
                                  comment="fission comm addr"))
            opcode = Opcode.FSTORE if reg.space == "fp" else Opcode.STORE
            body.append(Operation(next_id + 1, opcode, [],
                                  [addr, Imm(0), reg],
                                  comment="fission comm store"))
            next_id += 2
        # Control tail, preserving original order (IV update, cmp, br).
        tail = [op.copy() for op in loop.body
                if op.opid in control_ids or op.opcode is Opcode.BR]
        seen_tail = {op.opid for op in body}
        for op in tail:
            if op.opid not in seen_tail:
                body.append(op)
                seen_tail.add(op.opid)

        used_arrays = []
        referenced = {r.name for op in body for r in op.src_regs()}
        for arr in loop.arrays:
            if arr.name in referenced:
                used_arrays.append(arr)
        used_arrays.extend(a for a in comm_arrays
                           if a.name not in {x.name for x in used_arrays})
        new = Loop(
            name=loop.name + suffix,
            body=body,
            live_ins=[],
            live_outs=[r for r in loop.live_outs
                       if any(op.defines(r) for op in body)],
            arrays=used_arrays,
            trip_count=loop.trip_count,
            invocations=loop.invocations,
            annotations=dict(loop.annotations),
        )
        new.live_ins = sorted(new.compute_live_ins(),
                              key=lambda r: (r.space, r.name))
        return new

    first = build_side(side1, name_suffixes[0],
                       comm_stores=crossing, comm_loads=[])
    second = build_side(side2, name_suffixes[1],
                        comm_stores={}, comm_loads=sorted(
                            crossing, key=lambda r: (r.space, r.name)))
    return first, second


def _induction_reg(loop: Loop) -> Reg:
    """The register the loop-bound compare tests (the induction var)."""
    branch = loop.branch
    if branch is None:
        raise FissionError("loop has no branch")
    cond = branch.srcs[0]
    for op in loop.body:
        if isinstance(cond, Reg) and op.defines(cond):
            for src in op.srcs:
                if isinstance(src, Reg):
                    return src
    raise FissionError("could not identify the induction variable")

"""Static loop transformations (too complex for the dynamic VM)."""

from repro.transform.fission import FissionError, fission_loop
from repro.transform.inline import (
    InlinableFunction,
    inline_calls,
    polynomial_sin,
)
from repro.transform.predication import (
    DiamondLoopSpec,
    diamond_cfg,
    if_convert,
)
from repro.transform.unroll import UnrollError, unroll_loop

__all__ = [
    "DiamondLoopSpec", "FissionError", "InlinableFunction", "UnrollError",
    "diamond_cfg", "fission_loop", "if_convert", "inline_calls",
    "polynomial_sin", "unroll_loop",
]

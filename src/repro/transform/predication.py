"""If-conversion (full predication).

The accelerator supports no control flow inside the loop body:
"Branches within the loop body are fully predicated enabling very
simple logic in the accelerator" (Section 2.1).  A loop whose body is
an if/else diamond must be if-converted by the *static* compiler
("aggressive predication", Figure 7) before the runtime can touch it —
the VM's loop identification rejects multi-block bodies outright.

This module provides both directions of that story:

* :func:`diamond_cfg` builds the multi-block form a normal compiler
  would emit (which :func:`repro.ir.cfg.identify_loops` rejects), and
* :func:`if_convert` produces the fully predicated single-block loop,
  renaming branch-local definitions and inserting SELECTs at the merge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.loop import ArrayDecl, Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operation, Reg


@dataclass
class DiamondLoopSpec:
    """A structured description of a loop body with one if/else.

    Attributes:
        name: Loop name.
        header: Straight-line ops ending with the definition of ``cond``.
        cond: The branch condition register.
        then_ops / else_ops: The two arms.  Registers they define are
            branch-local or merged (a register defined in both arms, or
            defined in one arm and live before the diamond, is merged
            with a SELECT).
        tail: Ops after the merge, *excluding* loop control.
        trip_count / arrays / live_ins / live_outs: As on :class:`Loop`.
    """

    name: str
    header: list[Operation]
    cond: Reg
    then_ops: list[Operation]
    else_ops: list[Operation]
    tail: list[Operation]
    trip_count: int = 64
    invocations: int = 1
    arrays: list[ArrayDecl] = field(default_factory=list)
    live_ins: list[Reg] = field(default_factory=list)
    live_outs: list[Reg] = field(default_factory=list)
    counter: Reg = field(default_factory=lambda: Reg("i"))
    counter_step: int = 1

    def control_ops(self, next_id: itertools.count) -> list[Operation]:
        cond = Reg(f"{self.name}_bound")
        return [
            Operation(next(next_id), Opcode.ADD, [self.counter],
                      [self.counter, Imm(self.counter_step)],
                      comment="induction update"),
            Operation(next(next_id), Opcode.CMPLT, [cond],
                      [self.counter,
                       Imm(self.trip_count * self.counter_step)],
                      comment="loop bound check"),
            Operation(next(next_id), Opcode.BR, [], [cond],
                      comment="loop-back branch"),
        ]


def _fresh_ids(spec: DiamondLoopSpec) -> itertools.count:
    used = [op.opid for ops in (spec.header, spec.then_ops, spec.else_ops,
                                spec.tail) for op in ops]
    return itertools.count((max(used) + 1) if used else 0)


def diamond_cfg(spec: DiamondLoopSpec) -> ControlFlowGraph:
    """The loop as a normal compiler emits it: four blocks plus glue.

    ``header -> then | else -> latch -> header | exit``.  This is the
    shape the VM's SCC-based identification finds but cannot extract a
    single fully-predicated body from.
    """
    ids = _fresh_ids(spec)
    branch_to_then = Operation(next(ids), Opcode.BR, [], [spec.cond],
                               comment="diamond branch")
    header = BasicBlock("header", ops=[op.copy() for op in spec.header]
                        + [branch_to_then],
                        successors=["then", "else"])
    then_block = BasicBlock("then", ops=[op.copy() for op in spec.then_ops],
                            successors=["latch"])
    else_block = BasicBlock("else", ops=[op.copy() for op in spec.else_ops],
                            successors=["latch"])
    latch_ops = [op.copy() for op in spec.tail] + spec.control_ops(ids)
    latch = BasicBlock("latch", ops=latch_ops,
                       successors=["header", "exit"])
    entry = BasicBlock("entry", successors=["header"])
    exit_block = BasicBlock("exit")
    return ControlFlowGraph("entry", [entry, header, then_block, else_block,
                                      latch, exit_block])


def if_convert(spec: DiamondLoopSpec) -> Loop:
    """Produce the fully predicated single-block loop.

    Both arms execute unconditionally into renamed destinations; each
    merged register gets a ``SELECT(cond, then_value, else_value)``.
    Stores inside the arms are predicated instead (a squashed store has
    no architectural effect, so no rename is needed).
    """
    ids = _fresh_ids(spec)
    body: list[Operation] = [op.copy() for op in spec.header]

    then_defs = {d for op in spec.then_ops for d in op.dests}
    else_defs = {d for op in spec.else_ops for d in op.dests}
    merged = sorted(then_defs | else_defs,
                    key=lambda r: (r.space, r.name))
    not_cond = Reg(f"{spec.name}_ncond")
    body.append(Operation(next(ids), Opcode.CMPEQ, [not_cond],
                          [spec.cond, Imm(0)], comment="inverted predicate"))

    def emit_arm(ops: list[Operation], arm: str, pred: Reg,
                 defs_here: set[Reg]) -> dict[Reg, Reg]:
        renames: dict[Reg, Reg] = {}
        for op in ops:
            new = op.copy(opid=next(ids))
            new.srcs = [renames.get(s, s) if isinstance(s, Reg) else s
                        for s in new.srcs]
            if new.is_store:
                # Predicated store: squashed when the arm is not taken.
                new.predicate = pred
            else:
                new.dests = []
                for d in op.dests:
                    renamed = Reg(f"{d.name}.{arm}", d.space)
                    renames[d] = renamed
                    new.dests.append(renamed)
            body.append(new)
        return renames

    then_renames = emit_arm(spec.then_ops, "t", spec.cond, then_defs)
    else_renames = emit_arm(spec.else_ops, "e", not_cond, else_defs)

    for reg in merged:
        then_val = then_renames.get(reg, reg)
        else_val = else_renames.get(reg, reg)
        body.append(Operation(next(ids), Opcode.SELECT, [reg],
                              [spec.cond, then_val, else_val],
                              comment=f"merge {reg.name}"))

    body.extend(op.copy() for op in spec.tail)
    body.extend(spec.control_ops(ids))

    loop = Loop(
        name=spec.name,
        body=body,
        live_ins=list(spec.live_ins),
        live_outs=list(spec.live_outs),
        arrays=list(spec.arrays),
        trip_count=spec.trip_count,
        invocations=spec.invocations,
    )
    if spec.counter not in loop.live_ins:
        loop.live_ins.append(spec.counter)
    loop.annotations["static_transforms"] = ["if_conversion"]
    return loop

"""Function inlining.

"Loops with function calls cannot be modulo scheduled.  This problem
can be mitigated through intelligent function inlining" (Section 2.2);
Figure 7 attributes much of the accelerator's benefit to this static
transform — "the 0 fraction shown by many benchmarks ... means the
runtime system was not able to retarget any of the important loops
without proactive help from the compiler."

The model: a library of :class:`InlinableFunction` bodies (straight-line
op sequences with named parameter and result registers).  A ``CALL``
whose target is in the library is replaced by the callee body with
temporaries renamed; a call to anything else (an opaque math-library
entry, say) stays — and keeps the loop off the accelerator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operand, Operation, Reg


@dataclass
class InlinableFunction:
    """A leaf function the compiler can see into.

    Attributes:
        name: Symbol the CALL references (carried in ``op.comment`` as
            ``call <name>``; the reproduction ISA has no relocation).
        params: Registers the body reads as arguments, positionally.
        results: Registers holding return values, positionally.
        body: Straight-line ops (no control flow, no further calls).
    """

    name: str
    params: list[Reg]
    results: list[Reg]
    body: list[Operation]


def _call_target(op: Operation) -> str:
    if op.comment.startswith("call "):
        return op.comment[len("call "):]
    return ""


def inline_calls(loop: Loop, library: dict[str, InlinableFunction]) -> Loop:
    """Inline every CALL whose target is in *library*.

    Arguments bind positionally: the call's register/immediate sources
    map onto the callee's parameter registers, its destinations onto
    the callee's results.  Callee-local registers get unique names per
    call site.  Calls to unknown targets are left in place.
    """
    ids = itertools.count(max(op.opid for op in loop.body) + 1)
    site = itertools.count()
    body: list[Operation] = []
    inlined_any = False
    for op in loop.body:
        target = _call_target(op) if op.opcode is Opcode.CALL else ""
        fn = library.get(target)
        if fn is None:
            body.append(op.copy())
            continue
        inlined_any = True
        k = next(site)
        mapping: dict[Reg, Operand] = {}
        for param, arg in zip(fn.params, op.srcs):
            mapping[param] = arg
        for result, dest in zip(fn.results, op.dests):
            mapping[result] = dest

        def rename(reg: Reg) -> Reg:
            mapped = mapping.get(reg)
            if isinstance(mapped, Reg):
                return mapped
            return Reg(f"{reg.name}.in{k}", reg.space)

        for inner in fn.body:
            new = inner.copy(opid=next(ids))
            new_srcs: list[Operand] = []
            for s in new.srcs:
                if isinstance(s, Reg):
                    mapped = mapping.get(s)
                    new_srcs.append(mapped if mapped is not None
                                    else rename(s))
                else:
                    new_srcs.append(s)
            new.srcs = new_srcs
            new.dests = [rename(d) for d in new.dests]
            if new.predicate is not None:
                new.predicate = rename(new.predicate)
            body.append(new)
    new_loop = loop.rebuild(body=body)
    if inlined_any:
        transforms = list(new_loop.annotations.get("static_transforms", []))
        if "inlining" not in transforms:
            transforms.append("inlining")
        new_loop.annotations["static_transforms"] = transforms
    return new_loop


def polynomial_sin() -> InlinableFunction:
    """A 3-term polynomial ``sin`` the compiler can inline — the kind of
    math-library body whose visibility decides whether a loop is a
    "Subroutine" loop (Figure 2) or an accelerable one."""
    x = Reg("sin_x", "fp")
    r = Reg("sin_r", "fp")
    x2 = Reg("sin_x2", "fp")
    x3 = Reg("sin_x3", "fp")
    x5 = Reg("sin_x5", "fp")
    t3 = Reg("sin_t3", "fp")
    t5 = Reg("sin_t5", "fp")
    acc = Reg("sin_acc", "fp")
    body = [
        Operation(0, Opcode.FMUL, [x2], [x, x]),
        Operation(1, Opcode.FMUL, [x3], [x2, x]),
        Operation(2, Opcode.FMUL, [x5], [x3, x2]),
        Operation(3, Opcode.FMUL, [t3], [x3, Imm(-1.0 / 6.0)]),
        Operation(4, Opcode.FMUL, [t5], [x5, Imm(1.0 / 120.0)]),
        Operation(5, Opcode.FADD, [acc], [x, t3]),
        Operation(6, Opcode.FADD, [r], [acc, t5]),
    ]
    return InlinableFunction("sin", params=[x], results=[r], body=body)

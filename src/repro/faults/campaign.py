"""Seeded fault-injection campaigns against the guarded runtime.

A campaign repeatedly invokes translated kernels through a
:class:`~repro.vm.guard.GuardedExecutor` while an injector flips one bit
per run in the register file, a stream FIFO, or a CCA output of the
overlapped pipeline executor.  For every run the final architectural
state (live-outs + touched memory) is compared against a fault-free
scalar execution of the same loop over the same data; the campaign
proves two properties:

* **No silent corruption**: every injected fault either produces final
  state bit-identical to the fault-free run (the flip landed on a dead
  or masked value — *benign*) or is detected by the differential guard,
  which deoptimizes the loop and recovers through the scalar path.
* **Full recovery**: regardless of detection, the state the application
  observes after every invocation equals the fault-free scalar run.

Campaigns are fully deterministic in their seed, so a failure
reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.accelerator import PROPOSED_LA
from repro.accelerator.config import LAConfig
from repro.cpu.interpreter import Interpreter, standard_live_ins
from repro.cpu.memory import Memory
from repro.faults.injector import FaultInjector, FaultSite, FaultSpec, SiteProfiler
from repro.ir.loop import Loop
from repro.vm.guard import GuardConfig, GuardedExecutor, differential_check
from repro.workloads import kernels as K
from repro.workloads.suite import DEFAULT_SCALARS


def default_campaign_kernels() -> list[Loop]:
    """Fixed-trip kernels that translate cleanly on the proposed LA."""
    trip = 24
    return [
        K.fir_filter(taps=6, trip_count=trip),
        K.daxpy(trip_count=trip),
        K.sad_16(trip_count=trip),
        K.adpcm_decode(trip_count=trip),
        K.quantize(trip_count=trip),
        K.checksum(trip_count=trip),
        K.upsample(trip_count=trip),
        K.stencil5(trip_count=trip),
        K.color_convert(trip_count=trip),
        K.viterbi_acs(trip_count=trip),
    ]


@dataclass(frozen=True)
class CampaignConfig:
    """One seeded fault-injection campaign.

    ``max_failures`` defaults high so kernels keep re-entering
    accelerated execution after their backoff expires (re-translation
    after deopt is part of what the campaign exercises); lower it to
    study permanent-fallback behaviour instead.
    """

    injections: int = 120
    seed: int = 2008
    accelerator: LAConfig = PROPOSED_LA
    guard: GuardConfig = GuardConfig(mode="checked", max_failures=10_000,
                                     backoff_invocations=2)


@dataclass
class InjectionRun:
    """Outcome of one injection attempt."""

    kernel: str
    spec: FaultSpec
    fired: bool
    detected: bool
    final_identical: bool
    source: str
    detail: Optional[str] = None

    @property
    def benign(self) -> bool:
        """Fault fired but never reached observable state."""
        return self.fired and not self.detected and self.final_identical

    @property
    def silent_corruption(self) -> bool:
        """The failure mode the guard exists to rule out."""
        return self.fired and not self.detected and not self.final_identical


@dataclass
class CampaignReport:
    """Aggregated campaign results, plus the executor's own stats."""

    config: CampaignConfig
    runs: list[InjectionRun] = field(default_factory=list)
    blacklist_skips: int = 0
    deopts: int = 0
    translations: int = 0
    cache_invalidations: int = 0

    @property
    def injected(self) -> int:
        return sum(1 for r in self.runs if r.fired)

    @property
    def detected(self) -> int:
        return sum(1 for r in self.runs if r.fired and r.detected)

    @property
    def benign(self) -> int:
        return sum(1 for r in self.runs if r.benign)

    @property
    def recovered(self) -> int:
        return sum(1 for r in self.runs if r.fired and r.final_identical)

    @property
    def silent_corruptions(self) -> int:
        return sum(1 for r in self.runs if r.silent_corruption)

    @property
    def ok(self) -> bool:
        """The guarantee held for every injection — and at least one
        fault actually fired (an empty campaign proves nothing)."""
        return (self.injected > 0
                and self.silent_corruptions == 0
                and self.recovered == self.injected)

    def by_site(self) -> dict[str, tuple[int, int, int]]:
        """site -> (injected, detected, benign)."""
        table: dict[str, list[int]] = {}
        for r in self.runs:
            if not r.fired:
                continue
            row = table.setdefault(r.spec.site.value, [0, 0, 0])
            row[0] += 1
            if r.detected:
                row[1] += 1
            if r.benign:
                row[2] += 1
        return {site: tuple(row) for site, row in sorted(table.items())}


def _prepare(loop: Loop, rng: np.random.Generator) -> Memory:
    """Fresh memory with every array seeded from the campaign RNG."""
    memory = Memory()
    memory.allocate_arrays(loop.arrays)
    for arr in loop.arrays:
        if arr.is_float:
            memory.write_array(arr.name,
                               list(rng.uniform(-8.0, 8.0, arr.length)))
        else:
            memory.write_array(
                arr.name, [int(v) for v in rng.integers(-100, 100,
                                                        arr.length)])
    return memory


def run_campaign(config: CampaignConfig = CampaignConfig(),
                 kernels: Optional[list[Loop]] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignReport:
    """Drive one campaign to its injection target.

    Attempts that land on a benched (blacklisted) loop run scalar
    without consuming injection budget — they are the backoff machinery
    working — and are tallied separately.
    """
    loops = kernels if kernels is not None else default_campaign_kernels()
    rng = np.random.default_rng(config.seed)
    executor = GuardedExecutor(config.accelerator, config.guard)
    report = CampaignReport(config=config)

    # Dry run every kernel once: verifies a clean translation + guard
    # pass and profiles how many injectable events each site offers.
    profiles: dict[str, dict[str, int]] = {}
    usable: list[Loop] = []
    for loop in loops:
        image = executor._image_for(loop)
        if not hasattr(image, "schedule"):
            if progress is not None:
                progress(f"skipping {loop.name}: {image.failure}")
            continue
        profiler = SiteProfiler()
        memory = _prepare(loop, np.random.default_rng(config.seed))
        live_ins = standard_live_ins(image.loop, memory, DEFAULT_SCALARS)
        outcome = differential_check(image, memory, live_ins,
                                     fault_hook=profiler)
        if not outcome.verdict.ok:
            raise AssertionError(
                f"{loop.name}: guard mismatch with no fault injected: "
                f"{outcome.verdict.describe()}")
        profiles[loop.name] = dict(profiler.site_events)
        usable.append(loop)
    if not usable:
        raise ValueError("no usable kernels for the campaign")

    attempts = 0
    max_attempts = config.injections * 20
    while len(report.runs) < config.injections and attempts < max_attempts:
        attempts += 1
        loop = usable[int(rng.integers(0, len(usable)))]
        if executor.blacklist.blocked(loop.name, executor.invocations + 1):
            # Backoff in action: the loop runs scalar this invocation.
            memory = _prepare(loop, rng)
            live_ins = standard_live_ins(loop, memory, DEFAULT_SCALARS)
            executor.run(loop, memory, live_ins)
            report.blacklist_skips += 1
            continue
        profile = profiles[loop.name]
        sites = [s for s in ("regfile", "fifo", "cca") if profile.get(s, 0)]
        site = sites[int(rng.integers(0, len(sites)))]
        spec = FaultSpec(
            site=FaultSite(site),
            target_index=int(rng.integers(0, profile[site])),
            bit=int(rng.integers(0, 64)))
        injector = FaultInjector(spec)

        memory = _prepare(loop, rng)
        reference_mem = memory.clone()
        ref_live_ins = standard_live_ins(loop, reference_mem,
                                         DEFAULT_SCALARS)
        reference = Interpreter(reference_mem).run_loop(loop,
                                                        dict(ref_live_ins))

        live_ins = standard_live_ins(loop, memory, DEFAULT_SCALARS)
        run = executor.run(loop, memory, live_ins, fault_hook=injector)

        final_identical = (
            memory.snapshot() == reference_mem.snapshot()
            and run.live_outs == reference.live_outs)
        record = InjectionRun(
            kernel=loop.name, spec=spec, fired=injector.fired,
            detected=run.detected, final_identical=final_identical,
            source=run.source,
            detail=injector.corrupted_detail or run.reason)
        report.runs.append(record)
        if progress is not None and len(report.runs) % 25 == 0:
            progress(f"{len(report.runs)}/{config.injections} injections")

    report.deopts = executor.stats.deopts
    report.translations = executor.stats.translations
    report.cache_invalidations = executor.cache.stats.invalidations
    return report


def format_campaign(report: CampaignReport) -> str:
    """Human-readable campaign summary."""
    lines = [
        "Fault-injection campaign "
        f"(seed {report.config.seed}, guard mode "
        f"{report.config.guard.mode!r})",
        "=" * 66,
        f"  injections attempted : {len(report.runs)}",
        f"  faults fired         : {report.injected}",
        f"  detected by guard    : {report.detected}",
        f"  benign (masked/dead) : {report.benign}",
        f"  silent corruptions   : {report.silent_corruptions}",
        f"  recovered bit-exact  : {report.recovered}/{report.injected}",
        "",
        f"  deoptimizations      : {report.deopts}",
        f"  cache invalidations  : {report.cache_invalidations}",
        f"  (re)translations     : {report.translations}",
        f"  blacklist fallbacks  : {report.blacklist_skips}",
        "",
        "  per-site breakdown (injected / detected / benign):",
    ]
    for site, (inj, det, ben) in report.by_site().items():
        lines.append(f"    {site:8s} {inj:4d} / {det:4d} / {ben:4d}")
    lines.append("")
    if report.ok:
        verdict = "PASS — no silent corruption, full recovery"
    elif report.injected == 0:
        verdict = "FAIL — no faults fired (empty campaign proves nothing)"
    else:
        verdict = "FAIL — guarded-execution guarantee violated"
    lines.append("  verdict: " + verdict)
    return "\n".join(lines)

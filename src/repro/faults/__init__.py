"""Fault injection: seeded bit-flip campaigns against the accelerator.

Proves the differential guard (:mod:`repro.vm.guard`) actually catches
corrupted execution: a campaign flips single bits in the register file,
stream FIFOs and CCA outputs of the overlapped pipeline executor and
checks that every observable corruption is detected, deoptimized, and
recovered to bit-identical scalar results.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultSite,
    FaultSpec,
    flip_bit,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    InjectionRun,
    format_campaign,
    run_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultInjector",
    "FaultSite",
    "FaultSpec",
    "InjectionRun",
    "flip_bit",
    "format_campaign",
    "run_campaign",
]

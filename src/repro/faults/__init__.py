"""Fault injection: seeded campaigns against accelerator *and* engine.

Two injector families:

* **Datapath upsets** (:mod:`repro.faults.injector`) flip single bits
  in the register file, stream FIFOs and CCA outputs of the overlapped
  pipeline executor; campaigns (:mod:`repro.faults.campaign`,
  ``python -m repro faults``) prove the differential guard detects,
  deoptimizes and recovers every observable corruption.
* **Infrastructure faults** (:mod:`repro.faults.infra`) kill sweep
  workers mid-task, corrupt/truncate on-disk translation-cache entries
  and inject I/O errors; chaos campaigns
  (:mod:`repro.resilience.chaos`, ``python -m repro chaos``) prove the
  resilience layer keeps figure output byte-identical through them.
"""

from repro.faults.infra import (
    CORRUPTION_MODES,
    InfraFaultMode,
    InfraFaultSpec,
    corrupt_entry,
)
from repro.faults.injector import (
    FaultInjector,
    FaultSite,
    FaultSpec,
    flip_bit,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    InjectionRun,
    format_campaign,
    run_campaign,
)

__all__ = [
    "CORRUPTION_MODES",
    "CampaignConfig",
    "CampaignReport",
    "FaultInjector",
    "FaultSite",
    "FaultSpec",
    "InfraFaultMode",
    "InfraFaultSpec",
    "InjectionRun",
    "corrupt_entry",
    "flip_bit",
    "format_campaign",
    "run_campaign",
]

"""Single-event-upset model: one bit flip at one datapath site.

The injector is a :data:`~repro.vm.guard.FaultHook` — the overlapped
pipeline executor passes every value it writes into machine state
through the hook, tagged with the physical site it lands in
(``regfile``, ``fifo``, ``cca``).  The injector counts matching events
and corrupts exactly the ``target_index``-th one by flipping
``bit`` — XOR on the two's-complement pattern for integers, an IEEE-754
bit flip for doubles — leaving every other value untouched.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.memory import Value
from repro.cpu.interpreter import wrap64


class FaultSite(enum.Enum):
    """Where in the accelerator datapath the upset lands."""

    REGFILE = "regfile"  # FU result entering the rotating register file
    FIFO = "fifo"        # load data sitting in a stream FIFO
    CCA = "cca"          # output of the combined computation array


def flip_bit(value: Value, bit: int) -> Value:
    """Flip one bit of *value*'s machine representation.

    Integers flip in 64-bit two's complement (re-wrapped so the result
    stays a valid interpreter value); floats flip in their IEEE-754
    binary64 image, which may yield an infinity or NaN — real upsets do.
    """
    if isinstance(value, float):
        (bits,) = struct.unpack("<Q", struct.pack("<d", value))
        bits ^= 1 << (bit % 64)
        (flipped,) = struct.unpack("<d", struct.pack("<Q", bits))
        return flipped
    return wrap64(int(value) ^ (1 << (bit % 64)))


@dataclass(frozen=True)
class FaultSpec:
    """One planned injection: which site, which dynamic event, which bit."""

    site: FaultSite
    target_index: int
    bit: int


@dataclass
class FaultInjector:
    """Stateful hook that fires its spec exactly once.

    ``fired`` reports whether the targeted dynamic event actually
    occurred during the run (a spec can miss — e.g. a CCA target on a
    loop the mapper left uncombined); ``events`` counts how many values
    passed the matching site in total, which campaigns use to aim
    subsequent specs.
    """

    spec: FaultSpec
    fired: bool = False
    events: int = 0
    site_events: dict[str, int] = field(default_factory=dict)
    corrupted_detail: Optional[str] = None

    def __call__(self, site: str, op, k: int, reg, value: Value) -> Value:
        self.site_events[site] = self.site_events.get(site, 0) + 1
        if site != self.spec.site.value:
            return value
        index = self.events
        self.events += 1
        if self.fired or index != self.spec.target_index:
            return value
        corrupted = flip_bit(value, self.spec.bit)
        self.fired = True
        self.corrupted_detail = (
            f"{site} op{op.opid} iter {k} {reg}: {value!r} -> {corrupted!r} "
            f"(bit {self.spec.bit % 64})")
        return corrupted


class SiteProfiler:
    """Dry-run hook that only counts events per site (no corruption).

    One profiling pass per (loop, image) tells the campaign how many
    injectable events each site offers, so every generated spec is
    guaranteed to land on a real dynamic event.
    """

    def __init__(self) -> None:
        self.site_events: dict[str, int] = {}

    def __call__(self, site: str, op, k: int, reg, value: Value) -> Value:
        self.site_events[site] = self.site_events.get(site, 0) + 1
        return value

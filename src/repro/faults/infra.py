"""Infrastructure fault injectors: kill workers, corrupt caches, fail I/O.

PR 1's injectors flip datapath bits to prove the differential guard;
these injectors attack the *experiment infrastructure* instead — the
worker pool and the on-disk translation cache — to prove the
resilience layer (:mod:`repro.resilience`).  Three families:

* **Worker kill** — a worker SIGKILLs itself at the start of a chosen
  task index, exactly once, simulating an OOM kill / crash mid-task.
* **I/O errors** — the cache's load/store paths consult
  :func:`check_io` and receive an injected :class:`OSError`, exactly
  once per armed fault, simulating transient disk failures.
* **Cache corruption** — :func:`corrupt_entry` truncates, bit-flips or
  header-mangles an on-disk entry in place (the parent does this
  between runs, modelling a torn write or bitrot found at read time).

Arming crosses process boundaries through the environment
(``REPRO_CHAOS_SPEC`` holds a JSON fault list; forked and spawned
workers inherit it), and *fire-once* semantics survive retries and
pool restarts through sentinel files: a fault fires only if its
``O_CREAT|O_EXCL`` sentinel creation wins, so a retried task is not
re-killed and a rebuilt store is not re-failed.  When nothing is armed
the hot-path checks are a single falsy test.

Long-lived processes (cluster shards) cannot see faults armed in the
parent *after* they started — the environment is a spawn-time
snapshot.  For them ``REPRO_CHAOS_SPEC_FILE`` names a spec *file* set
up before the shards boot: :func:`arm`/:func:`disarm` rewrite it
atomically and every armed check re-reads it, so the cluster chaos
campaign can arm shard faults against already-running shard processes.
"""

from __future__ import annotations

import enum
import json
import os
import signal
from dataclasses import dataclass
from typing import Optional

CHAOS_SPEC_ENV = "REPRO_CHAOS_SPEC"
#: Path of a live spec file shared with already-running processes
#: (cluster shards re-read it on every check; see module docstring).
CHAOS_SPEC_FILE_ENV = "REPRO_CHAOS_SPEC_FILE"


class InfraFaultMode(enum.Enum):
    """Which piece of infrastructure the fault attacks."""

    WORKER_KILL = "worker-kill"
    IO_ERROR = "io-error"
    CACHE_TRUNCATE = "cache-truncate"
    CACHE_FLIP = "cache-flip"
    CACHE_HEADER = "cache-header"
    CACHE_STALE_VERSION = "cache-stale-version"
    # Network transport faults (PR 6): applied by the TCP server's
    # response path to attack the wire the retrying client depends on.
    NET_RESET = "net-reset"            # abort mid-frame (RST)
    NET_CORRUPT = "net-corrupt"        # flip a payload byte
    NET_TRUNCATE = "net-truncate"      # send a prefix, then close
    NET_STALL = "net-stall"            # hold the response past deadline
    NET_DROP = "net-drop"              # never send the response
    # Cluster shard faults (PR 8): attack whole shard processes and the
    # shard map the failover client routes by.
    SHARD_KILL = "shard-kill"          # shard SIGKILLs itself mid-request
    SHARD_HANG = "shard-hang"          # shard stalls every response
    SHARD_SLOW_START = "shard-slow-start"  # restarted shard boots slowly
    MAP_STALE = "map-stale"            # client drops one shard-map update


#: The corruption modes :func:`corrupt_entry` can apply in place.
CORRUPTION_MODES = (InfraFaultMode.CACHE_TRUNCATE,
                    InfraFaultMode.CACHE_FLIP,
                    InfraFaultMode.CACHE_HEADER,
                    InfraFaultMode.CACHE_STALE_VERSION)

#: The wire faults the network chaos campaign injects server-side.
NET_FAULT_MODES = (InfraFaultMode.NET_RESET,
                   InfraFaultMode.NET_CORRUPT,
                   InfraFaultMode.NET_TRUNCATE,
                   InfraFaultMode.NET_STALL,
                   InfraFaultMode.NET_DROP)

#: The shard/cluster faults the cluster chaos campaign injects.
SHARD_FAULT_MODES = (InfraFaultMode.SHARD_KILL,
                     InfraFaultMode.SHARD_HANG,
                     InfraFaultMode.SHARD_SLOW_START,
                     InfraFaultMode.MAP_STALE)


@dataclass(frozen=True)
class InfraFaultSpec:
    """One armed infrastructure fault.

    ``token`` names the fault (unique per campaign) and doubles as its
    fire-once sentinel filename; ``task_index`` targets worker-kill
    faults at one fan-out item; ``io_op`` targets I/O faults at the
    cache's ``"load"`` or ``"store"`` path.
    """

    mode: InfraFaultMode
    token: str
    task_index: Optional[int] = None
    io_op: Optional[str] = None
    #: Stall duration for ``NET_STALL`` / ``SHARD_HANG``, boot delay
    #: for ``SHARD_SLOW_START`` (seconds).
    delay_s: Optional[float] = None
    #: Targets shard faults at one shard; None matches any shard.
    shard_id: Optional[int] = None

    def to_json(self) -> dict:
        return {"mode": self.mode.value, "token": self.token,
                "task_index": self.task_index, "io_op": self.io_op,
                "delay_s": self.delay_s, "shard_id": self.shard_id}

    @staticmethod
    def from_json(data: dict) -> "InfraFaultSpec":
        return InfraFaultSpec(mode=InfraFaultMode(data["mode"]),
                              token=data["token"],
                              task_index=data.get("task_index"),
                              io_op=data.get("io_op"),
                              delay_s=data.get("delay_s"),
                              shard_id=data.get("shard_id"))


# -- arming (environment-carried, so workers inherit it) ----------------------

def arm(specs: list[InfraFaultSpec], state_dir: str) -> None:
    """Arm *specs*; sentinels for fire-once live under *state_dir*.

    When ``REPRO_CHAOS_SPEC_FILE`` is set (the cluster campaign sets it
    before booting shards), the spec is also written to that file so
    already-running shard processes — which snapshotted their
    environment at spawn — see the new arming on their next check.
    """
    os.makedirs(state_dir, exist_ok=True)
    payload = json.dumps({
        "state_dir": state_dir,
        "faults": [s.to_json() for s in specs],
    })
    os.environ[CHAOS_SPEC_ENV] = payload
    spec_file = os.environ.get(CHAOS_SPEC_FILE_ENV)
    if spec_file:
        _write_spec_file(spec_file, payload)


def disarm() -> None:
    os.environ.pop(CHAOS_SPEC_ENV, None)
    spec_file = os.environ.get(CHAOS_SPEC_FILE_ENV)
    if spec_file:
        _write_spec_file(spec_file, "")


def _write_spec_file(path: str, payload: str) -> None:
    """Atomically replace the live spec file (shards read concurrently)."""
    tmp = f"{path}.next.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def _armed() -> tuple[Optional[str], list[InfraFaultSpec]]:
    # The live spec file, when configured, is authoritative: a shard
    # spawned while some earlier fault was armed carries that stale
    # spec in its environment snapshot forever, so the env is only a
    # fallback (for short-lived workers with no file channel).
    raw = None
    spec_file = os.environ.get(CHAOS_SPEC_FILE_ENV)
    if spec_file:
        try:
            with open(spec_file, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            raw = None
    if not raw:
        raw = os.environ.get(CHAOS_SPEC_ENV)
    if not raw:
        return None, []
    try:
        data = json.loads(raw)
        return data["state_dir"], [InfraFaultSpec.from_json(f)
                                   for f in data["faults"]]
    except (ValueError, KeyError, TypeError):
        return None, []


def _claim(state_dir: str, token: str) -> bool:
    """Atomically claim the fire-once sentinel for *token*."""
    try:
        fd = os.open(os.path.join(state_dir, token),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.close(fd)
    return True


def fired(state_dir: str, token: str) -> bool:
    """Whether the fault named *token* has fired (sentinel exists)."""
    return os.path.exists(os.path.join(state_dir, token))


# -- hot-path hooks -----------------------------------------------------------

def maybe_kill_worker(task_index: int) -> None:
    """Called by the pool worker before running task *task_index*.

    SIGKILL leaves no chance for cleanup handlers — the honest model of
    an OOM kill.  The sentinel is claimed *first*, so the retried task
    runs to completion.  Fires only inside a real pool worker
    (``REPRO_IN_WORKER`` set): when supervision has degraded the task
    to the parent process, killing it would take down the experiment
    the layer exists to protect.
    """
    if not os.environ.get("REPRO_IN_WORKER"):
        return
    state_dir, specs = _armed()
    if state_dir is None:
        return
    for spec in specs:
        if (spec.mode is InfraFaultMode.WORKER_KILL
                and spec.task_index == task_index
                and _claim(state_dir, spec.token)):
            os.kill(os.getpid(), signal.SIGKILL)


def check_io(op: str, path: str) -> None:
    """Called by the disk cache before a load/store touches *path*.

    Raises an injected :class:`OSError` once per armed fault whose
    ``io_op`` matches; the error message embeds the fault token so the
    resulting incident record is attributable to its injection.
    """
    state_dir, specs = _armed()
    if state_dir is None:
        return
    for spec in specs:
        if (spec.mode is InfraFaultMode.IO_ERROR and spec.io_op == op
                and _claim(state_dir, spec.token)):
            raise OSError(f"injected I/O fault {spec.token} "
                          f"({op} {os.path.basename(path)})")


def claim_shard_fault(mode: InfraFaultMode,
                      shard_id: Optional[int] = None,
                      ) -> Optional[InfraFaultSpec]:
    """Claim the first still-unfired armed shard fault of *mode*.

    Shard processes call this from their dispatch/boot paths with their
    own ``shard_id``; specs targeted at a different shard are skipped,
    untargeted specs match anyone.  ``MAP_STALE`` is claimed
    client-side (``shard_id=None``).  Returns the claimed spec (its
    fire-once sentinel now exists) or None.
    """
    state_dir, specs = _armed()
    if state_dir is None:
        return None
    for spec in specs:
        if spec.mode is not mode:
            continue
        if (spec.shard_id is not None and shard_id is not None
                and spec.shard_id != shard_id):
            continue
        if _claim(state_dir, spec.token):
            return spec
    return None


def claim_net_fault() -> Optional[InfraFaultSpec]:
    """Called by the TCP server just before writing a response frame.

    Returns the first still-unfired armed network fault (claiming its
    fire-once sentinel), or None.  The server applies the mode —
    abort, corrupt, truncate, stall or drop — and records the matching
    incident, so every fired wire fault is attributable in the
    incident log by its token.
    """
    state_dir, specs = _armed()
    if state_dir is None:
        return None
    for spec in specs:
        if spec.mode in NET_FAULT_MODES and _claim(state_dir, spec.token):
            return spec
    return None


# -- parent-side cache corruption ---------------------------------------------

def corrupt_entry(path: str, mode: InfraFaultMode,
                  rng=None) -> str:
    """Corrupt the on-disk entry at *path* in place; returns a detail
    string describing what was done.

    Overwrites go through a plain ``open``, not the atomic writer —
    the whole point is to fabricate the torn/rotten states a crash
    produces.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if mode is InfraFaultMode.CACHE_TRUNCATE:
        keep = len(blob) // 2 if rng is None else int(
            rng.integers(0, max(1, len(blob))))
        with open(path, "wb") as handle:
            handle.write(blob[:keep])
        return f"truncated to {keep}/{len(blob)} bytes"
    if mode is InfraFaultMode.CACHE_FLIP:
        from repro.resilience.integrity import HEADER_SIZE
        if len(blob) <= HEADER_SIZE:
            offset = max(0, len(blob) - 1)
        elif rng is None:
            offset = HEADER_SIZE
        else:
            offset = int(rng.integers(HEADER_SIZE, len(blob)))
        corrupted = bytearray(blob)
        corrupted[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(corrupted))
        return f"flipped byte at offset {offset}"
    if mode is InfraFaultMode.CACHE_HEADER:
        corrupted = b"XXXX" + blob[4:]
        with open(path, "wb") as handle:
            handle.write(corrupted)
        return "overwrote magic"
    if mode is InfraFaultMode.CACHE_STALE_VERSION:
        import struct
        corrupted = bytearray(blob)
        struct.pack_into("<I", corrupted, 4, 0)  # version 0 never valid
        with open(path, "wb") as handle:
            handle.write(bytes(corrupted))
        return "rewrote format version to 0"
    raise ValueError(f"not a corruption mode: {mode}")

"""Subgraph legality for CCA mapping.

A candidate subgraph may be collapsed into a single atomic CCA
instruction only if it (a) fits the array (row/depth/width placement,
input/output port counts), (b) is convex — no dataflow path leaves the
subgraph and re-enters it, which would make atomic execution impossible —
and (c) can be re-placed at a single program point without changing the
loop's cross-iteration register semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cca.model import CCAConfig, assign_rows
from repro.ir.dfg import DataflowGraph
from repro.ir.loop import Loop
from repro.ir.ops import Reg


@dataclass
class Subgraph:
    """A legal CCA subgraph with its derived interface."""

    opids: list[int]                   # topological order
    inputs: list[Reg]                  # distinct external register inputs
    outputs: list[Reg]                 # registers consumed outside / live-out
    rows: dict[int, int]               # opid -> CCA row

    def __len__(self) -> int:
        return len(self.opids)


class SubgraphChecker:
    """Caches per-loop facts used by repeated legality queries."""

    def __init__(self, loop: Loop, dfg: DataflowGraph, config: CCAConfig,
                 candidate_opids: set[int],
                 work: Optional[Callable[[int], None]] = None) -> None:
        self.loop = loop
        self.dfg = dfg
        self.config = config
        self.candidates = candidate_opids
        self._work = work
        self._index = {op.opid: i for i, op in enumerate(loop.body)}
        self._def_count: dict[Reg, int] = {}
        for op in loop.body:
            for d in op.dests:
                self._def_count[d] = self._def_count.get(d, 0) + 1
        self._live_outs = set(loop.live_outs)
        # Recurrence SCCs over candidate compute ops (all-distance flow).
        self._sccs = [set(s) for s in dfg.recurrence_components(
            work=work, restrict=candidate_opids)]

    def charge(self, n: int) -> None:
        if self._work is not None:
            self._work(n)

    # -- structural helpers -------------------------------------------------

    def _flow0_succs(self, opid: int) -> list[int]:
        return [e.dst for e in self.dfg.out_edges(opid)
                if e.kind == "flow" and e.distance == 0]

    def _flow0_preds(self, opid: int) -> list[int]:
        return [e.src for e in self.dfg.in_edges(opid)
                if e.kind == "flow" and e.distance == 0]

    def topo_order(self, members: set[int]) -> list[int]:
        """Members sorted topologically by distance-0 edges."""
        indegree = {m: 0 for m in members}
        for m in members:
            for s in self._flow0_succs(m):
                if s in members:
                    indegree[s] += 1
        ready = sorted(m for m in members if indegree[m] == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for s in sorted(self._flow0_succs(node)):
                if s in members:
                    indegree[s] -= 1
                    if indegree[s] == 0:
                        ready.append(s)
        return order if len(order) == len(members) else []

    def is_convex(self, members: set[int]) -> bool:
        """No distance-0 path exits and re-enters *members*."""
        outside_reached: set[int] = set()
        frontier = []
        for m in members:
            for s in self._flow0_succs(m):
                self.charge(1)
                if s not in members and s not in outside_reached:
                    outside_reached.add(s)
                    frontier.append(s)
        while frontier:
            node = frontier.pop()
            for s in self._flow0_succs(node):
                self.charge(1)
                if s in members:
                    return False
                if s not in outside_reached:
                    outside_reached.add(s)
                    frontier.append(s)
        return True

    # -- interface extraction ---------------------------------------------------

    def interface(self, members: set[int]) -> tuple[list[Reg], list[Reg]]:
        """Distinct external input and output registers of *members*."""
        defined_inside: set[Reg] = set()
        for m in members:
            defined_inside.update(self.loop.op(m).dests)
        inputs: list[Reg] = []
        for m in sorted(members, key=self._index.get):
            op = self.loop.op(m)
            for reg in op.src_regs():
                self.charge(1)
                produced_inside = False
                for e in self.dfg.in_edges(m):
                    if e.kind == "flow" and e.src in members and \
                            e.distance == 0 and reg in self.loop.op(e.src).dests:
                        produced_inside = True
                        break
                if not produced_inside and reg not in inputs:
                    inputs.append(reg)
        outputs: list[Reg] = []
        for m in sorted(members, key=self._index.get):
            op = self.loop.op(m)
            needed = False
            for e in self.dfg.out_edges(m):
                self.charge(1)
                if e.kind == "flow" and (e.dst not in members or e.distance > 0):
                    needed = True
                    break
            if not needed and any(d in self._live_outs for d in op.dests):
                needed = True
            if needed:
                for d in op.dests:
                    if d not in outputs:
                        outputs.append(d)
        return inputs, outputs

    # -- placement-at-first-position safety ------------------------------------

    def placement_safe(self, members: set[int]) -> bool:
        """Collapsing *members* to the first member's position must not
        change any dependence distance (see module docstring)."""
        pos_first = min(self._index[m] for m in members)
        for m in members:
            op = self.loop.op(m)
            # Registers defined inside must be single-def in the body.
            for d in op.dests:
                if self._def_count.get(d, 0) > 1:
                    return False
            for e in self.dfg.in_edges(m):
                self.charge(1)
                if e.kind != "flow" or e.src in members:
                    continue
                if e.distance == 0 and self._index[e.src] >= pos_first:
                    return False
                # External producers must themselves be single-def.
                for d in self.loop.op(e.src).dests:
                    if d in op.src_regs() and self._def_count.get(d, 0) > 1:
                        return False
            for e in self.dfg.out_edges(m):
                self.charge(1)
                if e.kind != "flow" or e.dst in members:
                    continue
                if e.distance >= 1 and self._index[e.dst] > pos_first:
                    return False
        return True

    # -- the recurrence rule -----------------------------------------------------

    def recurrence_ok(self, members: set[int]) -> bool:
        """Reject subgraphs that would lengthen a recurrence.

        All CCA-supported ops have unit latency, so absorbing ``k`` ops
        of a recurrence into a 2-cycle CCA changes that recurrence's
        length by ``2 - k``.  Absorbing a single recurrence op therefore
        lengthens the cycle (the ops 7+10 example of Section 4.1);
        absorbing two or more never does.
        """
        for scc in self._sccs:
            overlap = len(scc & members)
            self.charge(1)
            if overlap == 1:
                return False
        return True

    # -- full check -----------------------------------------------------------------

    def check(self, members: set[int],
              enforce_recurrence_rule: bool = True) -> Optional[Subgraph]:
        """Return the legal :class:`Subgraph` for *members*, or None.

        ``enforce_recurrence_rule=False`` is used during greedy growth:
        intermediate states may absorb a single recurrence op as long as
        the *final* accepted subgraph does not (the mapper re-checks at
        acceptance), matching the paper's walk-through where seed op 5
        sits alone on a recurrence before ops 8 and 6 join it.
        """
        if not members or not members <= self.candidates:
            return None
        for m in members:
            op = self.loop.op(m)
            if not self.config.supports(op.opcode) or op.is_memory:
                return None
        order = self.topo_order(members)
        if not order:
            return None  # cycle through distance-0 edges cannot be atomic
        if not self.is_convex(members):
            return None
        inputs, outputs = self.interface(members)
        if len(inputs) > self.config.num_inputs:
            return None
        if len(outputs) > self.config.num_outputs:
            return None
        preds_within = {m: [p for p in self._flow0_preds(m) if p in members]
                        for m in members}
        rows = assign_rows([self.loop.op(m) for m in order], preds_within,
                           self.config)
        self.charge(len(members))
        if rows is None:
            return None
        if enforce_recurrence_rule and not self.recurrence_ok(members):
            return None
        if not self.placement_safe(members):
            return None
        return Subgraph(opids=order, inputs=inputs, outputs=outputs, rows=rows)

"""CCA: combinational accelerator model and greedy subgraph mapping."""

from repro.cca.model import CCAConfig, DEFAULT_CCA, assign_rows
from repro.cca.mapper import CCAMapping, map_cca
from repro.cca.subgraph import Subgraph, SubgraphChecker

__all__ = [
    "CCAConfig", "CCAMapping", "DEFAULT_CCA", "Subgraph",
    "SubgraphChecker", "assign_rows", "map_cca",
]

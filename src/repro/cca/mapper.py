"""Greedy CCA subgraph identification.

Section 4.1, "CCA Mapping": "CCA mapping begins by selecting a seed node
in the dataflow graph ... seed ops are examined in numerical order ...
This seed is then recursively grown along its dataflow edges to extend
the subgraph ... Once the subgraph cannot be grown further, those ops
are replaced with a new CCA instruction, and the process begins with a
new seed."

Optimal CCA utilisation is NP-complete [13]; this greedy pass "keeps
runtime overheads low" and selects each operation as a seed at most
once, growing it independent of the CCA architecture — which is why its
cost (about 20% of translation time, Figure 8) scales with loop size,
not machine size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cca.model import CCAConfig, DEFAULT_CCA
from repro.cca.subgraph import Subgraph, SubgraphChecker
from repro.ir.dfg import DataflowGraph, build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


@dataclass
class CCAMapping:
    """Outcome of the CCA mapping pass.

    Attributes:
        loop: The rewritten loop with ``CCA_OP`` compound instructions.
        subgraphs: One entry per collapsed subgraph, keyed by the new
            compound op's id.
        collapsed_ops: Total RISC ops absorbed into compounds.
    """

    loop: Loop
    subgraphs: dict[int, Subgraph] = field(default_factory=dict)
    collapsed_ops: int = 0

    @property
    def num_subgraphs(self) -> int:
        return len(self.subgraphs)


def _grow(seed: int, checker: SubgraphChecker,
          mapped: set[int],
          respect_recurrences: bool = True) -> Optional[Subgraph]:
    """Grow *seed* along dataflow edges until no legal extension exists.

    The recurrence-lengthening rule is only applied to the final
    subgraph: a seed sitting alone on a recurrence (like op 5 of the
    Figure 5 example) may grow until its recurrence-mates join, but a
    finished subgraph that absorbs exactly one op of some recurrence
    (like the hypothetical 7+10 combination) is rejected outright.
    """
    members = {seed}
    if checker.check(members, enforce_recurrence_rule=False) is None:
        return None
    changed = True
    while changed:
        changed = False
        frontier: list[int] = []
        for m in sorted(members):
            for n in checker._flow0_succs(m) + checker._flow0_preds(m):
                checker.charge(1)
                if n not in members and n not in mapped and \
                        n in checker.candidates and n not in frontier:
                    frontier.append(n)
        for n in sorted(frontier):
            if checker.check(members | {n},
                             enforce_recurrence_rule=False) is not None:
                members.add(n)
                changed = True
    if len(members) < 2:
        return None
    return checker.check(members,
                         enforce_recurrence_rule=respect_recurrences)


def _rewrite(loop: Loop, subgraphs: list[Subgraph]) -> tuple[Loop, dict[int, Subgraph]]:
    """Replace each subgraph with a compound op at its first position."""
    member_of: dict[int, int] = {}
    for gi, sg in enumerate(subgraphs):
        for opid in sg.opids:
            member_of[opid] = gi
    next_id = max(op.opid for op in loop.body) + 1
    placed: set[int] = set()
    new_body: list[Operation] = []
    id_map: dict[int, Subgraph] = {}
    for op in loop.body:
        gi = member_of.get(op.opid)
        if gi is None:
            new_body.append(op.copy())
            continue
        if gi in placed:
            continue
        placed.add(gi)
        sg = subgraphs[gi]
        inner = [loop.op(i).copy() for i in sg.opids]
        compound = Operation(
            opid=next_id, opcode=Opcode.CCA_OP,
            dests=list(sg.outputs), srcs=list(sg.inputs), inner=inner,
            comment="cca[" + ",".join(str(i) for i in sg.opids) + "]")
        id_map[next_id] = sg
        next_id += 1
        new_body.append(compound)
    new_loop = loop.rebuild(body=new_body)
    return new_loop, id_map


def apply_subgraphs(loop: Loop, subgraph_lists: list[list[int]],
                    dfg: Optional[DataflowGraph] = None,
                    config: CCAConfig = DEFAULT_CCA,
                    candidate_opids: Optional[set[int]] = None,
                    work: Optional[Callable[[int], None]] = None
                    ) -> CCAMapping:
    """Collapse statically identified subgraphs (Figure 9(b) recognition).

    Each statically encoded subgraph is *checked* against the CCA
    actually present — a cheap legality test, no search — and collapsed
    if it fits.  "If a statically identified subgraph cannot be executed
    as a single unit on available CCAs, the ops can still be executed
    independently on the remaining execution resources."
    """
    if dfg is None:
        dfg = build_dfg(loop, work=work)
    if candidate_opids is None:
        candidate_opids = {op.opid for op in loop.body
                           if not op.is_memory and not op.is_control}
    checker = SubgraphChecker(loop, dfg, config, candidate_opids, work=work)
    known = {op.opid for op in loop.body}
    accepted: list[Subgraph] = []
    used: set[int] = set()
    for opids in subgraph_lists:
        members = set(opids)
        checker.charge(len(members))
        if not members <= known or members & used:
            continue
        sg = checker.check(members)
        if sg is not None:
            accepted.append(sg)
            used |= members
    if not accepted:
        return CCAMapping(loop=loop, subgraphs={}, collapsed_ops=0)
    new_loop, id_map = _rewrite(loop, accepted)
    return CCAMapping(loop=new_loop, subgraphs=id_map,
                      collapsed_ops=sum(len(s) for s in accepted))


def map_cca(loop: Loop, dfg: Optional[DataflowGraph] = None,
            config: CCAConfig = DEFAULT_CCA,
            candidate_opids: Optional[set[int]] = None,
            work: Optional[Callable[[int], None]] = None,
            respect_recurrences: bool = True) -> CCAMapping:
    """Run greedy CCA identification over *loop*.

    Args:
        loop: The loop to map (in baseline-ISA form).
        dfg: Its dataflow graph (rebuilt if omitted).
        config: The target CCA shape.
        candidate_opids: Ops eligible for mapping — normally the compute
            partition, so address and control slices stay on their
            dedicated hardware.
        work: Translation cost-model callback.
        respect_recurrences: When False, disable the
            recurrence-lengthening rejection (Section 4.1's ops-7+10
            rule) — the ablation knob showing why the rule exists.
    """
    if dfg is None:
        dfg = build_dfg(loop, work=work)
    if candidate_opids is None:
        candidate_opids = {
            op.opid for op in loop.body
            if not op.is_memory and not op.is_control
        }
    checker = SubgraphChecker(loop, dfg, config, candidate_opids, work=work)
    mapped: set[int] = set()
    subgraphs: list[Subgraph] = []
    for op in loop.body:  # numerical seed order
        checker.charge(1)
        if op.opid in mapped or op.opid not in candidate_opids:
            continue
        if not config.supports(op.opcode):
            continue
        grown = _grow(op.opid, checker, mapped, respect_recurrences)
        if grown is not None:
            subgraphs.append(grown)
            mapped.update(grown.opids)
    if not subgraphs:
        return CCAMapping(loop=loop, subgraphs={}, collapsed_ops=0)
    new_loop, id_map = _rewrite(loop, subgraphs)
    return CCAMapping(loop=new_loop, subgraphs=id_map,
                      collapsed_ops=sum(len(s) for s in subgraphs))

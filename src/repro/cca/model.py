"""Configurable Compute Accelerator (CCA) architectural model.

Section 3.1: "The CCA is a combinational structure specifically designed
to efficiently implement the most common types of integer computations.
It supports 4 inputs, 2 outputs, and can execute as many as 15 standard
RISC ops atomically in 2 clock cycles.  The 15 RISC ops are organized
into 4 rows, where the first and third row can execute simple arithmetic
(add, subtract, comparison) and bitwise logical ops, and the second and
fourth rows execute only bitwise ops."

The triangular row widths ``[6, 4, 3, 2]`` realise the 15-op capacity.
Shifts and multiplies are not supported ("Some integer units are still
needed to support multiplication and shifts, which are not handled by
the CCA").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.opcodes import (
    CCA_ARITH_OPCODES,
    CCA_LOGIC_OPCODES,
    CCA_SUPPORTED_OPCODES,
    Opcode,
)
from repro.ir.ops import Operation


@dataclass(frozen=True)
class CCAConfig:
    """Shape of one CCA instance.

    Attributes:
        row_widths: Op capacity of each row, top to bottom.
        arith_rows: Row indices (0-based) that can execute arithmetic;
            the remaining rows execute only bitwise logic.
        num_inputs: Maximum distinct external register inputs.
        num_outputs: Maximum distinct external register outputs.
        latency: Cycles for the whole array to produce its outputs.
    """

    row_widths: tuple[int, ...] = (6, 4, 3, 2)
    arith_rows: frozenset[int] = frozenset({0, 2})
    num_inputs: int = 4
    num_outputs: int = 2
    latency: int = 2

    @property
    def depth(self) -> int:
        return len(self.row_widths)

    @property
    def capacity(self) -> int:
        return sum(self.row_widths)

    def supports(self, opcode: Opcode) -> bool:
        """Can this opcode execute on *some* row of the array?"""
        return opcode in CCA_SUPPORTED_OPCODES

    def row_accepts(self, row: int, opcode: Opcode) -> bool:
        """Can *opcode* execute on *row*?"""
        if opcode in CCA_LOGIC_OPCODES:
            return True
        if opcode in CCA_ARITH_OPCODES:
            return row in self.arith_rows
        return False


#: The CCA used throughout the paper's evaluation (from [5]).
DEFAULT_CCA = CCAConfig()


def assign_rows(ops: list[Operation],
                preds_within: dict[int, list[int]],
                config: CCAConfig) -> dict[int, int] | None:
    """Place each op of a candidate subgraph onto a CCA row.

    Processes ops in topological order (the caller supplies *ops* in a
    valid topological order of the subgraph); each op goes on the first
    row that is (a) strictly below all of its in-subgraph predecessors,
    (b) type-compatible, and (c) not full.  Returns ``None`` if no
    placement exists, else ``opid -> row``.

    This is the row-constrained placement that makes the triangular
    array shape bite: two dependent arithmetic ops must land on rows 0
    and 2, so an arithmetic chain longer than ``len(arith_rows)`` can
    never map.
    """
    placement: dict[int, int] = {}
    used = [0] * config.depth
    for op in ops:
        if not config.supports(op.opcode):
            return None
        min_row = 0
        for pred in preds_within.get(op.opid, []):
            if pred in placement:
                min_row = max(min_row, placement[pred] + 1)
        row = None
        for candidate in range(min_row, config.depth):
            if used[candidate] < config.row_widths[candidate] and \
                    config.row_accepts(candidate, op.opcode):
                row = candidate
                break
        if row is None:
            return None
        placement[op.opid] = row
        used[row] += 1
    return placement

"""Strongly connected component computation (Tarjan's algorithm).

Loop identification — "finding strongly connected components of a control
flow graph" (paper Section 4.1) — and recurrence extraction in the
dataflow graph both reduce to SCCs.  This module provides an iterative
Tarjan implementation over plain adjacency mappings so it can serve both
the CFG and the DFG without depending on either.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Optional, Sequence

Node = Hashable


def strongly_connected_components(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    work: Optional[Callable[[int], None]] = None,
) -> list[list[Node]]:
    """Return the SCCs of the directed graph, in reverse topological order.

    Args:
        nodes: All graph nodes.
        successors: Adjacency function.
        work: Optional callback charged once per node/edge visit, used by
            the VM translation cost model to meter this linear-time pass.

    Tarjan's algorithm, implemented iteratively so deep dataflow graphs
    from aggressively inlined loops (Section 3.1 notes some loops are
    very large) cannot overflow Python's recursion limit.
    """
    nodes = list(nodes)
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    sccs: list[list[Node]] = []
    counter = 0

    def charge(n: int) -> None:
        if work is not None:
            work(n)

    for root in nodes:
        if root in index:
            continue
        # Each frame: (node, iterator over its successors).
        call_stack: list[tuple[Node, Iterable[Node]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        charge(1)
        while call_stack:
            node, succ_iter = call_stack[-1]
            advanced = False
            for succ in succ_iter:
                charge(1)
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    call_stack.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def nontrivial_sccs(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    work: Optional[Callable[[int], None]] = None,
) -> list[list[Node]]:
    """SCCs that contain a cycle: size > 1, or a single self-looping node."""
    result = []
    for scc in strongly_connected_components(nodes, successors, work):
        if len(scc) > 1:
            result.append(scc)
        else:
            node = scc[0]
            if node in set(successors(node)):
                result.append(scc)
    return result


def condensation(
    nodes: Sequence[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> tuple[list[list[Node]], Mapping[Node, int], list[set[int]]]:
    """Condense the graph into its SCC DAG.

    Returns ``(sccs, component_of, dag_successors)`` where
    ``dag_successors[i]`` is the set of component indices reachable from
    component *i* by a single edge.
    """
    sccs = strongly_connected_components(nodes, successors)
    component_of: dict[Node, int] = {}
    for i, scc in enumerate(sccs):
        for node in scc:
            component_of[node] = i
    dag: list[set[int]] = [set() for _ in sccs]
    for node in nodes:
        for succ in successors(node):
            a, b = component_of[node], component_of[succ]
            if a != b:
                dag[a].add(b)
    return sccs, component_of, dag

"""Control flow graphs, programs, and loop identification.

The VM's first translation step is "simply to identify loops within the
program ... finding strongly connected components of a control flow
graph, [which] is a simple linear time problem" (Section 4.1).  This
module provides the CFG representation that step runs on, a dominator
analysis, and extraction of innermost single-block loops into the
:class:`~repro.ir.loop.Loop` form consumed by the rest of the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.ir.graphalgo import strongly_connected_components
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


@dataclass
class BasicBlock:
    """A straight-line sequence of operations with terminal control flow.

    Attributes:
        label: Unique block name within its function.
        ops: Operations, the last of which may branch.
        successors: Labels of possible successor blocks.  A block whose
            final op is a conditional BR lists the taken target first.
        loop_body: If this block is a pre-packaged innermost loop kernel,
            the corresponding :class:`Loop` (built by the workload
            frontend).  Loop *identification* still happens via SCC; the
            attached Loop is what identification recovers, mirroring how
            the real VM re-derives the loop from the binary.
        weight: Fraction of dynamic execution attributed to this block,
            used by hot-region profiling.
    """

    label: str
    ops: list[Operation] = field(default_factory=list)
    successors: list[str] = field(default_factory=list)
    loop_body: Optional[Loop] = None
    weight: float = 0.0

    @property
    def has_call(self) -> bool:
        return any(op.is_call for op in self.ops)


class ControlFlowGraph:
    """A function body as a graph of basic blocks."""

    def __init__(self, entry: str, blocks: Iterable[BasicBlock]) -> None:
        self.entry = entry
        self.blocks: dict[str, BasicBlock] = {}
        for block in blocks:
            if block.label in self.blocks:
                raise ValueError(f"duplicate block label {block.label!r}")
            self.blocks[block.label] = block
        if entry not in self.blocks:
            raise ValueError(f"entry block {entry!r} not present")
        for block in self.blocks.values():
            for succ in block.successors:
                if succ not in self.blocks:
                    raise ValueError(
                        f"block {block.label!r} targets unknown block {succ!r}")

    def successors(self, label: str) -> list[str]:
        return self.blocks[label].successors

    def predecessors(self, label: str) -> list[str]:
        return [b.label for b in self.blocks.values()
                if label in b.successors]

    # -- analyses -----------------------------------------------------------

    def dominators(self) -> dict[str, set[str]]:
        """Dominator sets via the classic iterative dataflow algorithm."""
        labels = list(self.blocks)
        full = set(labels)
        dom: dict[str, set[str]] = {l: set(full) for l in labels}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for label in labels:
                if label == self.entry:
                    continue
                preds = self.predecessors(label)
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set()
                new.add(label)
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        return dom

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges ``(tail, head)`` where head dominates tail."""
        dom = self.dominators()
        result = []
        for block in self.blocks.values():
            for succ in block.successors:
                if succ in dom[block.label]:
                    result.append((block.label, succ))
        return result

    def loop_sccs(self, work: Optional[Callable[[int], None]] = None
                  ) -> list[list[str]]:
        """SCCs containing a cycle — the loop regions of this function."""
        sccs = strongly_connected_components(
            list(self.blocks), self.successors, work)
        loops = []
        for scc in sccs:
            if len(scc) > 1:
                loops.append(scc)
            elif scc[0] in self.blocks[scc[0]].successors:
                loops.append(scc)
        return loops


@dataclass
class Function:
    """A named function: a CFG plus inlining metadata.

    ``inlinable`` models whether the compiler can see the body (calls
    into the math library were not visible to Trimaran and made their
    containing loops "Subroutine" loops in Figure 2).
    """

    name: str
    cfg: ControlFlowGraph
    inlinable: bool = True


@dataclass
class Program:
    """A whole application: functions plus an entry point."""

    name: str
    functions: dict[str, Function]
    entry: str = "main"

    def entry_function(self) -> Function:
        return self.functions[self.entry]


@dataclass
class IdentifiedLoop:
    """Result of dynamic loop identification on a CFG.

    Attributes:
        blocks: The SCC's block labels.
        loop: Extracted Loop when the region is a single fully-predicated
            block ending in BR (the only shape the accelerator supports).
        reject_reason: Why the region cannot even be considered
            (multi-block control flow that was not if-converted, or a
            function call inside the body).
    """

    blocks: list[str]
    loop: Optional[Loop] = None
    reject_reason: Optional[str] = None


def identify_loops(cfg: ControlFlowGraph,
                   work: Optional[Callable[[int], None]] = None
                   ) -> list[IdentifiedLoop]:
    """Dynamic loop identification (paper Section 4.1, step 1).

    Finds cyclic SCCs and extracts single-block innermost loops.  Regions
    with internal control flow or calls are reported with a reject
    reason — these are the loops that needed static if-conversion or
    inlining (Figure 7 measures the cost of not having done so).
    """
    found: list[IdentifiedLoop] = []
    for scc in cfg.loop_sccs(work):
        if len(scc) > 1:
            found.append(IdentifiedLoop(
                blocks=sorted(scc),
                reject_reason="multi-block loop body (needs if-conversion)"))
            continue
        block = cfg.blocks[scc[0]]
        if block.has_call:
            found.append(IdentifiedLoop(
                blocks=[block.label],
                reject_reason="function call in loop body"))
            continue
        if block.loop_body is not None:
            found.append(IdentifiedLoop(blocks=[block.label],
                                        loop=block.loop_body))
            continue
        if block.ops and block.ops[-1].opcode is Opcode.BR:
            loop = Loop(name=block.label, body=[op.copy() for op in block.ops])
            loop.live_ins = sorted(loop.compute_live_ins(),
                                   key=lambda r: (r.space, r.name))
            found.append(IdentifiedLoop(blocks=[block.label], loop=loop))
        else:
            found.append(IdentifiedLoop(
                blocks=[block.label],
                reject_reason="self-loop without loop-back branch"))
    return found


def linear_program(name: str, kernels: list[Loop],
                   acyclic_weight: float = 0.0) -> Program:
    """Package loop kernels into a Program with straight-line glue.

    Builds ``entry -> k0 -> glue0 -> k1 -> ... -> exit`` where each
    kernel block self-loops.  This is the shape workload benchmarks use
    so the VM exercises real CFG-level loop identification.
    """
    blocks: list[BasicBlock] = [BasicBlock("entry")]
    prev = "entry"
    n = len(kernels)
    for i, kernel in enumerate(kernels):
        label = f"kernel_{kernel.name}"
        next_label = f"glue{i}" if i + 1 < n else "exit"
        block = BasicBlock(label, ops=[op.copy() for op in kernel.body],
                           successors=[label, next_label],
                           loop_body=kernel)
        blocks[-1].successors = [label]
        blocks.append(block)
        if i + 1 < n:
            blocks.append(BasicBlock(f"glue{i}", weight=acyclic_weight / max(n, 1)))
    blocks.append(BasicBlock("exit"))
    if n == 0:
        blocks[0].successors = ["exit"]
    cfg = ControlFlowGraph("entry", blocks)
    return Program(name, {"main": Function("main", cfg)}, entry="main")

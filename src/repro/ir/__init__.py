"""Baseline-ISA intermediate representation.

Public surface: opcodes, operands, operations, loops, the loop builder,
dataflow graphs, and control flow graphs.
"""

from repro.ir.opcodes import (
    DEFAULT_LATENCY,
    LatencyModel,
    OpKind,
    Opcode,
    ResourceClass,
    info,
)
from repro.ir.ops import Imm, Operand, Operation, Reg
from repro.ir.loop import ArrayDecl, Loop, validate_loop
from repro.ir.builder import LoopBuilder
from repro.ir.dfg import DataflowGraph, Edge, build_dfg
from repro.ir.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Function,
    IdentifiedLoop,
    Program,
    identify_loops,
    linear_program,
)

__all__ = [
    "ArrayDecl", "BasicBlock", "ControlFlowGraph", "DEFAULT_LATENCY",
    "DataflowGraph", "Edge", "Function", "IdentifiedLoop", "Imm",
    "LatencyModel", "Loop", "LoopBuilder", "OpKind", "Opcode", "Operand",
    "Operation", "Program", "Reg", "ResourceClass", "build_dfg",
    "identify_loops", "info", "linear_program", "validate_loop",
]

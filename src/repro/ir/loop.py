"""Loop-level IR structures.

A :class:`Loop` is an innermost, single basic-block loop body in the
baseline instruction set, the unit that VEAL's translator maps onto the
loop accelerator.  The body ends with a compare and a loop-back branch
(as in the paper's Figure 5 example), and all internal control flow has
been removed by if-conversion (full predication, Section 2.1).

Registers may be redefined inside the body (e.g. ``i = add i, 1`` for the
induction variable); cross-iteration flow through such registers is what
creates recurrences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operation, Reg, defined_regs


@dataclass
class ArrayDecl:
    """A memory region the loop touches.

    Attributes:
        name: Symbolic array name; the live-in register holding its base
            address conventionally is ``Reg(name)``.
        length: Number of addressable elements (element granularity: one
            address per element, matching the stream model).
        is_float: Whether elements are doubles (FLOAD/FSTORE) or ints.
        may_alias: Arrays in the same alias group may overlap; memory
            dependence edges are added between their accesses.  Streams
            in different groups are assumed mutually exclusive, matching
            the accelerator's decoupled-stream assumption (Section 2.1).
    """

    name: str
    length: int = 1024
    is_float: bool = False
    may_alias: Optional[str] = None


@dataclass
class Loop:
    """An innermost loop in baseline-ISA form.

    Attributes:
        name: Identifier used in reports.
        body: Operations in program order, ending with the loop-back
            branch (``BR``).
        live_ins: Registers whose values are produced before the loop
            (array base addresses, scalar inputs, constants kept in
            registers).  These map to the accelerator's memory-mapped
            register file.
        live_outs: Registers whose final values are needed after the
            loop (scalar outputs read from the register file on loop
            completion, Section 3.1).
        arrays: Memory regions referenced by the loop.
        trip_count: Default iteration count used by simulation when the
            invocation does not override it.
        invocations: How many times the application enters this loop per
            run (used by the VM's amortisation accounting).
        annotations: Optional static metadata embedded by the compiler in
            the binary's data section (Figure 9): scheduling priorities
            and CCA subgraph identification.
    """

    name: str
    body: list[Operation]
    live_ins: list[Reg] = field(default_factory=list)
    live_outs: list[Reg] = field(default_factory=list)
    arrays: list[ArrayDecl] = field(default_factory=list)
    trip_count: int = 256
    invocations: int = 1
    annotations: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_id = {op.opid: op for op in self.body}
        if len(self._by_id) != len(self.body):
            raise ValueError(f"duplicate opids in loop {self.name!r}")

    def __getstate__(self) -> dict:
        """Drop runtime caches (``_veal_*``: compiled closure tables,
        content digests) when pickling — workers rebuild them lazily."""
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_veal_")}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- lookups ----------------------------------------------------------

    def op(self, opid: int) -> Operation:
        """Return the operation with id *opid*."""
        return self._by_id[opid]

    def index_of(self, opid: int) -> int:
        """Program-order position of *opid* within the body."""
        for i, op in enumerate(self.body):
            if op.opid == opid:
                return i
        raise KeyError(opid)

    @property
    def branch(self) -> Optional[Operation]:
        """The loop-back branch, if present."""
        for op in reversed(self.body):
            if op.opcode is Opcode.BR:
                return op
        return None

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    # -- derived sets ------------------------------------------------------

    def compute_live_ins(self) -> set[Reg]:
        """Registers read in the body before any definition in the body.

        A register read at position *p* whose first in-body definition is
        at position *q* >= *p* (or absent) must be live into the first
        iteration.
        """
        first_def: dict[Reg, int] = {}
        for i, op in enumerate(self.body):
            for d in op.dests:
                first_def.setdefault(d, i)
        live: set[Reg] = set()
        for i, op in enumerate(self.body):
            for r in op.src_regs():
                if first_def.get(r, len(self.body)) >= i:
                    live.add(r)
        return live

    def rebuild(self, body: Optional[list[Operation]] = None, **changes) -> "Loop":
        """Return a copy of this loop, optionally with a new body."""
        return Loop(
            name=changes.get("name", self.name),
            body=[op.copy() for op in (body if body is not None else self.body)],
            live_ins=list(changes.get("live_ins", self.live_ins)),
            live_outs=list(changes.get("live_outs", self.live_outs)),
            arrays=list(changes.get("arrays", self.arrays)),
            trip_count=changes.get("trip_count", self.trip_count),
            invocations=changes.get("invocations", self.invocations),
            annotations=dict(changes.get("annotations", self.annotations)),
        )

    def dump(self) -> str:
        """Human-readable listing of the loop."""
        lines = [f"loop {self.name} (trip={self.trip_count}, "
                 f"invocations={self.invocations}):"]
        lines.extend(f"  {op}" for op in self.body)
        if self.live_ins:
            lines.append("  live-in:  " + ", ".join(map(str, self.live_ins)))
        if self.live_outs:
            lines.append("  live-out: " + ", ".join(map(str, self.live_outs)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"Loop({self.name}, {len(self.body)} ops)"


def validate_loop(loop: Loop) -> list[str]:
    """Check structural invariants of *loop*; return a list of problems.

    An empty list means the loop is well formed.  This does not check
    accelerator suitability (that is :mod:`repro.analysis.schedulability`'s
    job), only IR consistency.
    """
    problems: list[str] = []
    if not loop.body:
        problems.append("empty body")
        return problems
    branch = loop.branch
    if branch is None:
        problems.append("no loop-back branch (BR)")
    elif loop.body[-1].opcode is not Opcode.BR:
        problems.append("loop-back branch is not the final operation")
    seen: set[int] = set()
    for op in loop.body:
        if op.opid in seen:
            problems.append(f"duplicate opid {op.opid}")
        seen.add(op.opid)
        for src in op.srcs:
            if not isinstance(src, (Reg, Imm)):
                problems.append(f"op{op.opid}: bad operand {src!r}")
        if op.is_memory and not op.srcs:
            problems.append(f"op{op.opid}: memory op without address operand")
        if op.opcode is Opcode.CCA_OP and not op.inner:
            problems.append(f"op{op.opid}: CCA compound without inner ops")
    declared_live_in = set(loop.live_ins)
    needed_live_in = loop.compute_live_ins()
    body_defs = defined_regs(loop.body)
    for reg in sorted(needed_live_in - declared_live_in - body_defs,
                      key=lambda r: r.name):
        problems.append(f"register {reg} read before any definition but "
                        f"not declared live-in")
    for reg in loop.live_outs:
        if reg not in body_defs and reg not in declared_live_in:
            problems.append(f"live-out {reg} never defined")
    return problems

"""Loop nests: an outer loop re-invoking an accelerated inner loop.

The paper accelerates *innermost* loops only and notes that modulo
scheduling "ha[s] been extended to support ... entire loop nests"
[26] as related work it does not exploit.  This module provides the
simplest faithful treatment of a nest in the VEAL model: the inner
loop is translated once, and each outer iteration re-invokes it with
re-based live-ins — paying the memory-mapped initialisation and bus
synchronisation every time.

That per-invocation overhead is exactly what makes nest *shape* matter
(many short inner trips vs few long ones), quantified by
``repro.experiments.amortization`` and the nest tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cpu.interpreter import Interpreter
from repro.cpu.memory import Memory, Value
from repro.cpu.pipeline import InOrderPipeline
from repro.ir.loop import Loop
from repro.ir.ops import Reg

#: Scalar-core cycles charged per outer iteration for the outer loop's
#: own control (increment, compare, branch, re-basing a few registers).
OUTER_CONTROL_CYCLES = 6


@dataclass
class LoopNest:
    """A two-level nest.

    Attributes:
        name: Nest identifier.
        inner: The innermost loop (the accelerable unit).
        outer_trips: Outer iteration count.
        live_in_steps: Per-outer-iteration advance of each live-in
            register (e.g. a row base address stepping by the row
            pitch).  Registers not listed stay constant.
        carried_live_ins: Live-in registers that instead receive the
            value a live-out register held at the end of the previous
            outer iteration (e.g. a running checksum threaded through
            rows).  Maps live-in register -> live-out register.
    """

    name: str
    inner: Loop
    outer_trips: int
    live_in_steps: dict[Reg, int] = field(default_factory=dict)
    carried_live_ins: dict[Reg, Reg] = field(default_factory=dict)

    def live_ins_for(self, base: Mapping[Reg, Value], j: int,
                     previous_outs: Optional[Mapping[Reg, Value]] = None
                     ) -> dict[Reg, Value]:
        """Inner live-in values for outer iteration *j*."""
        values = dict(base)
        for reg, step in self.live_in_steps.items():
            values[reg] = int(base[reg]) + step * j
        if previous_outs:
            for live_in, live_out in self.carried_live_ins.items():
                if live_out in previous_outs:
                    values[live_in] = previous_outs[live_out]
        return values


@dataclass
class NestRun:
    """Result of executing a nest end to end."""

    outer_iterations: int
    inner_iterations: int
    cycles: float
    live_outs: dict[Reg, Value]


def execute_nest_scalar(nest: LoopNest, memory: Memory,
                        base_live_ins: Mapping[Reg, Value],
                        pipeline: InOrderPipeline) -> NestRun:
    """Run the whole nest on the scalar core (functional + timing)."""
    interp = Interpreter(memory)
    inner_per_inv = pipeline.loop_cycles(nest.inner)
    total_inner = 0
    outs: dict[Reg, Value] = {}
    for j in range(nest.outer_trips):
        live = nest.live_ins_for(base_live_ins, j, outs)
        result = interp.run_loop(nest.inner, live)
        total_inner += result.iterations
        outs = result.live_outs
    cycles = nest.outer_trips * (inner_per_inv + OUTER_CONTROL_CYCLES)
    return NestRun(outer_iterations=nest.outer_trips,
                   inner_iterations=total_inner,
                   cycles=cycles, live_outs=outs)


def execute_nest_accelerated(nest: LoopNest, image, accelerator,
                             memory: Memory,
                             base_live_ins: Mapping[Reg, Value]) -> NestRun:
    """Run the nest with the inner loop on the accelerator.

    The translation happened once (outside); every outer iteration
    pays the invocation overhead — register-file initialisation plus
    two bus synchronisations — which is the whole cost model of
    treating a nest as repeated innermost-loop acceleration.
    """
    total_cycles = 0.0
    total_inner = 0
    outs: dict[Reg, Value] = {}
    for j in range(nest.outer_trips):
        live = nest.live_ins_for(base_live_ins, j, outs)
        run = accelerator.invoke(image, memory, live)
        total_inner += run.iterations
        total_cycles += run.total_cycles + OUTER_CONTROL_CYCLES
        outs = run.live_outs
    return NestRun(outer_iterations=nest.outer_trips,
                   inner_iterations=total_inner,
                   cycles=total_cycles, live_outs=outs)

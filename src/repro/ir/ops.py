"""Operations and operands of the baseline instruction set.

A loop body is a list of :class:`Operation` objects in program order.
Operands are either virtual registers (:class:`Reg`) or immediates
(:class:`Imm`).  Each register is defined at most once inside a loop body
(the loop frontend renames into this form); registers read before their
definition carry loop state from the previous iteration, which is how
recurrences are expressed (see :mod:`repro.ir.dfg`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union

from repro.ir.opcodes import (
    MEMORY_OPCODES,
    LOAD_OPCODES,
    STORE_OPCODES,
    OpKind,
    Opcode,
    info,
)


@dataclass(frozen=True)
class Reg:
    """A virtual register operand.

    ``space`` distinguishes the integer and floating point register
    files, which the loop accelerator provisions separately
    (Figure 3(b) sweeps them independently).
    """

    name: str
    space: str = "int"  # "int" or "fp"

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: Union[int, float]

    def __str__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


@dataclass
class Operation:
    """One operation of a loop body.

    Attributes:
        opid: Position-independent identifier, unique within a loop.
        opcode: The operation performed.
        dests: Registers written (0, 1 or — for CCA compounds — up to 2).
        srcs: Operand list read.
        predicate: Optional guard register; when it evaluates to 0 the
            operation's side effects are squashed.  Full predication of
            branches within the loop body keeps accelerator control logic
            simple (paper Section 2.1).
        inner: For ``CCA_OP`` compounds, the RISC operations collapsed
            into this instruction, in dataflow order.
        stream_id: Filled by address-stream analysis on memory ops.
        comment: Free-form annotation used in dumps.
    """

    opid: int
    opcode: Opcode
    dests: list[Reg] = field(default_factory=list)
    srcs: list[Operand] = field(default_factory=list)
    predicate: Optional[Reg] = None
    inner: list["Operation"] = field(default_factory=list)
    stream_id: Optional[int] = None
    comment: str = ""

    # -- classification helpers ------------------------------------------

    @property
    def kind(self) -> OpKind:
        return info(self.opcode).kind

    @property
    def is_load(self) -> bool:
        return self.opcode in LOAD_OPCODES

    @property
    def is_store(self) -> bool:
        return self.opcode in STORE_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_control(self) -> bool:
        return self.kind is OpKind.CONTROL

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.BRL)

    # -- operand helpers --------------------------------------------------

    def src_regs(self) -> list[Reg]:
        """All register sources, including the predicate if present."""
        regs = [s for s in self.srcs if isinstance(s, Reg)]
        if self.predicate is not None:
            regs.append(self.predicate)
        return regs

    def uses(self, reg: Reg) -> bool:
        return reg in self.src_regs()

    def defines(self, reg: Reg) -> bool:
        return reg in self.dests

    def copy(self, **changes) -> "Operation":
        """Return a shallow copy with *changes* applied."""
        new = replace(self, **changes)
        new.dests = list(new.dests)
        new.srcs = list(new.srcs)
        new.inner = list(new.inner)
        return new

    def __str__(self) -> str:
        dest = ", ".join(str(d) for d in self.dests)
        src = ", ".join(str(s) for s in self.srcs)
        pred = f" if {self.predicate}" if self.predicate else ""
        arrow = " = " if dest else ""
        note = f"  ; {self.comment}" if self.comment else ""
        return f"op{self.opid}: {dest}{arrow}{self.opcode.value} {src}{pred}{note}"


def renumber(ops: Iterable[Operation], start: int = 0) -> list[Operation]:
    """Return copies of *ops* with consecutive opids starting at *start*."""
    out = []
    for i, op in enumerate(ops):
        out.append(op.copy(opid=start + i))
    return out


def defined_regs(ops: Iterable[Operation]) -> set[Reg]:
    """All registers defined by *ops*."""
    out: set[Reg] = set()
    for op in ops:
        out.update(op.dests)
    return out


def used_regs(ops: Iterable[Operation]) -> set[Reg]:
    """All registers read by *ops* (including predicates)."""
    out: set[Reg] = set()
    for op in ops:
        out.update(op.src_regs())
    return out

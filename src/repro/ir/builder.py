"""Fluent construction API for loop bodies.

Workload kernels (:mod:`repro.workloads`) and tests build loops with this
builder rather than hand-writing operation lists.  The builder emits the
same baseline-ISA shape the paper's compiler produces: a single basic
block whose final three operations increment the induction variable,
compare it against the bound, and branch back (Figure 5, ops 13-15).

Example:
    >>> from repro.ir.builder import LoopBuilder
    >>> b = LoopBuilder("axpy", trip_count=128)
    >>> x = b.array("x"); y = b.array("y")
    >>> a = b.live_in("a")
    >>> i = b.counter()
    >>> xi = b.load(b.add(x, i))
    >>> yi = b.load(b.add(y, i))
    >>> b.store(b.add(y, i), b.add(b.mul(a, xi), yi))
    >>> loop = b.finish()
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.ir.loop import ArrayDecl, Loop
from repro.ir.opcodes import Opcode, info
from repro.ir.ops import Imm, Operand, Operation, Reg

ValueLike = Union[Reg, Imm, int, float]


def _as_operand(value: ValueLike) -> Operand:
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    raise TypeError(f"cannot use {value!r} as an operand")


class LoopBuilder:
    """Incrementally constructs a :class:`~repro.ir.loop.Loop`."""

    def __init__(self, name: str, trip_count: int = 256,
                 invocations: int = 1) -> None:
        self.name = name
        self.trip_count = trip_count
        self.invocations = invocations
        self._ops: list[Operation] = []
        self._opid = itertools.count()
        self._tmp = itertools.count()
        self._live_ins: list[Reg] = []
        self._live_outs: list[Reg] = []
        self._arrays: list[ArrayDecl] = []
        self._counter: Optional[Reg] = None
        self._counter_step = 1
        self._deferred_updates: list[tuple[Reg, int]] = []
        self._predicate: Optional[Reg] = None
        self._finished = False

    # -- declarations -------------------------------------------------------

    def live_in(self, name: str, space: str = "int") -> Reg:
        """Declare a scalar live-in register (memory-mapped register file)."""
        reg = Reg(name, space)
        if reg not in self._live_ins:
            self._live_ins.append(reg)
        return reg

    def live_out(self, reg: Reg) -> Reg:
        """Mark *reg* as a scalar result read back after the loop."""
        if reg not in self._live_outs:
            self._live_outs.append(reg)
        return reg

    def array(self, name: str, length: int = 1024, is_float: bool = False,
              may_alias: Optional[str] = None) -> Reg:
        """Declare a memory region; returns the base-address live-in."""
        self._arrays.append(ArrayDecl(name, length, is_float, may_alias))
        return self.live_in(name)

    def counter(self, name: str = "i", step: int = 1) -> Reg:
        """The loop induction variable; its update is emitted by finish()."""
        if self._counter is not None:
            raise ValueError("counter() may only be called once")
        self._counter = self.live_in(name)
        self._counter_step = step
        return self._counter

    def pointer(self, array_name: str, stride: int = 1,
                length: int = 1024, is_float: bool = False) -> Reg:
        """A self-incrementing stream pointer into a fresh array.

        The pointer register starts at the array base (live-in) and is
        advanced by *stride* each iteration by an update emitted at
        finish(), creating the classic distance-1 pointer recurrence.
        """
        base = self.array(array_name, length=length, is_float=is_float)
        self._deferred_updates.append((base, stride))
        return base

    # -- predication ---------------------------------------------------------

    def set_predicate(self, pred: Optional[Reg]) -> None:
        """Guard subsequently emitted ops with *pred* (None to clear)."""
        self._predicate = pred

    # -- op emission ----------------------------------------------------------

    def fresh(self, space: str = "int") -> Reg:
        return Reg(f"t{next(self._tmp)}", space)

    def emit(self, opcode: Opcode, *srcs: ValueLike,
             dest: Optional[Reg] = None, space: Optional[str] = None,
             comment: str = "") -> Optional[Reg]:
        """Append an operation; returns its destination register (if any)."""
        if self._finished:
            raise RuntimeError("loop already finished")
        operands = [_as_operand(s) for s in srcs]
        kind = info(opcode).kind
        dests: list[Reg] = []
        if opcode not in (Opcode.STORE, Opcode.FSTORE, Opcode.BR,
                          Opcode.JUMP, Opcode.CALL):
            if dest is None:
                if space is None:
                    space = "fp" if kind.value == "float" or opcode is Opcode.FLOAD \
                        else "int"
                dest = self.fresh(space)
            dests = [dest]
        op = Operation(opid=next(self._opid), opcode=opcode, dests=dests,
                       srcs=operands, predicate=self._predicate,
                       comment=comment)
        self._ops.append(op)
        return dests[0] if dests else None

    # Convenience wrappers for the common opcodes. ---------------------------

    def add(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.ADD, a, b, dest=dest)

    def sub(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.SUB, a, b, dest=dest)

    def mul(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.MUL, a, b, dest=dest)

    def div(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.DIV, a, b)

    def rem(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.REM, a, b)

    def and_(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.AND, a, b, dest=dest)

    def or_(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.OR, a, b, dest=dest)

    def xor(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.XOR, a, b, dest=dest)

    def not_(self, a: ValueLike) -> Reg:
        return self.emit(Opcode.NOT, a)

    def shl(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.SHL, a, b, dest=dest)

    def shr(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.SHR, a, b, dest=dest)

    def shru(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.SHRU, a, b, dest=dest)

    def neg(self, a: ValueLike) -> Reg:
        return self.emit(Opcode.NEG, a)

    def abs_(self, a: ValueLike) -> Reg:
        return self.emit(Opcode.ABS, a)

    def min_(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.MIN, a, b, dest=dest)

    def max_(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.MAX, a, b, dest=dest)

    def cmplt(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPLT, a, b)

    def cmple(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPLE, a, b)

    def cmpgt(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPGT, a, b)

    def cmpge(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPGE, a, b)

    def cmpeq(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPEQ, a, b)

    def cmpne(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.CMPNE, a, b)

    def select(self, pred: ValueLike, a: ValueLike, b: ValueLike,
               dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.SELECT, pred, a, b, dest=dest)

    def mov(self, a: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.MOV, a, dest=dest)

    def load(self, addr: ValueLike, offset: ValueLike = 0) -> Reg:
        return self.emit(Opcode.LOAD, addr, offset)

    def store(self, addr: ValueLike, value: ValueLike,
              offset: ValueLike = 0) -> None:
        self.emit(Opcode.STORE, addr, offset, value)

    def fload(self, addr: ValueLike, offset: ValueLike = 0) -> Reg:
        return self.emit(Opcode.FLOAD, addr, offset)

    def fstore(self, addr: ValueLike, value: ValueLike,
               offset: ValueLike = 0) -> None:
        self.emit(Opcode.FSTORE, addr, offset, value)

    def fadd(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.FADD, a, b, dest=dest)

    def fsub(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.FSUB, a, b)

    def fmul(self, a: ValueLike, b: ValueLike, dest: Optional[Reg] = None) -> Reg:
        return self.emit(Opcode.FMUL, a, b, dest=dest)

    def fdiv(self, a: ValueLike, b: ValueLike) -> Reg:
        return self.emit(Opcode.FDIV, a, b)

    def itof(self, a: ValueLike) -> Reg:
        return self.emit(Opcode.ITOF, a)

    def ftoi(self, a: ValueLike) -> Reg:
        return self.emit(Opcode.FTOI, a)

    def call(self, target: str, *args: ValueLike,
             result_space: Optional[str] = None) -> Optional[Reg]:
        """A function call — precludes modulo scheduling until inlined.

        Args bind positionally to the callee's parameters; when
        ``result_space`` is given a fresh register receives the result.
        """
        dest = self.fresh(result_space) if result_space else None
        operands = [_as_operand(a) for a in args] or [Imm(0)]
        op = Operation(opid=next(self._opid), opcode=Opcode.CALL,
                       dests=[dest] if dest else [], srcs=operands,
                       predicate=self._predicate, comment=f"call {target}")
        self._ops.append(op)
        return dest

    # -- finalisation ----------------------------------------------------------

    def finish(self, bound: Optional[ValueLike] = None) -> Loop:
        """Emit pointer updates and loop control, and build the Loop.

        The control pattern matches Figure 5: induction increment (op 13
        analogue), compare (op 14), loop-back branch (op 15).
        """
        if self._finished:
            raise RuntimeError("loop already finished")
        for reg, stride in self._deferred_updates:
            self.emit(Opcode.ADD, reg, Imm(stride), dest=reg,
                      comment="stream pointer update")
        if self._counter is None:
            self.counter()
        assert self._counter is not None
        saved_pred, self._predicate = self._predicate, None
        self.emit(Opcode.ADD, self._counter, Imm(self._counter_step),
                  dest=self._counter, comment="induction update")
        if bound is None:
            bound = Imm(self.trip_count * self._counter_step)
        cond = self.emit(Opcode.CMPLT, self._counter, bound,
                         comment="loop bound check")
        self.emit(Opcode.BR, cond, comment="loop-back branch")
        self._predicate = saved_pred
        self._finished = True
        return Loop(
            name=self.name,
            body=self._ops,
            live_ins=self._live_ins,
            live_outs=self._live_outs,
            arrays=self._arrays,
            trip_count=self.trip_count,
            invocations=self.invocations,
        )

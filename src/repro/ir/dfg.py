"""Dataflow graph construction over a loop body.

The DFG is the structure every translation phase operates on: recurrence
extraction (RecMII), CCA subgraph identification, Swing priority
computation and list scheduling all walk it.  Edges carry ``(latency,
distance)`` pairs: *latency* is the producer's execution latency and
*distance* the number of loop iterations the value crosses (0 for
intra-iteration flow, >= 1 for loop-carried flow).

Construction follows textual def-use semantics so that in-place updates
such as ``i = add i, 1`` naturally yield distance-1 self edges — the
recurrences that bound II from below (Section 4.1, "Minimum II
Calculation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.ir.graphalgo import nontrivial_sccs
from repro.ir.loop import Loop
from repro.ir.opcodes import LatencyModel, DEFAULT_LATENCY
from repro.ir.ops import Operation, Reg


@dataclass(frozen=True)
class Edge:
    """A dependence edge ``src -> dst``.

    Attributes:
        src: Producer opid.
        dst: Consumer opid.
        latency: Cycles before the consumer may issue after the producer.
        distance: Iteration distance (omega).  The modulo scheduling
            constraint is ``time(dst) >= time(src) + latency - II * distance``.
        kind: "flow" for register RAW, "mem" for memory ordering, "ctrl"
            for the dependence of the branch on its condition.
    """

    src: int
    dst: int
    latency: int
    distance: int
    kind: str = "flow"


class DataflowGraph:
    """Dependence graph over the operations of one loop body."""

    def __init__(self, loop: Loop, edges: Iterable[Edge],
                 latency_model: LatencyModel = DEFAULT_LATENCY) -> None:
        self.loop = loop
        self.latency_model = latency_model
        self.nodes: list[int] = [op.opid for op in loop.body]
        self.edges: list[Edge] = list(edges)
        self._succ: dict[int, list[Edge]] = {n: [] for n in self.nodes}
        self._pred: dict[int, list[Edge]] = {n: [] for n in self.nodes}
        for e in self.edges:
            self._succ[e.src].append(e)
            self._pred[e.dst].append(e)

    # -- basic accessors ---------------------------------------------------

    def op(self, opid: int) -> Operation:
        return self.loop.op(opid)

    def out_edges(self, opid: int) -> list[Edge]:
        return self._succ[opid]

    def in_edges(self, opid: int) -> list[Edge]:
        return self._pred[opid]

    def successors(self, opid: int) -> list[int]:
        return [e.dst for e in self._succ[opid]]

    def predecessors(self, opid: int) -> list[int]:
        return [e.src for e in self._pred[opid]]

    def latency(self, opid: int) -> int:
        return self.latency_model.latency(self.op(opid).opcode)

    # -- recurrences --------------------------------------------------------

    def recurrence_components(
        self, work: Optional[Callable[[int], None]] = None,
        restrict: Optional[set[int]] = None,
    ) -> list[list[int]]:
        """SCCs of the DFG that contain a cycle — the loop's recurrences.

        Args:
            work: Cost-model callback (see :mod:`repro.vm.costmodel`).
            restrict: If given, only consider these nodes/edges (used to
                find recurrences among compute ops after control and
                address slices are peeled off).
        """
        nodes = self.nodes if restrict is None else [n for n in self.nodes
                                                     if n in restrict]
        allowed = set(nodes)

        def succs(n: int) -> list[int]:
            return [e.dst for e in self._succ[n] if e.dst in allowed]

        return nontrivial_sccs(nodes, succs, work)

    def subgraph_edges(self, nodes: set[int]) -> list[Edge]:
        """All edges with both endpoints in *nodes*."""
        return [e for e in self.edges if e.src in nodes and e.dst in nodes]

    def __len__(self) -> int:
        return len(self.nodes)


def _reg_key(reg: Reg) -> tuple[str, str]:
    return (reg.space, reg.name)


def build_dfg(loop: Loop,
              latency_model: LatencyModel = DEFAULT_LATENCY,
              work: Optional[Callable[[int], None]] = None) -> DataflowGraph:
    """Build the dataflow graph of *loop*.

    Register flow: a use at position *p* reads the nearest preceding
    definition in the same iteration (distance 0); if none exists, it
    reads the last definition in the body from the previous iteration
    (distance 1).  Registers never defined in the body are live-ins and
    produce no edge.

    Memory ordering: accesses to the same array (or the same declared
    alias group) where at least one access is a store are ordered, with
    distance 0 in program order and distance 1 across the back edge.
    This models the hardware memory-ordering support the paper assumes
    (Section 4.1, "Separating Control and Memory Streams"); loops whose
    arrays are all distinct get fully decoupled streams.

    Control: the loop-back branch depends on its condition register like
    any other flow edge; no speculation edges exist because while-loops
    and side exits are precluded (Section 2.2).
    """
    def charge(n: int) -> None:
        if work is not None:
            work(n)

    edges: list[Edge] = []
    last_def: dict[tuple[str, str], int] = {}
    final_def: dict[tuple[str, str], int] = {}
    for op in loop.body:
        for d in op.dests:
            final_def[_reg_key(d)] = op.opid
            charge(1)

    for op in loop.body:
        charge(1)
        for reg in op.src_regs():
            key = _reg_key(reg)
            charge(1)
            if key in last_def:
                src = last_def[key]
                edges.append(Edge(src, op.opid,
                                  latency_model.latency(loop.op(src).opcode), 0))
            elif key in final_def:
                src = final_def[key]
                edges.append(Edge(src, op.opid,
                                  latency_model.latency(loop.op(src).opcode), 1))
        for d in op.dests:
            last_def[_reg_key(d)] = op.opid

    # Memory ordering edges between potentially-overlapping accesses.
    group_of: dict[str, str] = {}
    for arr in loop.arrays:
        group_of[arr.name] = arr.may_alias or arr.name

    def mem_region(op: Operation) -> Optional[str]:
        if not op.is_memory or not op.srcs:
            return None
        base = op.srcs[0]
        if isinstance(base, Reg):
            root = base.name.split(".")[0]
            return group_of.get(root, root)
        return None

    mem_ops = [op for op in loop.body if op.is_memory]
    for i, a in enumerate(mem_ops):
        ra = mem_region(a)
        for b in mem_ops[i + 1:]:
            charge(1)
            if not (a.is_store or b.is_store):
                continue
            rb = mem_region(b)
            if ra is None or rb is None or ra != rb:
                continue
            # Same-region, at least one store: order a before b within an
            # iteration, and b before a across iterations.
            edges.append(Edge(a.opid, b.opid, 1, 0, kind="mem"))
            edges.append(Edge(b.opid, a.opid, 1, 1, kind="mem"))

    return DataflowGraph(loop, edges, latency_model)

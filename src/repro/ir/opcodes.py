"""Opcode definitions for the baseline RISC instruction set.

VEAL expresses loops in the baseline instruction set of a general purpose
processor (paper Section 2.3).  This module defines that instruction set:
a small RISC-like ISA with integer, floating point, memory, compare and
control operations, together with the resource class each opcode occupies
and the default latency model used throughout the reproduction.

The paper's worked example (Figure 5) assumes multiplies take 3 cycles,
the CCA takes 2 cycles and all other ops take 1 cycle; those are the
defaults here.  Double-precision floating point units are fully pipelined
with a 4 cycle latency, consistent with the design space exploration in
Section 3.1 ("if a floating-point unit is fully pipelined (which was
assumed), modulo scheduling does a very good job utilizing the unit").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ResourceClass(enum.Enum):
    """Execution resource class an operation occupies for one cycle.

    The loop accelerator template (Figure 1) provides integer units,
    floating point units, a CCA, address generators for memory streams,
    and dedicated loop control hardware.  ``BRANCH`` and ``ADDRESS`` ops
    consume no FU slot on the accelerator: control is implemented by the
    loop control hardware and address computation by the address
    generators (Section 2.1).
    """

    INT = "int"
    FP = "fp"
    MEM = "mem"
    CCA = "cca"
    BRANCH = "branch"


class OpKind(enum.Enum):
    """Broad semantic category used by analyses and transforms."""

    ARITH = "arith"          # simple integer arithmetic (CCA rows 1/3)
    LOGIC = "logic"          # bitwise logic (all CCA rows)
    SHIFT = "shift"          # shifts: integer unit only, not CCA-able
    MUL = "mul"              # multiplies: integer unit only, not CCA-able
    DIV = "div"              # divides / remainders
    COMPARE = "compare"      # comparisons producing 0/1 (CCA rows 1/3)
    SELECT = "select"        # predicated select (if-conversion result)
    FLOAT = "float"          # floating point arithmetic
    MEMORY = "memory"        # loads and stores
    CONTROL = "control"      # branches, calls
    MOVE = "move"            # register moves / immediate materialisation
    CCA_COMPOUND = "cca"     # a collapsed CCA subgraph instruction


class Opcode(enum.Enum):
    """Every opcode in the baseline instruction set."""

    # Integer arithmetic.
    ADD = "add"
    SUB = "sub"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    # Multiplication / division.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Bitwise logic.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # Shifts.
    SHL = "shl"
    SHR = "shr"          # arithmetic shift right
    SHRU = "shru"        # logical shift right
    # Comparisons (result is 0 or 1).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Predication.
    SELECT = "select"    # select(pred, a, b) == a if pred else b
    # Moves.
    MOV = "mov"
    LDI = "ldi"          # load immediate
    # Floating point (double precision).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    FCMPEQ = "fcmpeq"
    ITOF = "itof"        # int -> double conversion
    FTOI = "ftoi"        # double -> int conversion (truncating)
    # Memory.
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"
    # Control.
    BR = "br"            # conditional loop-back branch
    JUMP = "jump"        # unconditional branch
    CALL = "call"        # function call (precludes modulo scheduling)
    BRL = "brl"          # branch-and-link (procedural abstraction, Fig. 9)
    # Collapsed CCA subgraph (created by the CCA mapper, not by frontends).
    CCA_OP = "cca_op"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    opcode: Opcode
    kind: OpKind
    resource: ResourceClass
    latency: int
    is_commutative: bool = False


_INFO: dict[Opcode, OpcodeInfo] = {}


def _register(opcode: Opcode, kind: OpKind, resource: ResourceClass,
              latency: int, commutative: bool = False) -> None:
    _INFO[opcode] = OpcodeInfo(opcode, kind, resource, latency, commutative)


# Integer arithmetic: 1 cycle on an integer unit.
for _op in (Opcode.ADD, Opcode.MIN, Opcode.MAX):
    _register(_op, OpKind.ARITH, ResourceClass.INT, 1, commutative=True)
for _op in (Opcode.SUB, Opcode.NEG, Opcode.ABS):
    _register(_op, OpKind.ARITH, ResourceClass.INT, 1)
# Multiplies take 3 cycles (paper Figure 5); divides are long-latency.
_register(Opcode.MUL, OpKind.MUL, ResourceClass.INT, 3, commutative=True)
_register(Opcode.DIV, OpKind.DIV, ResourceClass.INT, 8)
_register(Opcode.REM, OpKind.DIV, ResourceClass.INT, 8)
# Logic: 1 cycle.
for _op in (Opcode.AND, Opcode.OR, Opcode.XOR):
    _register(_op, OpKind.LOGIC, ResourceClass.INT, 1, commutative=True)
_register(Opcode.NOT, OpKind.LOGIC, ResourceClass.INT, 1)
# Shifts: 1 cycle, integer unit, not supported by the CCA (Section 3.1).
for _op in (Opcode.SHL, Opcode.SHR, Opcode.SHRU):
    _register(_op, OpKind.SHIFT, ResourceClass.INT, 1)
# Comparisons: 1 cycle.
for _op in (Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
            Opcode.CMPGT, Opcode.CMPGE):
    _register(_op, OpKind.COMPARE, ResourceClass.INT, 1)
_register(Opcode.SELECT, OpKind.SELECT, ResourceClass.INT, 1)
_register(Opcode.MOV, OpKind.MOVE, ResourceClass.INT, 1)
_register(Opcode.LDI, OpKind.MOVE, ResourceClass.INT, 1)
# Floating point: fully pipelined 4 cycle FUs; divide is long-latency.
for _op in (Opcode.FADD, Opcode.FMUL, Opcode.FMIN, Opcode.FMAX):
    _register(_op, OpKind.FLOAT, ResourceClass.FP, 4, commutative=True)
for _op in (Opcode.FSUB, Opcode.FNEG, Opcode.FABS, Opcode.ITOF,
            Opcode.FTOI, Opcode.FCMPLT, Opcode.FCMPLE, Opcode.FCMPEQ):
    _register(_op, OpKind.FLOAT, ResourceClass.FP, 4)
_register(Opcode.FDIV, OpKind.FLOAT, ResourceClass.FP, 16)
# Memory: 2 cycle load-use latency; stores commit asynchronously.
for _op in (Opcode.LOAD, Opcode.FLOAD):
    _register(_op, OpKind.MEMORY, ResourceClass.MEM, 2)
for _op in (Opcode.STORE, Opcode.FSTORE):
    _register(_op, OpKind.MEMORY, ResourceClass.MEM, 1)
# Control.
for _op in (Opcode.BR, Opcode.JUMP, Opcode.CALL, Opcode.BRL):
    _register(_op, OpKind.CONTROL, ResourceClass.BRANCH, 1)
# The collapsed CCA instruction executes in 2 cycles (paper Section 3.1).
_register(Opcode.CCA_OP, OpKind.CCA_COMPOUND, ResourceClass.CCA, 2)


def info(opcode: Opcode) -> OpcodeInfo:
    """Return the static :class:`OpcodeInfo` for *opcode*."""
    return _INFO[opcode]


COMPARE_OPCODES = frozenset({
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPGT, Opcode.CMPGE,
})

LOAD_OPCODES = frozenset({Opcode.LOAD, Opcode.FLOAD})
STORE_OPCODES = frozenset({Opcode.STORE, Opcode.FSTORE})
MEMORY_OPCODES = LOAD_OPCODES | STORE_OPCODES

#: Opcodes the CCA can execute.  The CCA supports simple arithmetic
#: (add, subtract, comparison) and bitwise logical ops; it does not
#: support shifts or multiplies (paper Section 3.1).
CCA_ARITH_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.NEG, Opcode.ABS, Opcode.MIN, Opcode.MAX,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPGT, Opcode.CMPGE, Opcode.SELECT, Opcode.MOV,
})
CCA_LOGIC_OPCODES = frozenset({
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.MOV,
})
CCA_SUPPORTED_OPCODES = CCA_ARITH_OPCODES | CCA_LOGIC_OPCODES


@dataclass
class LatencyModel:
    """Overridable operation latency model.

    The static priority encoding argument (Section 4.2, footnote 3) notes
    recurrence criticality is architecture independent only while FU
    latencies stay consistent; this class lets experiments perturb
    latencies to study exactly that.
    """

    overrides: dict[Opcode, int] = field(default_factory=dict)

    def latency(self, opcode: Opcode) -> int:
        """Latency in cycles of *opcode* under this model."""
        if opcode in self.overrides:
            return self.overrides[opcode]
        return info(opcode).latency


DEFAULT_LATENCY = LatencyModel()

"""Summarise a JSONL trace/metrics dump (``python -m repro stats``).

Aggregates span records by ``(component, name)`` — count, total and
mean wall clock, total meter units — reduces the ``translate`` spans to
the per-phase work/instruction totals that reconcile with the Figure 8
table, and renders the final metrics snapshot.  Deliberately
standalone: only the :mod:`repro.obs` package is imported, so a trace
can be inspected without loading the experiment stack.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.obs.trace import METRICS_KIND, SPAN_KIND, iter_trace


def load_trace(path: str) -> list[dict[str, Any]]:
    """All parseable records of *path* (lenient, in file order)."""
    return list(iter_trace(path))


def span_records(records: Iterable[dict[str, Any]],
                 name: Optional[str] = None,
                 component: Optional[str] = None) -> list[dict[str, Any]]:
    out = []
    for record in records:
        if record.get("kind") != SPAN_KIND:
            continue
        details = record.get("details", {})
        if name is not None and details.get("name") != name:
            continue
        if component is not None and record.get("component") != component:
            continue
        out.append(record)
    return out


def phase_totals(records: Iterable[dict[str, Any]],
                 name: str = "translate",
                 component: str = "translator",
                 ok_only: bool = True
                 ) -> tuple[dict[str, int], dict[str, float]]:
    """Per-phase (work units, modelled instructions) totals.

    Only top-level ``translate`` spans are summed by default — their
    nested phase spans carry the *same* units again, so summing every
    span would double-count.  With ``ok_only`` (the default) failed
    translations are excluded too, matching the Figure 8 convention of
    averaging over translated loops only, so the totals reconcile
    exactly with the figure table (the default phase weights are
    integral, making every addend an exact float in any sum order).
    """
    units: dict[str, int] = {}
    instructions: dict[str, float] = {}
    for record in span_records(records, name=name, component=component):
        details = record["details"]
        if ok_only and not details.get("attrs", {}).get("ok"):
            continue
        for phase, amount in details.get("units", {}).items():
            units[phase] = units.get(phase, 0) + amount
        for phase, amount in details.get("instructions", {}).items():
            instructions[phase] = instructions.get(phase, 0.0) + amount
    return units, instructions


def metrics_dump(records: Iterable[dict[str, Any]]
                 ) -> Optional[dict[str, Any]]:
    """The last metrics record's details (the trace CLI writes one)."""
    dump = None
    for record in records:
        if record.get("kind") == METRICS_KIND:
            dump = record.get("details")
    return dump


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]],
           title: str = "") -> str:
    """Minimal fixed-width table (obs stays free of repro.experiments)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_trace_stats(records: list[dict[str, Any]],
                       source: str = "") -> str:
    """The ``python -m repro stats`` report for *records*."""
    spans = span_records(records)
    pids = {r["details"]["pid"] for r in spans
            if isinstance(r.get("details", {}).get("pid"), int)}
    header = (f"{len(records)} records ({len(spans)} spans, "
              f"{len(pids)} process{'es' if len(pids) != 1 else ''})")
    if source:
        header += f" from {source}"
    sections = [header]

    # -- spans by (component, name) ---------------------------------------
    grouped: dict[tuple[str, str], dict[str, Any]] = {}
    for record in spans:
        # Render leniently: a malformed record (strict validation will
        # flag it separately) must not crash the report.
        details = record.get("details") or {}
        if not isinstance(details, dict):
            continue
        key = (record.get("component", ""),
               str(details.get("name", "?")))
        agg = grouped.setdefault(key, {"count": 0, "dur_s": 0.0,
                                       "units": 0})
        agg["count"] += 1
        dur = details.get("dur_s", 0.0)
        agg["dur_s"] += dur if isinstance(dur, (int, float)) \
            and not isinstance(dur, bool) else 0.0
        units = details.get("units", {})
        if isinstance(units, dict):
            agg["units"] += sum(v for v in units.values()
                                if isinstance(v, (int, float)))
    if grouped:
        rows = []
        for (component, name), agg in sorted(
                grouped.items(), key=lambda kv: -kv[1]["dur_s"]):
            mean_ms = 1000.0 * agg["dur_s"] / agg["count"]
            rows.append([component, name, agg["count"],
                         f"{agg['dur_s']:.3f}", f"{mean_ms:.2f}",
                         f"{agg['units']:,}"])
        sections.append(_table(
            ["component", "span", "count", "total [s]", "mean [ms]",
             "meter units"],
            rows, title="Spans"))

    # -- per-phase translation totals -------------------------------------
    units, instructions = phase_totals(records)
    if units or instructions:
        translates = span_records(records, name="translate",
                                  component="translator")
        failed = sum(1 for r in translates
                     if not r["details"].get("attrs", {}).get("ok"))
        phases = sorted(set(units) | set(instructions))
        rows = [[phase, f"{units.get(phase, 0):,}",
                 f"{instructions.get(phase, 0.0):,.0f}"]
                for phase in phases]
        rows.append(["TOTAL", f"{sum(units.values()):,}",
                     f"{sum(instructions.values()):,.0f}"])
        title = (f"Translation phases ({len(translates) - failed} ok "
                 f"'translate' spans; {failed} failed excluded)")
        sections.append(_table(
            ["phase", "work units", "modelled instructions"], rows,
            title=title))

    # -- metrics snapshot --------------------------------------------------
    dump = metrics_dump(records)
    if dump:
        counters = dump.get("counters", {})
        # Surface the service tier first: client retry/reconnect
        # behaviour (net.client.*), the admission ladder's decisions
        # (service.admission.*) and the sharded cluster's health and
        # failover counters (cluster.*) are the failure-handling story
        # of a trace, and deserve their own grouped table ahead of the
        # full alphabetical dump below.
        tier = [("client", "net.client."),
                ("admission", "service.admission."),
                ("cluster", "cluster.")]
        tier_rows = [[family, name, f"{counters[name]:,}"]
                     for family, prefix in tier
                     for name in sorted(counters)
                     if name.startswith(prefix)]
        if tier_rows:
            sections.append(_table(
                ["family", "counter", "value"], tier_rows,
                title="Service tier: client / admission / cluster"))
        if counters:
            rows = [[name, f"{counters[name]:,}"]
                    for name in sorted(counters)]
            sections.append(_table(["counter", "value"], rows,
                                   title="Metrics: counters"))
        hists = dump.get("histograms", {})
        if hists:
            rows = []
            for name in sorted(hists):
                bucket = {float(value): n
                          for value, n in hists[name].items()}
                count = sum(bucket.values())
                total = sum(value * n for value, n in bucket.items())
                rows.append([name, count, f"{min(bucket):g}",
                             f"{max(bucket):g}",
                             f"{total / count:.2f}" if count else "-"])
            sections.append(_table(
                ["histogram", "count", "min", "max", "mean"], rows,
                title="Metrics: histograms"))
        gauges = dump.get("gauges", {})
        if gauges:
            rows = [[name, f"{gauges[name]:g}"] for name in sorted(gauges)]
            sections.append(_table(["gauge", "value"], rows,
                                   title="Metrics: gauges"))

    return "\n\n".join(sections)

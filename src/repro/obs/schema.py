"""Schema for observability trace records (and its validator).

Every line of a trace file is one JSON object with the shared envelope
(the same shape as the PR-3 incident log, so the two formats
interleave in one file):

    seq        int >= 0     per-process emission counter
    ts         number       unix wall-clock seconds
    kind       str          "span" | "metrics" (incident kinds pass too)
    component  str          emitting subsystem ("translator", "vm", ...)
    message    str          short human-readable line
    details    object       kind-specific payload

``kind == "span"`` details:

    name       str          span name ("translate", "front_end", ...)
    pid        int          emitting process (span ids are per-process)
    span       int >= 0     span id
    parent     int | null   enclosing span's id (same pid), null at root
    dur_s      number >= 0  wall-clock duration
    attrs      object       free-form attributes (loop, config, error...)
    units      object?      per-phase meter work units charged inside
                            the span ({phase: int >= 0})
    instructions object?    per-phase modelled instructions
                            ({phase: number >= 0})

``kind == "metrics"`` details:

    pid        int
    counters   object       {metric name: number}
    gauges     object       {metric name: number}
    histograms object       {metric name: {str(value): int >= 0}}

The validator is deliberately structural, not semantic: it proves a
file is machine-readable against this contract (the CI ``trace-smoke``
job gates on it) without constraining which spans a pipeline emits.
Unknown ``kind`` values (e.g. incident records sharing the file) only
have their envelope checked.
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import METRICS_KIND, SPAN_KIND

_ENVELOPE = (("seq", int), ("ts", (int, float)), ("kind", str),
             ("component", str), ("message", str), ("details", dict))


def _number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _phase_map(value: Any, integral: bool) -> bool:
    if not isinstance(value, dict):
        return False
    for phase, amount in value.items():
        if not isinstance(phase, str):
            return False
        if integral and not (isinstance(amount, int)
                             and not isinstance(amount, bool)):
            return False
        if not integral and not _number(amount):
            return False
    return True


def validate_record(obj: Any) -> list[str]:
    """Schema violations in one parsed record ([] when valid)."""
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    errors: list[str] = []
    for key, types in _ENVELOPE:
        if key not in obj:
            errors.append(f"missing envelope field {key!r}")
        elif not isinstance(obj[key], types) or isinstance(obj[key], bool):
            errors.append(f"envelope field {key!r} has type "
                          f"{type(obj[key]).__name__}")
    if errors:
        return errors
    if isinstance(obj["seq"], int) and obj["seq"] < 0:
        errors.append("seq must be >= 0")
    details = obj["details"]
    if obj["kind"] == SPAN_KIND:
        errors.extend(_validate_span(details))
    elif obj["kind"] == METRICS_KIND:
        errors.extend(_validate_metrics(details))
    return errors


def _validate_span(details: dict[str, Any]) -> list[str]:
    errors: list[str] = []
    if not isinstance(details.get("name"), str) or not details.get("name"):
        errors.append("span details.name must be a non-empty string")
    if not isinstance(details.get("pid"), int):
        errors.append("span details.pid must be an int")
    if not isinstance(details.get("span"), int) or details.get("span", -1) < 0:
        errors.append("span details.span must be an int >= 0")
    parent = details.get("parent", "missing")
    if parent == "missing":
        errors.append("span details.parent is required (may be null)")
    elif parent is not None and not isinstance(parent, int):
        errors.append("span details.parent must be an int or null")
    if not _number(details.get("dur_s")) or details.get("dur_s", -1) < 0:
        errors.append("span details.dur_s must be a number >= 0")
    if not isinstance(details.get("attrs"), dict):
        errors.append("span details.attrs must be an object")
    if "units" in details and not _phase_map(details["units"],
                                             integral=True):
        errors.append("span details.units must map phase -> int")
    if "instructions" in details and not _phase_map(
            details["instructions"], integral=False):
        errors.append("span details.instructions must map phase -> number")
    return errors


def _validate_metrics(details: dict[str, Any]) -> list[str]:
    errors: list[str] = []
    if not isinstance(details.get("pid"), int):
        errors.append("metrics details.pid must be an int")
    for key in ("counters", "gauges"):
        table = details.get(key)
        if not isinstance(table, dict) or not all(
                isinstance(k, str) and _number(v)
                for k, v in table.items()):
            errors.append(f"metrics details.{key} must map name -> number")
    hists = details.get("histograms")
    if not isinstance(hists, dict):
        errors.append("metrics details.histograms must be an object")
    else:
        for name, bucket in hists.items():
            if not isinstance(name, str) or not isinstance(bucket, dict) \
                    or not all(isinstance(k, str) and isinstance(v, int)
                               and not isinstance(v, bool) and v >= 0
                               for k, v in bucket.items()):
                errors.append(f"metrics histogram {name!r} must map "
                              f"str(value) -> count")
    return errors


def validate_trace_file(path: str) -> tuple[int, list[str]]:
    """Strictly validate every line of *path*.

    Returns ``(record_count, errors)`` where each error names its line
    number.  Unlike the lenient runtime reader, an unparseable line
    here IS an error — the CI job wants proof the file is clean.
    """
    import json

    errors: list[str] = []
    count = 0
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"line {lineno}: invalid JSON ({exc})")
                    continue
                count += 1
                for problem in validate_record(obj):
                    errors.append(f"line {lineno}: {problem}")
    except OSError as exc:
        return 0, [f"cannot read {path!r}: {exc}"]
    return count, errors

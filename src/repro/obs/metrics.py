"""Process-global metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): subsystems increment named **counters** (cache
hits, guard deoptimizations, translations performed), set **gauges**
(instantaneous values, process-local by definition), and feed
**histograms** (exact value -> occurrence count maps, e.g. list-
scheduling attempts keyed by candidate II).

Metrics are always on — one dict update under a lock per event, cheap
enough for every instrumented path — and never influence figure text;
they are read out via :func:`MetricsRegistry.snapshot` (the JSON-ready
dump the ``trace``/``bench`` commands embed) and merged across worker
processes with :meth:`delta`/:meth:`merge`:

* a worker snapshots the registry before running an item, computes the
  increment afterwards, and ships that delta back with the result;
* the parent folds deltas in **item order** (see
  :func:`repro.perf.parallel.parallel_map`), and because counter and
  histogram merges are pure additions the aggregate is identical for
  any job count or completion order — the determinism the figure
  pipeline demands of every shared accounting structure.

Gauges are excluded from cross-process merging (a last-written
instantaneous value has no meaningful sum); they stay process-local.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Union

Number = Union[int, float]


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with additive merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Number] = {}
        self.gauges: dict[str, Number] = {}
        #: name -> {observed value -> occurrence count}.  Exact values
        #: are kept (not pre-bucketed ranges) so merges stay lossless
        #: and deterministic; summary statistics derive on demand.
        self.histograms: dict[str, dict[Number, int]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Number) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        with self._lock:
            bucket = self.histograms.setdefault(name, {})
            bucket[value] = bucket.get(value, 0) + 1

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Deep copy of the current state (JSON-serialisable shape)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {name: dict(bucket)
                               for name, bucket in self.histograms.items()},
            }

    def summary(self, name: str) -> Optional[dict[str, Number]]:
        """count/sum/min/max/mean of one histogram (None if absent)."""
        with self._lock:
            bucket = self.histograms.get(name)
            if not bucket:
                return None
            count = sum(bucket.values())
            total = sum(value * n for value, n in bucket.items())
            return {"count": count, "sum": total,
                    "min": min(bucket), "max": max(bucket),
                    "mean": total / count}

    # -- cross-process merging --------------------------------------------

    def delta(self, before: dict[str, Any]) -> dict[str, Any]:
        """Counter/histogram increments since *before* (a snapshot).

        Gauges are deliberately absent — they do not merge additively.
        Zero entries are dropped so an idle worker ships an empty dict.
        """
        now = self.snapshot()
        before_counters = before.get("counters", {})
        counters = {name: value - before_counters.get(name, 0)
                    for name, value in now["counters"].items()
                    if value != before_counters.get(name, 0)}
        histograms: dict[str, dict[Number, int]] = {}
        before_hists = before.get("histograms", {})
        for name, bucket in now["histograms"].items():
            base = before_hists.get(name, {})
            diff = {value: n - base.get(value, 0)
                    for value, n in bucket.items()
                    if n != base.get(value, 0)}
            if diff:
                histograms[name] = diff
        return {"counters": counters, "histograms": histograms}

    def merge(self, delta: dict[str, Any]) -> None:
        """Fold a :meth:`delta` into this registry (pure addition)."""
        with self._lock:
            for name in sorted(delta.get("counters", {})):
                amount = delta["counters"][name]
                self.counters[name] = self.counters.get(name, 0) + amount
            for name in sorted(delta.get("histograms", {})):
                bucket = self.histograms.setdefault(name, {})
                for value, n in sorted(delta["histograms"][name].items()):
                    bucket[value] = bucket.get(value, 0) + n

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_registry: Optional[MetricsRegistry] = None


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def empty_delta() -> dict[str, Any]:
    """The zero increment (what a parent-degraded task reports)."""
    return {"counters": {}, "histograms": {}}

"""``repro.obs`` — zero-dependency observability for the pipeline.

Three facilities, shared by every layer of the system (translator,
scheduler, CCA mapper, VM runtime/guard, translation cache, parallel
sweeps):

* **Spans** (:mod:`repro.obs.trace`): ``with obs.span("priority_calc",
  component="translator", meter=meter, loop=...)`` — nested, timed,
  with exact per-phase meter-unit attribution, exported as JSONL in
  the incident-log envelope.  Off by default, near-zero overhead,
  enabled by ``REPRO_TRACE`` / ``--trace`` / :func:`collect`.
* **Metrics** (:mod:`repro.obs.metrics`): a process-global registry of
  counters, gauges and histograms, merged deterministically across
  worker processes by ``parallel_map``.
* **Stats** (:mod:`repro.obs.stats`, :mod:`repro.obs.schema`): trace
  summarisation and strict schema validation behind ``python -m repro
  trace <figure>`` and ``python -m repro stats``.

This package imports nothing from the rest of ``repro`` (stdlib only),
so any subsystem may instrument itself without import cycles.
Instrumentation is observational by contract: figure text is
byte-identical whether tracing is on or off.
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics as _metrics
from repro.obs.trace import (
    METRICS_KIND,
    NULL_SPAN,
    SPAN_KIND,
    Span,
    SpanLog,
    TRACE_ENV,
    Tracer,
    collect,
    iter_trace,
    reset_tracing,
    span,
    start_trace,
    stop_trace,
    tracer,
    tracing_active,
    write_metrics_record,
)

MetricsRegistry = _metrics.MetricsRegistry
metrics = _metrics.registry
empty_delta = _metrics.empty_delta


def inc(name: str, amount=1) -> None:
    """Increment counter *name* in the process-global registry."""
    _metrics.registry().inc(name, amount)


def observe(name: str, value) -> None:
    """Record one *value* occurrence in histogram *name*."""
    _metrics.registry().observe(name, value)


def set_gauge(name: str, value) -> None:
    """Set gauge *name* (process-local; never merged across workers)."""
    _metrics.registry().set_gauge(name, value)


def metrics_snapshot() -> dict[str, Any]:
    return _metrics.registry().snapshot()


def metrics_delta(before: dict[str, Any]) -> dict[str, Any]:
    return _metrics.registry().delta(before)


def merge_metrics(delta: dict[str, Any]) -> None:
    _metrics.registry().merge(delta)


def reset_metrics() -> None:
    _metrics.registry().reset()


__all__ = [
    "METRICS_KIND", "MetricsRegistry", "NULL_SPAN", "SPAN_KIND", "Span",
    "SpanLog", "TRACE_ENV", "Tracer", "collect", "empty_delta", "inc",
    "iter_trace", "merge_metrics", "metrics", "metrics_delta",
    "metrics_snapshot", "observe", "reset_metrics", "reset_tracing",
    "set_gauge", "span", "start_trace", "stop_trace", "tracer",
    "tracing_active", "write_metrics_record",
]

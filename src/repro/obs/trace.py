"""Span-based structured tracing with JSONL export.

A **span** is one timed region of the pipeline — ``obs.span
("priority_calc", component="translator", loop=...)`` — carrying
wall-clock duration, arbitrary attributes, and (when a
:class:`~repro.vm.costmodel.TranslationMeter` is attached) the exact
per-phase work units the region charged.  Spans nest: a per-process
stack links each span to its parent, so a trace reconstructs the whole
call tree (translate -> front_end/cca_map/schedule/regalloc).

Tracing is **off by default** with near-zero overhead: with no sink
configured :func:`span` returns a shared no-op context manager (one
attribute read and one falsy check per call site) and nothing is
allocated or written.  It activates through

* ``REPRO_TRACE=<path>`` in the environment (read at import, inherited
  by worker processes so their spans append to the same file), or
* :func:`start_trace` / the ``--trace`` CLI flag, which also export
  the environment variable for workers, or
* :func:`collect`, which captures spans into an in-process list for
  the duration of a block — the profiling hook ``fig8_translation``
  uses to consume span data without any file I/O.

Trace records share the envelope of the PR-3 incident log
(:mod:`repro.resilience.incidents`) — ``{"seq", "ts", "kind",
"component", "message", "details"}``, one JSON object per line,
``O_APPEND`` whole-line writes — so one JSONL file can interleave
spans, metrics dumps and incident records, and the same lenient reader
parses them all.  The full schema lives in :mod:`repro.obs.schema`.
Sink I/O failures are swallowed: observability must never fail an
experiment, let alone change a figure.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator, Optional

#: Environment variable naming the JSONL trace sink; inherited by
#: worker processes so a parallel sweep traces into one file.
TRACE_ENV = "REPRO_TRACE"

SPAN_KIND = "span"
METRICS_KIND = "metrics"


class _NullSpan:
    """Shared no-op span returned whenever tracing is inactive."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **details: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One live traced region; use as a context manager."""

    __slots__ = ("name", "component", "attrs", "units", "instructions",
                 "span_id", "parent_id", "_tracer", "_meter",
                 "_units_before", "_ts", "_t0")

    def __init__(self, tracer: "Tracer", name: str, component: str,
                 meter, attrs: dict[str, Any]) -> None:
        self.name = name
        self.component = component
        self.attrs = attrs
        self.units: Optional[dict[str, int]] = None
        self.instructions: Optional[dict[str, float]] = None
        self.span_id: int = -1
        self.parent_id: Optional[int] = None
        self._tracer = tracer
        self._meter = meter
        self._units_before: dict[str, int] = {}

    def __bool__(self) -> bool:
        return True

    def set(self, **details: Any) -> None:
        """Attach data discovered mid-span.

        ``units=`` and ``instructions=`` land in the record's dedicated
        per-phase fields; everything else updates ``attrs``.
        """
        units = details.pop("units", None)
        if units is not None:
            self.units = dict(units)
        instructions = details.pop("instructions", None)
        if instructions is not None:
            self.instructions = dict(instructions)
        self.attrs.update(details)

    def __enter__(self) -> "Span":
        if self._meter is not None:
            self._units_before = dict(self._meter.units)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_s = time.perf_counter() - self._t0
        self._tracer._exit(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._meter is not None and self.units is None:
            before = self._units_before
            delta = {phase: n - before.get(phase, 0)
                     for phase, n in self._meter.units.items()
                     if n != before.get(phase, 0)}
            if delta:
                self.units = delta
        self._tracer._emit_span(self, dur_s)
        return False


class SpanLog:
    """In-memory record collector handed out by :func:`collect`."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def append(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def spans(self, name: Optional[str] = None,
              component: Optional[str] = None) -> list[dict[str, Any]]:
        out = []
        for record in self.records:
            if record["kind"] != SPAN_KIND:
                continue
            details = record["details"]
            if name is not None and details["name"] != name:
                continue
            if component is not None and record["component"] != component:
                continue
            out.append(record)
        return out

    def latest(self, name: Optional[str] = None,
               component: Optional[str] = None
               ) -> Optional[dict[str, Any]]:
        matches = self.spans(name=name, component=component)
        return matches[-1] if matches else None

    def __len__(self) -> int:
        return len(self.records)


class Tracer:
    """Process-wide span recorder: JSONL sink + in-memory collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._next_span_id = 0
        self._stack = threading.local()
        self._collectors: list[SpanLog] = []
        self.sink_path: Optional[str] = os.environ.get(TRACE_ENV) or None
        self.emitted = 0

    @property
    def active(self) -> bool:
        return self.sink_path is not None or bool(self._collectors)

    # -- span construction -------------------------------------------------

    def span(self, name: str, component: str = "", meter=None,
             **attrs: Any):
        if not self.active:
            return NULL_SPAN
        return Span(self, name, component, meter, attrs)

    def _enter(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        span.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span.span_id = self._next_span_id
            self._next_span_id += 1
        stack.append(span)

    def _exit(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    # -- record emission ---------------------------------------------------

    def _emit_span(self, span: Span, dur_s: float) -> None:
        details: dict[str, Any] = {
            "name": span.name,
            "pid": os.getpid(),
            "span": span.span_id,
            "parent": span.parent_id,
            "dur_s": dur_s,
            "attrs": span.attrs,
        }
        if span.units is not None:
            details["units"] = span.units
        if span.instructions is not None:
            details["instructions"] = span.instructions
        self.emit(SPAN_KIND, span.component or "obs",
                  f"span {span.name}", details, ts=span._ts)

    def emit(self, kind: str, component: str, message: str,
             details: dict[str, Any], ts: Optional[float] = None) -> None:
        """Append one record to every collector and the sink."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.emitted += 1
        record = {"seq": seq,
                  "ts": time.time() if ts is None else ts,
                  "kind": kind, "component": component,
                  "message": message, "details": details}
        for collector in list(self._collectors):
            collector.append(record)
        path = self.sink_path
        if path:
            try:
                directory = os.path.dirname(path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                with open(path, "a") as handle:
                    handle.write(json.dumps(record, sort_keys=True,
                                            default=repr) + "\n")
            except OSError:
                pass  # observability must never fail the experiment

    # -- sink / collector management ---------------------------------------

    def configure_sink(self, path: Optional[str],
                       export_env: bool = True,
                       truncate: bool = False) -> None:
        if path and truncate:
            try:
                directory = os.path.dirname(path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                open(path, "w").close()
            except OSError:
                pass
        self.sink_path = path
        if export_env:
            if path:
                os.environ[TRACE_ENV] = path
            else:
                os.environ.pop(TRACE_ENV, None)

    def push_collector(self, log: SpanLog) -> None:
        self._collectors.append(log)

    def pop_collector(self, log: SpanLog) -> None:
        if log in self._collectors:
            self._collectors.remove(log)


_tracer: Optional[Tracer] = None


def tracer() -> Tracer:
    """The process-wide tracer (created on first use)."""
    global _tracer
    if _tracer is None:
        _tracer = Tracer()
    return _tracer


def span(name: str, component: str = "", meter=None, **attrs: Any):
    """A span context manager; the shared no-op when tracing is off.

    The returned object is *falsy* when tracing is inactive, so call
    sites can guard expensive ``set(...)`` payload construction with
    ``if sp:``.
    """
    t = _tracer
    if t is None:
        if not os.environ.get(TRACE_ENV):
            return NULL_SPAN
        t = tracer()
    return t.span(name, component=component, meter=meter, **attrs)


def tracing_active() -> bool:
    t = _tracer
    if t is None:
        return bool(os.environ.get(TRACE_ENV))
    return t.active


def start_trace(path: str, export_env: bool = True,
                truncate: bool = True) -> None:
    """Start writing trace records to *path* (truncating by default).

    With ``export_env`` the path is placed in ``REPRO_TRACE`` so worker
    processes append their spans to the same file.
    """
    tracer().configure_sink(path, export_env=export_env,
                            truncate=truncate)


def stop_trace() -> None:
    """Detach the trace sink and clear the worker environment hint."""
    tracer().configure_sink(None, export_env=True)


class collect:
    """Context manager capturing every record emitted in its block.

    Activates tracing for the duration even when no file sink is
    configured — the in-process profiling hook.  Yields a
    :class:`SpanLog`.
    """

    def __init__(self) -> None:
        self.log = SpanLog()

    def __enter__(self) -> SpanLog:
        tracer().push_collector(self.log)
        return self.log

    def __exit__(self, *exc) -> bool:
        tracer().pop_collector(self.log)
        return False


def write_metrics_record() -> None:
    """Emit the metrics-registry snapshot as one trace record.

    The ``trace`` CLI command calls this exactly once, after the traced
    figure completes (worker increments are already merged back by
    then), so a trace file carries its own metrics dump for
    ``python -m repro stats``.
    """
    from repro.obs.metrics import registry
    snap = registry().snapshot()
    details = {
        "pid": os.getpid(),
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": {name: {str(value): n
                              for value, n in bucket.items()}
                       for name, bucket in snap["histograms"].items()},
    }
    tracer().emit(METRICS_KIND, "obs", "process metrics snapshot",
                  details)


def reset_tracing() -> None:
    """Drop the tracer and clear the env hint (test isolation)."""
    global _tracer
    _tracer = None
    os.environ.pop(TRACE_ENV, None)


def iter_trace(path: str) -> Iterator[dict[str, Any]]:
    """Lenient JSONL reader: skips blank and torn lines (a crash
    mid-append leaves at most one unparseable trailing line)."""
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
    except OSError:
        return

"""Guarded execution: differential verification and deoptimization.

The virtualised contract (Section 4.1) says acceleration may never
change program semantics.  The schedulability check enforces that
*statically*; this module enforces it *dynamically*: in "checked" mode
every accelerated invocation also runs on the scalar interpreter over a
clone of memory, and the two executions' live-outs and touched memory
cells must be bit-identical before the accelerated results are
committed.  On divergence the guard **deoptimizes** — the code-cache
entry is invalidated, the loop is blacklisted with exponential backoff
(and permanently after ``max_failures`` strikes), the scalar results are
committed, and the application keeps running with correct values.

This is the ILA-style discipline of checking accelerator execution
against an instruction-level reference, combined with the conservative
bail-out paths production dynamic translators pair with optimisation.
The fault-injection harness (:mod:`repro.faults`) drives bit flips
through this layer to prove the guard actually catches corrupted
execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro import obs
from repro.accelerator.config import LAConfig
from repro.accelerator.machine import KernelImage
from repro.accelerator.pipeline_executor import OverlappedRun, execute_overlapped
from repro.cpu.interpreter import ExecResult, Interpreter
from repro.cpu.memory import Memory, Value
from repro.errors import AcceleratorFault, GuardViolation
from repro.ir.loop import Loop
from repro.ir.ops import Reg
from repro.vm.codecache import CodeCache
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    translate_loop,
)

#: Signature of a fault hook: ``(site, op, iteration, reg, value) -> value``.
FaultHook = Callable[..., Value]


@dataclass(frozen=True)
class GuardConfig:
    """Policy knobs for the guarded runtime.

    ``mode`` is ``"off"`` (trust the translator — the paper's stance) or
    ``"checked"`` (differentially verify every accelerated invocation).
    After a divergence the loop is benched for ``backoff_invocations``
    invocations, doubling per strike; at ``max_failures`` strikes the
    loop falls back to scalar execution permanently.
    """

    mode: str = "off"
    max_failures: int = 3
    backoff_invocations: int = 8
    #: Also differentially verify the *interpreter's* compiled fast path
    #: (:mod:`repro.cpu.compiled`) against the reference op-by-op
    #: semantics on every check — guards the performance engine itself,
    #: not just the accelerator.
    cross_check_interpreter: bool = False

    @property
    def checked(self) -> bool:
        return self.mode == "checked"

    @staticmethod
    def checked_mode(max_failures: int = 3,
                     backoff_invocations: int = 8,
                     cross_check_interpreter: bool = False) -> "GuardConfig":
        return GuardConfig(mode="checked", max_failures=max_failures,
                           backoff_invocations=backoff_invocations,
                           cross_check_interpreter=cross_check_interpreter)


@dataclass(frozen=True)
class GuardMismatch:
    """One observed divergence between accelerated and scalar execution."""

    kind: str  # "live-out" | "memory" | "fault"
    detail: str


@dataclass
class GuardVerdict:
    """Outcome of one differential check."""

    ok: bool
    mismatches: list[GuardMismatch] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return "verified: accelerated execution matches scalar reference"
        head = self.mismatches[:3]
        lines = [f"{m.kind}: {m.detail}" for m in head]
        extra = len(self.mismatches) - len(head)
        if extra > 0:
            lines.append(f"... and {extra} more mismatches")
        return "; ".join(lines)

    def to_violation(self, loop_name: str) -> GuardViolation:
        return GuardViolation(
            f"guard violation in {loop_name!r}: {self.describe()}",
            loop_name=loop_name, mismatches=list(self.mismatches))


def _values_equal(a: Value, b: Value) -> bool:
    """Value identity; NaN equals NaN so only real divergences flag."""
    if isinstance(a, float) or isinstance(b, float):
        if isinstance(a, float) and isinstance(b, float) \
                and math.isnan(a) and math.isnan(b):
            return True
        return a == b and type(a) is type(b)
    return a == b


@dataclass
class DifferentialOutcome:
    """Everything one differential check produced.

    Both executions run on private clones of the pre-invocation memory;
    the caller decides which clone to commit (accelerated on a clean
    verdict, scalar on divergence — that commit *is* the recovery).
    """

    verdict: GuardVerdict
    scalar_memory: Memory
    accel_memory: Memory
    scalar_result: ExecResult
    accel_run: Optional[OverlappedRun]


def interpreter_cross_check(loop: Loop, memory: Memory,
                            live_ins: Mapping[Reg, Value]
                            ) -> list[GuardMismatch]:
    """Run *loop* through both interpreter modes and diff everything.

    The compiled fast path (:mod:`repro.cpu.compiled`) must be
    bit-identical to the reference op-by-op interpreter on registers,
    live-outs, touched memory, trip count and dynamic-op count; each
    divergence (or a trap raised by only one side) becomes a
    ``kind="interpreter"`` mismatch.  Both runs use private memory
    clones, so *memory* is untouched.
    """
    from repro.cpu.interpreter import TrapError

    results = {}
    memories = {}
    traps = {}
    for mode in ("reference", "compiled"):
        mem = memory.clone()
        memories[mode] = mem
        try:
            results[mode] = Interpreter(mem, mode=mode).run_loop(
                loop, dict(live_ins))
        except TrapError as exc:
            traps[mode] = str(exc)
    mismatches: list[GuardMismatch] = []
    if traps.get("reference") != traps.get("compiled"):
        mismatches.append(GuardMismatch(
            "interpreter",
            f"trap divergence: reference {traps.get('reference')!r} != "
            f"compiled {traps.get('compiled')!r}"))
        return mismatches
    if traps:  # both trapped identically — nothing further to compare
        return mismatches
    ref, fast = results["reference"], results["compiled"]
    for label, a, b in (("iterations", ref.iterations, fast.iterations),
                        ("dynamic_ops", ref.dynamic_ops, fast.dynamic_ops)):
        if a != b:
            mismatches.append(GuardMismatch(
                "interpreter", f"{label}: reference {a} != compiled {b}"))
    for reg in sorted(set(ref.regs) | set(fast.regs), key=str):
        a, b = ref.regs.get(reg), fast.regs.get(reg)
        if a is None or b is None or not _values_equal(a, b):
            mismatches.append(GuardMismatch(
                "interpreter",
                f"{reg}: reference {a!r} != compiled {b!r}"))
    ref_cells = memories["reference"].snapshot()
    fast_cells = memories["compiled"].snapshot()
    for addr in sorted(set(ref_cells) | set(fast_cells)):
        a, b = ref_cells.get(addr), fast_cells.get(addr)
        if a is None or b is None or not _values_equal(a, b):
            mismatches.append(GuardMismatch(
                "interpreter",
                f"[{addr:#x}]: reference {a!r} != compiled {b!r}"))
    return mismatches


def differential_check(image: KernelImage, memory: Memory,
                       live_ins: Mapping[Reg, Value],
                       trip_count: Optional[int] = None,
                       fault_hook: Optional[FaultHook] = None,
                       cross_check_interpreter: bool = False
                       ) -> DifferentialOutcome:
    """Execute *image* both ways and compare observable state.

    The scalar interpreter runs ``image.loop`` (the CCA-mapped body —
    compound ops execute their inner ops atomically, so semantics equal
    the original loop) as the reference; the overlapped pipeline
    executor is the device-faithful model under test, optionally with a
    fault hook corrupting its datapath.  With
    ``cross_check_interpreter=True`` the interpreter's own compiled
    fast path is additionally verified against the reference op-by-op
    semantics (see :func:`interpreter_cross_check`).
    """
    obs.inc("guard.diff_checks")
    mismatches: list[GuardMismatch] = []
    if cross_check_interpreter:
        mismatches.extend(interpreter_cross_check(image.loop, memory,
                                                  live_ins))
    scalar_mem = memory.clone()
    scalar_result = Interpreter(scalar_mem).run_loop(image.loop,
                                                    dict(live_ins))
    accel_mem = memory.clone()
    accel_run: Optional[OverlappedRun] = None
    try:
        # Tier-aware: at engine level >= 2 this runs the specialized
        # kernel, so the cross-check verifies the generated code itself
        # against the scalar reference.
        from repro.accelerator.jit import execute_pipelined
        accel_run = execute_pipelined(image, accel_mem, live_ins,
                                      trip_count=trip_count,
                                      fault_hook=fault_hook)
    except AcceleratorFault as exc:
        mismatches.append(GuardMismatch("fault", str(exc)))
    else:
        for reg in sorted(image.loop.live_outs, key=str):
            ref = scalar_result.live_outs.get(reg)
            got = accel_run.live_outs.get(reg)
            if ref is None and got is None:
                continue
            if ref is None or got is None or not _values_equal(ref, got):
                mismatches.append(GuardMismatch(
                    "live-out", f"{reg}: accelerator {got!r} != scalar "
                                f"{ref!r}"))
        ref_cells = scalar_mem.snapshot()
        got_cells = accel_mem.snapshot()
        for addr in sorted(set(ref_cells) | set(got_cells)):
            ref_v = ref_cells.get(addr)
            got_v = got_cells.get(addr)
            if ref_v is None or got_v is None \
                    or not _values_equal(ref_v, got_v):
                mismatches.append(GuardMismatch(
                    "memory", f"[{addr:#x}]: accelerator {got_v!r} != "
                              f"scalar {ref_v!r}"))
    if mismatches:
        obs.inc("guard.divergences")
    return DifferentialOutcome(
        verdict=GuardVerdict(ok=not mismatches, mismatches=mismatches),
        scalar_memory=scalar_mem, accel_memory=accel_mem,
        scalar_result=scalar_result, accel_run=accel_run)


# -- blacklist ----------------------------------------------------------------

@dataclass
class BlacklistEntry:
    """Deoptimization record for one loop."""

    failures: int = 0
    release_at: Optional[int] = None
    permanent: bool = False
    last_reason: str = ""


class LoopBlacklist:
    """Retry/backoff policy over deoptimized loops.

    Strike *n* benches the loop for ``backoff * 2**(n-1)`` invocations;
    strike ``max_failures`` benches it forever.  Deterministic
    translation failures go straight to permanent (retrying cannot
    change the outcome)."""

    def __init__(self, max_failures: int = 3,
                 backoff_invocations: int = 8) -> None:
        self.max_failures = max_failures
        self.backoff_invocations = backoff_invocations
        self.entries: dict[str, BlacklistEntry] = {}

    def note_failure(self, name: str, now: int,
                     reason: str) -> BlacklistEntry:
        entry = self.entries.setdefault(name, BlacklistEntry())
        entry.failures += 1
        entry.last_reason = reason
        if entry.failures >= self.max_failures:
            entry.permanent = True
            entry.release_at = None
        else:
            backoff = self.backoff_invocations * 2 ** (entry.failures - 1)
            entry.release_at = now + backoff
        return entry

    def ban(self, name: str, reason: str) -> BlacklistEntry:
        entry = self.entries.setdefault(name, BlacklistEntry())
        entry.failures += 1
        entry.permanent = True
        entry.release_at = None
        entry.last_reason = reason
        return entry

    def blocked(self, name: str, now: int) -> bool:
        entry = self.entries.get(name)
        if entry is None:
            return False
        if entry.permanent:
            return True
        return entry.release_at is not None and now < entry.release_at

    def reason_for(self, name: str) -> str:
        entry = self.entries.get(name)
        return entry.last_reason if entry is not None else ""

    def permanently_blocked(self, name: str) -> bool:
        entry = self.entries.get(name)
        return entry is not None and entry.permanent


# -- guarded executor ---------------------------------------------------------

@dataclass
class GuardStats:
    """Aggregate accounting across a guarded executor's lifetime."""

    invocations: int = 0
    accelerated: int = 0
    scalar_runs: int = 0
    checked: int = 0
    mismatches: int = 0
    deopts: int = 0
    blacklist_skips: int = 0
    translations: int = 0
    cache_hits: int = 0
    faults_caught: int = 0


@dataclass
class GuardedRun:
    """Result of one guarded invocation."""

    loop_name: str
    source: str  # "accelerator" | "scalar"
    detected: bool
    verdict: Optional[GuardVerdict]
    live_outs: dict[Reg, Value]
    reason: Optional[str] = None
    cycles: Optional[int] = None


class GuardedExecutor:
    """Translate-cache-verify-recover loop driver.

    Owns a code cache of :class:`KernelImage`, the blacklist, and the
    guard policy; every :meth:`run` call services one loop invocation
    end to end, always leaving *memory* in the semantically correct
    post-loop state regardless of what the accelerator did.
    """

    def __init__(self, la_config: LAConfig,
                 guard: GuardConfig = GuardConfig(),
                 options: TranslationOptions = TranslationOptions(),
                 cache_entries: Optional[int] = None) -> None:
        self.la_config = la_config
        self.guard = guard
        self.options = options
        entries = (cache_entries if cache_entries is not None
                   else la_config.code_cache_entries)
        self.cache: CodeCache[KernelImage] = CodeCache(entries)
        self.blacklist = LoopBlacklist(guard.max_failures,
                                       guard.backoff_invocations)
        self.stats = GuardStats()
        self.invocations = 0

    # -- helpers -----------------------------------------------------------

    def _scalar(self, loop: Loop, memory: Memory,
                live_ins: Mapping[Reg, Value],
                reason: Optional[str], detected: bool = False) -> GuardedRun:
        result = Interpreter(memory).run_loop(loop, dict(live_ins))
        self.stats.scalar_runs += 1
        return GuardedRun(loop.name, "scalar", detected, None,
                          result.live_outs, reason=reason)

    def _image_for(self, loop: Loop) -> TranslationResult | KernelImage:
        cached = self.cache.lookup(loop.name)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = translate_loop(loop, self.la_config, self.options)
        self.stats.translations += 1
        if result.ok:
            assert result.image is not None
            self.cache.insert(loop.name, result.image)
            return result.image
        return result

    def deoptimize(self, name: str, reason: str) -> BlacklistEntry:
        """Invalidate the cached kernel and strike the blacklist."""
        self.cache.invalidate(name)
        from repro.accelerator import jit
        jit.invalidate_loop(name)
        obs.inc("vm.deopt")
        self.stats.deopts += 1
        return self.blacklist.note_failure(name, self.invocations, reason)

    # -- the main entry point ---------------------------------------------

    def run(self, loop: Loop, memory: Memory,
            live_ins: Mapping[Reg, Value],
            fault_hook: Optional[FaultHook] = None,
            trip_count: Optional[int] = None) -> GuardedRun:
        """Service one invocation of *loop*, mutating *memory* correctly."""
        self.invocations += 1
        self.stats.invocations += 1
        name = loop.name

        if self.blacklist.blocked(name, self.invocations):
            self.stats.blacklist_skips += 1
            return self._scalar(
                loop, memory, live_ins,
                reason=f"blacklisted: {self.blacklist.reason_for(name)}")

        image = self._image_for(loop)
        if isinstance(image, TranslationResult):
            # Translation is deterministic — retrying cannot succeed.
            self.blacklist.ban(name, image.failure or "translation failed")
            return self._scalar(loop, memory, live_ins,
                                reason=image.failure)

        if not self.guard.checked:
            accel_mem = memory.clone()
            try:
                from repro.accelerator.jit import execute_pipelined
                run = execute_pipelined(image, accel_mem, live_ins,
                                        trip_count=trip_count,
                                        fault_hook=fault_hook)
            except AcceleratorFault as exc:
                # Structural faults trip even unguarded; recover anyway.
                self.stats.faults_caught += 1
                self.deoptimize(name, str(exc))
                return self._scalar(loop, memory, live_ins,
                                    reason=f"accelerator fault: {exc}",
                                    detected=True)
            memory.restore_from(accel_mem)
            self.stats.accelerated += 1
            return GuardedRun(name, "accelerator", False, None,
                              run.live_outs, cycles=run.cycles)

        outcome = differential_check(
            image, memory, live_ins, trip_count=trip_count,
            fault_hook=fault_hook,
            cross_check_interpreter=self.guard.cross_check_interpreter)
        self.stats.checked += 1
        if outcome.verdict.ok:
            memory.restore_from(outcome.accel_memory)
            self.stats.accelerated += 1
            assert outcome.accel_run is not None
            return GuardedRun(name, "accelerator", False, outcome.verdict,
                              outcome.accel_run.live_outs,
                              cycles=outcome.accel_run.cycles)

        # Divergence: deoptimize and commit the scalar reference.
        self.stats.mismatches += 1
        if any(m.kind == "fault" for m in outcome.verdict.mismatches):
            self.stats.faults_caught += 1
        entry = self.deoptimize(name, outcome.verdict.describe())
        memory.restore_from(outcome.scalar_memory)
        self.stats.scalar_runs += 1
        state = ("permanent scalar fallback" if entry.permanent else
                 f"benched until invocation {entry.release_at}")
        return GuardedRun(
            name, "scalar", True, outcome.verdict,
            outcome.scalar_result.live_outs,
            reason=f"deoptimized ({entry.failures} strikes, {state}): "
                   f"{outcome.verdict.describe()}")


__all__ = [
    "BlacklistEntry",
    "DifferentialOutcome",
    "GuardConfig",
    "GuardMismatch",
    "GuardStats",
    "GuardVerdict",
    "GuardedExecutor",
    "GuardedRun",
    "LoopBlacklist",
    "differential_check",
    "interpreter_cross_check",
]

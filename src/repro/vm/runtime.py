"""The co-designed virtual machine runtime.

Ties everything together: monitors a program, identifies its loops
(dynamically — "Loop detection remains dynamic, as it is a low-overhead
process to perform in the VM", Section 4.2), translates hot loops for
whatever accelerator is present, caches translations in the software
code cache, and accounts whole-application cycles including translation
overhead — the quantity behind Figures 6, 7 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.accelerator.config import LAConfig
from repro.accelerator.machine import LoopAccelerator
from repro.cpu.interpreter import standard_live_ins
from repro.cpu.memory import Memory
from repro.cpu.pipeline import ARM11, CPUConfig, InOrderPipeline
from repro.ir.cfg import Program, identify_loops, linear_program
from repro.ir.loop import Loop
from repro.errors import AcceleratorFault
from repro.vm.codecache import CodeCache
from repro.vm.costmodel import translation_cycles
from repro.vm.guard import GuardConfig, differential_check
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    invalidate_translation,
    translate_loop,
)


@dataclass(frozen=True)
class VMConfig:
    """One system configuration of the evaluation.

    ``translation_overhead_override`` replaces measured per-loop
    translation cost with a fixed cycle count (the Figure 6 sweep);
    ``miss_rate_override`` replaces code-cache simulation with an
    analytic retranslation frequency (Figure 6's line family).
    ``charge_translation=False`` models the "No Translation Penalty" /
    statically-compiled-binary bars.
    """

    cpu: CPUConfig = ARM11
    accelerator: Optional[LAConfig] = None
    options: TranslationOptions = TranslationOptions()
    charge_translation: bool = True
    translation_overhead_override: Optional[float] = None
    miss_rate_override: Optional[float] = None
    #: When False, accelerator cycle counts come from the schedule's
    #: timing alone (no functional execution) — used by design-space
    #: sweeps where thousands of (loop, config) points are evaluated.
    functional: bool = True
    #: When False, the application binary was compiled WITHOUT the
    #: static loop transformations (aggressive inlining, if-conversion,
    #: fission, unrolling adjustment) — loops whose shape depends on
    #: them cannot be retargeted at runtime (Figure 7).
    static_transforms_applied: bool = True
    #: Hot-loop profiling threshold: loops whose total scalar time
    #: (cycles/invocation x invocations) falls below this are never
    #: translated — "the VM operates by observing an application's
    #: execution and dynamically optimizing portions that benefit"
    #: (Section 4.2).  0 translates everything.
    hot_loop_min_cycles: float = 0.0
    #: Multicore translation offload (Section 4.2: "one processor can
    #: run the application in parallel with the translation").  The
    #: first translation of each loop is still on the critical path
    #: (the loop cannot launch until its control exists), but
    #: code-cache-miss retranslations overlap with continued scalar
    #: execution and cost nothing here.
    parallel_translation: bool = False
    #: Guarded-execution policy.  In ``"checked"`` mode every functional
    #: accelerator invocation is differentially verified against the
    #: scalar interpreter; a divergence (or a structural accelerator
    #: fault) deoptimizes the loop back to scalar execution instead of
    #: propagating wrong results — the virtualised never-change-semantics
    #: contract, enforced dynamically.
    guard: GuardConfig = GuardConfig()

    @property
    def code_cache_entries(self) -> int:
        if self.accelerator is None:
            return 16
        return self.accelerator.code_cache_entries


@dataclass
class LoopOutcome:
    """Per-loop result of running under one VM configuration."""

    name: str
    accelerated: bool
    reason: Optional[str]
    invocations: int
    trip_count: int
    scalar_cycles_per_invocation: float
    accel_cycles_per_invocation: Optional[float]
    translation_instructions: float
    translations_performed: int
    ii: Optional[int] = None
    stage_count: Optional[int] = None
    #: Stable machine-readable tag of the translation failure (from the
    #: :mod:`repro.errors` taxonomy); None when translation succeeded or
    #: never ran.
    failure_kind: Optional[str] = None
    #: True when the differential guard verified this loop's execution.
    guard_checked: bool = False
    #: True when the guard observed a divergence and fell back to scalar.
    deoptimized: bool = False

    @property
    def loop_speedup(self) -> float:
        if not self.accelerated or not self.accel_cycles_per_invocation:
            return 1.0
        return self.scalar_cycles_per_invocation / self.accel_cycles_per_invocation


@dataclass
class AppRun:
    """Whole-application cycle accounting for one benchmark."""

    benchmark: str
    acyclic_cycles: float
    scalar_loop_cycles: float
    accel_loop_cycles: float
    translation_cycle_total: float
    outcomes: list[LoopOutcome] = field(default_factory=list)
    cache_hit_rate: float = 1.0

    @property
    def total_cycles(self) -> float:
        return (self.acyclic_cycles + self.scalar_loop_cycles
                + self.accel_loop_cycles + self.translation_cycle_total)


def _prepare_memory(loop: Loop, seed: int) -> Memory:
    """Fresh memory with every array allocated and seeded with data."""
    memory = Memory()
    memory.allocate_arrays(loop.arrays)
    rng = np.random.default_rng(seed ^ hash(loop.name) % (2 ** 31))
    for arr in loop.arrays:
        if arr.is_float:
            memory.write_array(arr.name,
                               list(rng.uniform(-64.0, 64.0, arr.length)))
        else:
            memory.write_array(
                arr.name, [int(v) for v in rng.integers(-128, 128, arr.length)])
    return memory


class VirtualMachine:
    """Executes benchmarks under a system configuration."""

    def __init__(self, config: VMConfig) -> None:
        self.config = config
        self.pipeline = InOrderPipeline(config.cpu,
                                        config.options.latency_model)
        self.accelerator = (LoopAccelerator(config.accelerator)
                            if config.accelerator is not None else None)
        self.code_cache: CodeCache = CodeCache(config.code_cache_entries)
        self._translations: dict[str, TranslationResult] = {}

    # -- translation ---------------------------------------------------------

    def translate(self, loop: Loop) -> TranslationResult:
        """Translate (memoised — retranslation costs are charged via the
        code-cache model, the work itself is deterministic)."""
        if loop.name not in self._translations:
            assert self.config.accelerator is not None
            self._translations[loop.name] = translate_loop(
                loop, self.config.accelerator, self.config.options)
        return self._translations[loop.name]

    # -- per-loop execution -----------------------------------------------------

    def run_loop(self, loop: Loop, scalars: Optional[dict] = None,
                 seed: int = 1234) -> LoopOutcome:
        """Measure one loop under this configuration.

        The loop executes functionally on the accelerator (when
        translation succeeds) so cycle counts come from real schedules
        over real data, not closed-form estimates.
        """
        obs.inc("vm.loops")
        scalar_per_inv = self.pipeline.loop_cycles(loop)
        outcome = LoopOutcome(
            name=loop.name, accelerated=False, reason=None,
            invocations=loop.invocations, trip_count=loop.trip_count,
            scalar_cycles_per_invocation=scalar_per_inv,
            accel_cycles_per_invocation=None,
            translation_instructions=0.0, translations_performed=0)
        if self.accelerator is None:
            outcome.reason = "no accelerator in system"
            return outcome
        if self.config.hot_loop_min_cycles > 0 and \
                scalar_per_inv * loop.invocations < \
                self.config.hot_loop_min_cycles:
            outcome.reason = "below the hot-loop profiling threshold"
            return outcome
        if not self.config.static_transforms_applied and \
                loop.annotations.get("static_transforms"):
            needed = ", ".join(loop.annotations["static_transforms"])
            outcome.reason = (f"loop shape requires static transforms "
                              f"({needed}) the binary lacks")
            return outcome
        result = self.translate(loop)
        outcome.translation_instructions = result.instructions
        if not result.ok:
            outcome.reason = result.failure
            outcome.failure_kind = result.failure_kind
            return outcome
        image = result.image
        assert image is not None
        admit = self.accelerator.admits(image)
        if admit is not None:
            outcome.reason = admit
            return outcome
        if self.config.functional:
            memory = _prepare_memory(image.loop, seed)
            live_ins = standard_live_ins(image.loop, memory, scalars)
            if self.config.guard.checked:
                deopt = self._guarded_invoke(loop, image, memory, live_ins,
                                             outcome)
                if deopt:
                    return outcome
            try:
                run = None
                if not loop.annotations.get("while_loop"):
                    # Engine tier 2: the specialized kernel stands in
                    # for the iteration-by-iteration machine; None
                    # means unsupported and falls through to reference.
                    from repro.accelerator import jit
                    run = jit.invoke_specialized(self.accelerator, image,
                                                 memory, live_ins)
                if run is None:
                    run = self.accelerator.invoke(image, memory, live_ins)
            except AcceleratorFault as exc:
                # A structural invariant tripped mid-invocation; the
                # atomic-invocation contract (Section 2.1) means no
                # partial state escaped — deoptimize to scalar.
                self._deoptimize(loop, outcome,
                                 f"accelerator fault: {exc}")
                return outcome
        else:
            run = self.accelerator.estimate(image)
        outcome.accel_cycles_per_invocation = run.total_cycles
        outcome.ii = image.ii
        outcome.stage_count = image.stage_count
        if run.total_cycles < scalar_per_inv:
            outcome.accelerated = True
            obs.inc("vm.accelerated")
        else:
            outcome.reason = "acceleration not profitable"
        return outcome

    # -- guarded execution ---------------------------------------------------

    def _deoptimize(self, loop: Loop, outcome: LoopOutcome,
                    reason: str) -> None:
        """Fall back to scalar: drop the translation, record why."""
        obs.inc("guard.deopts")
        obs.inc("vm.deopt")
        self._translations.pop(loop.name, None)
        self.code_cache.invalidate(loop.name)
        from repro.accelerator import jit
        jit.invalidate_loop(loop.name)
        if self.config.accelerator is not None:
            # A translation observed to misbehave must not be re-served
            # from the shared content-addressed cache (or its disk layer).
            invalidate_translation(loop, self.config.accelerator,
                                   self.config.options)
        outcome.accelerated = False
        outcome.deoptimized = True
        outcome.accel_cycles_per_invocation = None
        outcome.reason = reason

    def _guarded_invoke(self, loop: Loop, image, memory, live_ins,
                        outcome: LoopOutcome) -> bool:
        """Differentially verify *image*; True means deoptimized.

        Runs accelerated and scalar executions on private clones and
        compares live-outs and touched memory bit-for-bit; *memory*
        itself is left untouched for the subsequent timed invocation.
        """
        if loop.annotations.get("while_loop"):
            # The reference pipeline executor models fixed-trip loops
            # only; speculative while-loops run unchecked.
            return False
        outcome.guard_checked = True
        obs.inc("guard.checks")
        check = differential_check(
            image, memory, live_ins,
            cross_check_interpreter=self.config.guard.cross_check_interpreter)
        if check.verdict.ok:
            return False
        self._deoptimize(loop, outcome,
                         f"deoptimized: {check.verdict.describe()}")
        return True

    # -- code cache model ----------------------------------------------------------

    def _count_translations(self, outcomes: list[LoopOutcome]) -> None:
        """Simulate the invocation stream through the LRU code cache.

        Benchmarks interleave their hot loops round-robin (outer loop
        over phases, inner over kernels), the access pattern that made
        the paper's 16-entry cache hit "very close to 100%".
        """
        accelerated = [o for o in outcomes if o.accelerated]
        if not accelerated:
            return
        if self.config.miss_rate_override is not None:
            rate = self.config.miss_rate_override
            for o in accelerated:
                o.translations_performed = max(
                    1, int(round(rate * o.invocations)))
            return
        remaining = {o.name: o.invocations for o in accelerated}
        translations = {o.name: 0 for o in accelerated}
        while any(v > 0 for v in remaining.values()):
            for o in accelerated:
                if remaining[o.name] <= 0:
                    continue
                remaining[o.name] -= 1
                if self.code_cache.lookup(o.name) is None:
                    self.code_cache.insert(o.name, o.name)
                    translations[o.name] += 1
        for o in accelerated:
            o.translations_performed = translations[o.name]

    # -- whole application -------------------------------------------------------------

    def run_benchmark(self, benchmark) -> AppRun:
        """Run a :class:`~repro.workloads.suite.Benchmark` end to end."""
        accel = self.config.accelerator
        with obs.span("run_benchmark", component="vm",
                      benchmark=benchmark.name,
                      config=accel.name if accel is not None
                      else "scalar") as sp:
            run = self._run_benchmark(benchmark)
            if sp:
                sp.set(accelerated=sum(1 for o in run.outcomes
                                       if o.accelerated),
                       loops=len(run.outcomes))
            return run

    def _run_benchmark(self, benchmark) -> AppRun:
        kernels = (benchmark.kernels if self.config.static_transforms_applied
                   else benchmark.untransformed())
        program: Program = linear_program(benchmark.name, kernels)
        identified = identify_loops(program.entry_function().cfg)
        loops = [il.loop for il in identified if il.loop is not None]

        outcomes: list[LoopOutcome] = []
        for loop in loops:
            outcomes.append(self.run_loop(loop, scalars=benchmark.scalars,
                                          seed=benchmark.data_seed))
        self._count_translations(outcomes)

        scalar_cycles = 0.0
        accel_cycles = 0.0
        translation_total = 0.0
        for o in outcomes:
            if o.accelerated and o.accel_cycles_per_invocation is not None:
                accel_cycles += o.accel_cycles_per_invocation * o.invocations
                if self.config.charge_translation:
                    per_loop = (self.config.translation_overhead_override
                                if self.config.translation_overhead_override
                                is not None
                                else translation_cycles(
                                    o.translation_instructions))
                    charged = max(o.translations_performed, 1)
                    if self.config.parallel_translation:
                        charged = 1  # retranslations hide behind execution
                    translation_total += per_loop * charged
            else:
                scalar_cycles += o.scalar_cycles_per_invocation * o.invocations

        acyclic = benchmark.acyclic_cycles(self.pipeline)
        hit_rate = self.code_cache.stats.hit_rate
        return AppRun(
            benchmark=benchmark.name,
            acyclic_cycles=acyclic,
            scalar_loop_cycles=scalar_cycles,
            accel_loop_cycles=accel_cycles,
            translation_cycle_total=translation_total,
            outcomes=outcomes,
            cache_hit_rate=hit_rate,
        )

"""The VM's software-managed code cache.

"Optimized control is then placed in a software managed code cache, and
the original code is modified to send a code cache pointer to the LA"
(Section 4.2).  The evaluation used space for "the previous 16
translated loops using an LRU eviction policy ... approximately 48 KB of
dedicated storage" with hit rates "very close to 100%" (Section 4.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CodeCache(Generic[T]):
    """LRU cache of translated loop images."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("code cache needs at least one entry")
        self.capacity = capacity
        self._entries: OrderedDict[str, T] = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, key: str) -> Optional[T]:
        """Fetch *key*, updating recency and hit/miss accounting."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def insert(self, key: str, value: T) -> None:
        """Install a translation, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value

    def invalidate(self, key: str) -> bool:
        """Deoptimization support: drop *key* regardless of recency.

        Returns True when an entry was actually removed.  Invalidations
        are counted separately from capacity evictions so the guard's
        deoptimization traffic is visible in the stats.
        """
        if key not in self._entries:
            return False
        del self._entries[key]
        self.stats.invalidations += 1
        return True

    def keys(self) -> list[str]:
        """Current keys, LRU first (for tests and diagnostics)."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def storage_words(self, words_of: dict[str, int]) -> int:
        """Total control-store words held, for the ~48 KB sanity check."""
        return sum(words_of.get(k, 0) for k in self._entries)

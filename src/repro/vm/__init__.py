"""Co-designed virtual machine: translator, code cache, runtime."""

from repro.vm.codecache import CacheStats, CodeCache
from repro.vm.costmodel import (
    DEFAULT_WEIGHTS,
    PHASES,
    TranslationMeter,
    translation_cycles,
)
from repro.vm.runtime import AppRun, LoopOutcome, VMConfig, VirtualMachine
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    translate_loop,
)

__all__ = [
    "AppRun", "CacheStats", "CodeCache", "DEFAULT_WEIGHTS", "LoopOutcome",
    "PHASES", "TranslationMeter", "TranslationOptions",
    "TranslationResult", "VMConfig", "VirtualMachine",
    "translate_loop", "translation_cycles",
]

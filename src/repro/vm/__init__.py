"""Co-designed virtual machine: translator, code cache, runtime, guard."""

from repro.vm.codecache import CacheStats, CodeCache
from repro.vm.costmodel import (
    DEFAULT_WEIGHTS,
    PHASES,
    TranslationMeter,
    translation_cycles,
)
from repro.vm.guard import (
    GuardConfig,
    GuardStats,
    GuardVerdict,
    GuardedExecutor,
    GuardedRun,
    LoopBlacklist,
    differential_check,
)
from repro.vm.runtime import AppRun, LoopOutcome, VMConfig, VirtualMachine
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    translate_loop,
)

__all__ = [
    "AppRun", "CacheStats", "CodeCache", "DEFAULT_WEIGHTS", "GuardConfig",
    "GuardStats", "GuardVerdict", "GuardedExecutor", "GuardedRun",
    "LoopBlacklist", "LoopOutcome", "PHASES", "TranslationMeter",
    "TranslationOptions", "TranslationResult", "VMConfig", "VirtualMachine",
    "differential_check", "translate_loop", "translation_cycles",
]

"""The dynamic loop translator.

Drives the full pipeline of Section 4.1 — schedulability checking,
control/stream separation, CCA mapping, MII calculation, priority
computation, modulo scheduling, register assignment — against a concrete
accelerator, charging every phase's work into a
:class:`~repro.vm.costmodel.TranslationMeter`.

The static/dynamic tradeoffs of Section 4.2 are expressed as
:class:`TranslationOptions`:

* ``use_static_cca`` — consume the Figure 9(b) annotation instead of
  running greedy subgraph identification.
* ``use_static_priority`` — consume the Figure 9(c) ranks instead of
  computing Swing priority.
* ``priority_kind="height"`` — the cheaper height-based function (the
  "Fully Dynamic Height Priority" configuration of Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import LAConfig
from repro.accelerator.machine import KernelImage
from repro.analysis.dependence import refine_memory_edges
from repro.analysis.partition import partition_loop
from repro.analysis.schedulability import check_schedulability
from repro.cca.mapper import apply_subgraphs, map_cca
from repro.ir.dfg import build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import LatencyModel
from repro.isa.annotations import (
    STATIC_CCA_KEY,
    STATIC_MII_KEY,
    STATIC_PRIORITY_KEY,
)
from repro.scheduler.mii import MIIResult, compute_rec_mii, compute_res_mii
from repro.scheduler.priority import PriorityResult
from repro.scheduler.regalloc import fits, register_requirements
from repro.scheduler.rotation import assign_physical
from repro.scheduler.schedule import ModuloSchedule
from repro.scheduler.sms import ScheduleFailure, modulo_schedule
from repro.vm.costmodel import TranslationMeter


@dataclass(frozen=True)
class TranslationOptions:
    """Which phases run dynamically vs. consume static encodings."""

    use_static_cca: bool = False
    use_static_priority: bool = False
    #: Consume statically encoded ResMII/RecMII (the Section 4.2 option
    #: the paper evaluates and REJECTS as too architecture dependent;
    #: kept for the static_tradeoffs experiment).
    use_static_mii: bool = False
    priority_kind: str = "swing"  # "swing" or "height"
    latency_model: LatencyModel = field(default_factory=LatencyModel)

    @staticmethod
    def fully_dynamic() -> "TranslationOptions":
        return TranslationOptions()

    @staticmethod
    def fully_dynamic_height() -> "TranslationOptions":
        return TranslationOptions(priority_kind="height")

    @staticmethod
    def hybrid() -> "TranslationOptions":
        """Static CCA + static priority: the paper's recommendation."""
        return TranslationOptions(use_static_cca=True,
                                  use_static_priority=True)


@dataclass
class TranslationResult:
    """Outcome of translating one loop."""

    loop_name: str
    image: Optional[KernelImage]
    failure: Optional[str]
    meter: TranslationMeter

    @property
    def ok(self) -> bool:
        return self.image is not None

    @property
    def instructions(self) -> float:
        return self.meter.total_instructions()


def translate_loop(loop: Loop, config: LAConfig,
                   options: TranslationOptions = TranslationOptions()
                   ) -> TranslationResult:
    """Translate *loop* for *config*; never raises on unsupported loops.

    Any failure (unschedulable shape, too many streams, MII above the
    control store, register pressure) yields ``image=None`` with the
    reason, and the loop simply keeps running on the baseline core —
    exactly the fall-back the virtualised interface guarantees.
    """
    meter = TranslationMeter()
    lat = options.latency_model

    def fail(reason: str) -> TranslationResult:
        return TranslationResult(loop.name, None, reason, meter)

    # Phase 1: identification / schedulability.
    dfg = build_dfg(loop, lat, work=meter.charger("identify"))
    report = check_schedulability(
        loop, dfg, work=meter.charger("identify"),
        allow_speculation=config.supports_speculation)
    if not report.ok:
        reasons = "; ".join(report.reasons) or report.category.value
        return fail(f"not modulo schedulable: {reasons}")
    streams = report.streams
    assert streams is not None

    # Phase 2: separate control and memory streams.  With every access
    # proven affine, the conservative memory-ordering edges are refined
    # to exact lattice-test dependences (interleaved store streams stop
    # serialising each other).
    dfg = refine_memory_edges(loop, dfg, streams)
    part = partition_loop(loop, dfg, work=meter.charger("partition"))
    if streams.num_load_streams > config.load_streams:
        return fail(f"{streams.num_load_streams} load streams > "
                    f"{config.load_streams} supported")
    if streams.num_store_streams > config.store_streams:
        return fail(f"{streams.num_store_streams} store streams > "
                    f"{config.store_streams} supported")

    # Phase 3: CCA mapping.
    mapped = loop
    if config.num_ccas > 0:
        if options.use_static_cca and STATIC_CCA_KEY in loop.annotations:
            mapping = apply_subgraphs(
                loop, loop.annotations[STATIC_CCA_KEY], dfg,
                config=config.cca, candidate_opids=part.compute,
                work=meter.charger("cca"))
        else:
            mapping = map_cca(loop, dfg, config=config.cca,
                              candidate_opids=part.compute,
                              work=meter.charger("cca"))
        mapped = mapping.loop

    if mapped is not loop:
        dfg2 = refine_memory_edges(
            mapped, build_dfg(mapped, lat, work=meter.charger("partition")),
            streams)
        part2 = partition_loop(mapped, dfg2, work=meter.charger("partition"))
    else:
        dfg2, part2 = dfg, part

    # Phase 4: minimum II.
    units = config.units()
    if options.use_static_mii and STATIC_MII_KEY in loop.annotations:
        # "the VM could recover these values with two loads" — but the
        # recovered ResMII reflects the architecture the COMPILER saw.
        encoded = loop.annotations[STATIC_MII_KEY]
        meter.charge("resmii", 1)
        meter.charge("recmii", 1)
        mii = MIIResult(res_mii=encoded["res"], rec_mii=encoded["rec"],
                        per_resource={})
    else:
        res_mii, per_resource = compute_res_mii(
            dfg2, part2.compute, units, meter.charger("resmii"))
        rec_mii = compute_rec_mii(dfg2, part2.compute,
                                  meter.charger("recmii"))
        mii = MIIResult(res_mii=res_mii, rec_mii=rec_mii,
                        per_resource=per_resource)
    if not mii.feasible:
        return fail("loop requires a resource class the accelerator lacks")

    # Phase 5: priority.
    priority: Optional[PriorityResult] = None
    if options.use_static_priority and STATIC_PRIORITY_KEY in loop.annotations:
        ranks: dict[int, int] = loop.annotations[STATIC_PRIORITY_KEY]
        effective: dict[int, int] = {}
        for opid in part2.compute:
            op = mapped.op(opid)
            if op.inner:
                member_ranks = [ranks[m.opid] for m in op.inner
                                if m.opid in ranks and ranks[m.opid] >= 0]
                effective[opid] = min(member_ranks) if member_ranks else 0
            else:
                effective[opid] = ranks.get(opid, 10 ** 6)
            meter.charge("priority", 1)  # one load per op (Figure 9(c))
        order = sorted(part2.compute, key=lambda o: (effective[o], o))
        priority = PriorityResult.from_order(order)

    # Phases 5 (dynamic case) + 6: priority and scheduling.  When no
    # static ranks exist, the scheduler recomputes the priority at each
    # candidate II (charged to the priority phase), exactly the work the
    # static encoding is designed to eliminate.
    result = modulo_schedule(
        dfg2, part2.compute, units, config.max_ii,
        priority=priority, priority_kind=options.priority_kind,
        work=meter.charger("scheduling"),
        priority_work=meter.charger("priority"),
        mii_result=mii)
    if isinstance(result, ScheduleFailure):
        return fail(result.reason)
    schedule = result

    # Phase 7: register assignment.
    registers = register_requirements(mapped, dfg2, schedule, part2,
                                      meter.charger("regalloc"))
    if not fits(registers, config.num_int_regs, config.num_fp_regs):
        return fail(f"register demand (int {registers.int_regs}, fp "
                    f"{registers.fp_regs}) exceeds the register files")

    # Modulo variable expansion: place every cross-stage value's
    # copies into physical registers (part of the register-assignment
    # postpass; validated by the rotation tests).
    rotation = assign_physical(mapped, dfg2, schedule, part2)
    meter.charge("regalloc", len(rotation.ranges) + 1)

    image = KernelImage(loop=mapped, dfg=dfg2, partition=part2,
                        schedule=schedule, streams=streams,
                        registers=registers, config=config,
                        rotation=rotation)
    return TranslationResult(loop.name, image, None, meter)

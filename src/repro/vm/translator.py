"""The dynamic loop translator.

Drives the full pipeline of Section 4.1 — schedulability checking,
control/stream separation, CCA mapping, MII calculation, priority
computation, modulo scheduling, register assignment — against a concrete
accelerator, charging every phase's work into a
:class:`~repro.vm.costmodel.TranslationMeter`.

The static/dynamic tradeoffs of Section 4.2 are expressed as
:class:`TranslationOptions`:

* ``use_static_cca`` — consume the Figure 9(b) annotation instead of
  running greedy subgraph identification.
* ``use_static_priority`` — consume the Figure 9(c) ranks instead of
  computing Swing priority.
* ``priority_kind="height"`` — the cheaper height-based function (the
  "Fully Dynamic Height Priority" configuration of Figure 10).

Failures are *typed*: a failed :class:`TranslationResult` carries a
:class:`~repro.errors.TranslationError` subclass in ``failure_reason``
(the human-readable ``failure`` string derives from it), so the runtime
can blacklist, report and recover mechanically instead of parsing
strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.accelerator.config import LAConfig
from repro.accelerator.machine import KernelImage
from repro.analysis.dependence import refine_memory_edges
from repro.analysis.partition import partition_loop
from repro.analysis.schedulability import check_schedulability
from repro.cca.mapper import apply_subgraphs, map_cca
from repro.errors import (
    RegisterPressureError,
    ResourceClassError,
    SchedulabilityError,
    SchedulingError,
    StreamLimitError,
    TranslationBudgetExceeded,
    TranslationError,
)
from repro.ir.dfg import build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import LatencyModel
from repro.isa.annotations import (
    STATIC_CCA_KEY,
    STATIC_MII_KEY,
    STATIC_PRIORITY_KEY,
)
from repro.scheduler.mii import MIIResult, compute_rec_mii, compute_res_mii
from repro.scheduler.priority import PriorityResult
from repro.scheduler.regalloc import fits, register_requirements
from repro.scheduler.rotation import assign_physical
from repro.scheduler.schedule import ModuloSchedule
from repro.scheduler.sms import ScheduleFailure, modulo_schedule
from repro.vm.costmodel import TranslationMeter


@dataclass(frozen=True)
class TranslationOptions:
    """Which phases run dynamically vs. consume static encodings."""

    use_static_cca: bool = False
    use_static_priority: bool = False
    #: Consume statically encoded ResMII/RecMII (the Section 4.2 option
    #: the paper evaluates and REJECTS as too architecture dependent;
    #: kept for the static_tradeoffs experiment).
    use_static_mii: bool = False
    priority_kind: str = "swing"  # "swing" or "height"
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    #: Translation work budget, in meter work units; ``None`` is
    #: unbounded.  A loop whose translation charges more than this
    #: aborts cleanly with :class:`~repro.errors.TranslationBudgetExceeded`
    #: as its failure reason and keeps running on the scalar core.
    work_budget: Optional[int] = None
    #: Optional wall-clock budget (seconds) for one translation.
    deadline_s: Optional[float] = None

    @staticmethod
    def fully_dynamic() -> "TranslationOptions":
        return TranslationOptions()

    @staticmethod
    def fully_dynamic_height() -> "TranslationOptions":
        return TranslationOptions(priority_kind="height")

    @staticmethod
    def hybrid() -> "TranslationOptions":
        """Static CCA + static priority: the paper's recommendation."""
        return TranslationOptions(use_static_cca=True,
                                  use_static_priority=True)


@dataclass
class TranslationResult:
    """Outcome of translating one loop.

    ``failure_reason`` is the typed failure (None on success);
    ``failure`` remains the backward-compatible human-readable string.
    """

    loop_name: str
    image: Optional[KernelImage]
    failure_reason: Optional[TranslationError]
    meter: TranslationMeter

    @property
    def ok(self) -> bool:
        return self.image is not None

    @property
    def failure(self) -> Optional[str]:
        if self.failure_reason is None:
            return None
        return str(self.failure_reason)

    @property
    def failure_kind(self) -> Optional[str]:
        """Stable machine-readable tag of the failure (None on success)."""
        if self.failure_reason is None:
            return None
        return self.failure_reason.kind

    @property
    def instructions(self) -> float:
        return self.meter.total_instructions()


def _translate_pipeline(loop: Loop, config: LAConfig,
                        options: TranslationOptions,
                        meter: TranslationMeter) -> TranslationResult:
    """The translation pipeline proper; raises TranslationError to fail."""
    lat = options.latency_model

    # Phase 1: identification / schedulability.
    dfg = build_dfg(loop, lat, work=meter.charger("identify"))
    report = check_schedulability(
        loop, dfg, work=meter.charger("identify"),
        allow_speculation=config.supports_speculation)
    if not report.ok:
        reasons = "; ".join(report.reasons) or report.category.value
        raise SchedulabilityError(
            f"not modulo schedulable: {reasons}", loop_name=loop.name,
            category=report.category.value, reasons=report.reasons)
    streams = report.streams
    assert streams is not None

    # Phase 2: separate control and memory streams.  With every access
    # proven affine, the conservative memory-ordering edges are refined
    # to exact lattice-test dependences (interleaved store streams stop
    # serialising each other).
    dfg = refine_memory_edges(loop, dfg, streams)
    part = partition_loop(loop, dfg, work=meter.charger("partition"))
    if streams.num_load_streams > config.load_streams:
        raise StreamLimitError(
            f"{streams.num_load_streams} load streams > "
            f"{config.load_streams} supported", loop_name=loop.name,
            stream_kind="load", required=streams.num_load_streams,
            available=config.load_streams)
    if streams.num_store_streams > config.store_streams:
        raise StreamLimitError(
            f"{streams.num_store_streams} store streams > "
            f"{config.store_streams} supported", loop_name=loop.name,
            stream_kind="store", required=streams.num_store_streams,
            available=config.store_streams)

    # Phase 3: CCA mapping.
    mapped = loop
    if config.num_ccas > 0:
        if options.use_static_cca and STATIC_CCA_KEY in loop.annotations:
            mapping = apply_subgraphs(
                loop, loop.annotations[STATIC_CCA_KEY], dfg,
                config=config.cca, candidate_opids=part.compute,
                work=meter.charger("cca"))
        else:
            mapping = map_cca(loop, dfg, config=config.cca,
                              candidate_opids=part.compute,
                              work=meter.charger("cca"))
        mapped = mapping.loop

    if mapped is not loop:
        dfg2 = refine_memory_edges(
            mapped, build_dfg(mapped, lat, work=meter.charger("partition")),
            streams)
        part2 = partition_loop(mapped, dfg2, work=meter.charger("partition"))
    else:
        dfg2, part2 = dfg, part

    # Phase 4: minimum II.
    units = config.units()
    if options.use_static_mii and STATIC_MII_KEY in loop.annotations:
        # "the VM could recover these values with two loads" — but the
        # recovered ResMII reflects the architecture the COMPILER saw.
        encoded = loop.annotations[STATIC_MII_KEY]
        meter.charge("resmii", 1)
        meter.charge("recmii", 1)
        mii = MIIResult(res_mii=encoded["res"], rec_mii=encoded["rec"],
                        per_resource={})
    else:
        res_mii, per_resource = compute_res_mii(
            dfg2, part2.compute, units, meter.charger("resmii"))
        rec_mii = compute_rec_mii(dfg2, part2.compute,
                                  meter.charger("recmii"))
        mii = MIIResult(res_mii=res_mii, rec_mii=rec_mii,
                        per_resource=per_resource)
    if not mii.feasible:
        missing = sorted(rc for rc, v in mii.per_resource.items()
                         if v >= 10 ** 9)
        raise ResourceClassError(
            "loop requires a resource class the accelerator lacks"
            + (f" ({', '.join(missing)})" if missing else ""),
            loop_name=loop.name,
            resource=missing[0] if missing else None)

    # Phase 5: priority.
    priority: Optional[PriorityResult] = None
    if options.use_static_priority and STATIC_PRIORITY_KEY in loop.annotations:
        ranks: dict[int, int] = loop.annotations[STATIC_PRIORITY_KEY]
        effective: dict[int, int] = {}
        for opid in part2.compute:
            op = mapped.op(opid)
            if op.inner:
                member_ranks = [ranks[m.opid] for m in op.inner
                                if m.opid in ranks and ranks[m.opid] >= 0]
                effective[opid] = min(member_ranks) if member_ranks else 0
            else:
                effective[opid] = ranks.get(opid, 10 ** 6)
            meter.charge("priority", 1)  # one load per op (Figure 9(c))
        order = sorted(part2.compute, key=lambda o: (effective[o], o))
        priority = PriorityResult.from_order(order)

    # Phases 5 (dynamic case) + 6: priority and scheduling.  When no
    # static ranks exist, the scheduler recomputes the priority at each
    # candidate II (charged to the priority phase), exactly the work the
    # static encoding is designed to eliminate.
    result = modulo_schedule(
        dfg2, part2.compute, units, config.max_ii,
        priority=priority, priority_kind=options.priority_kind,
        work=meter.charger("scheduling"),
        priority_work=meter.charger("priority"),
        mii_result=mii)
    if isinstance(result, ScheduleFailure):
        raise SchedulingError(result.reason, loop_name=loop.name,
                              schedule_failure=result)
    schedule = result

    # Phase 7: register assignment.
    registers = register_requirements(mapped, dfg2, schedule, part2,
                                      meter.charger("regalloc"))
    if not fits(registers, config.num_int_regs, config.num_fp_regs):
        raise RegisterPressureError(
            f"register demand (int {registers.int_regs}, fp "
            f"{registers.fp_regs}) exceeds the register files",
            loop_name=loop.name,
            int_required=registers.int_regs, fp_required=registers.fp_regs,
            int_available=config.num_int_regs,
            fp_available=config.num_fp_regs)

    # Modulo variable expansion: place every cross-stage value's
    # copies into physical registers (part of the register-assignment
    # postpass; validated by the rotation tests).
    rotation = assign_physical(mapped, dfg2, schedule, part2)
    meter.charge("regalloc", len(rotation.ranges) + 1)

    image = KernelImage(loop=mapped, dfg=dfg2, partition=part2,
                        schedule=schedule, streams=streams,
                        registers=registers, config=config,
                        rotation=rotation)
    return TranslationResult(loop.name, image, None, meter)


def translate_loop(loop: Loop, config: LAConfig,
                   options: TranslationOptions = TranslationOptions()
                   ) -> TranslationResult:
    """Translate *loop* for *config*; never raises on unsupported loops.

    Any failure (unschedulable shape, too many streams, MII above the
    control store, register pressure, a blown translation budget) yields
    ``image=None`` with a typed ``failure_reason``, and the loop simply
    keeps running on the baseline core — exactly the fall-back the
    virtualised interface guarantees.
    """
    meter = TranslationMeter(budget_units=options.work_budget,
                             deadline_s=options.deadline_s)
    try:
        return _translate_pipeline(loop, config, options, meter)
    except TranslationBudgetExceeded as exc:
        exc.loop_name = loop.name
        return TranslationResult(loop.name, None, exc, meter)
    except TranslationError as exc:
        return TranslationResult(loop.name, None, exc, meter)

"""The dynamic loop translator.

Drives the full pipeline of Section 4.1 — schedulability checking,
control/stream separation, CCA mapping, MII calculation, priority
computation, modulo scheduling, register assignment — against a concrete
accelerator, charging every phase's work into a
:class:`~repro.vm.costmodel.TranslationMeter`.

The static/dynamic tradeoffs of Section 4.2 are expressed as
:class:`TranslationOptions`:

* ``use_static_cca`` — consume the Figure 9(b) annotation instead of
  running greedy subgraph identification.
* ``use_static_priority`` — consume the Figure 9(c) ranks instead of
  computing Swing priority.
* ``priority_kind="height"`` — the cheaper height-based function (the
  "Fully Dynamic Height Priority" configuration of Figure 10).

Failures are *typed*: a failed :class:`TranslationResult` carries a
:class:`~repro.errors.TranslationError` subclass in ``failure_reason``
(the human-readable ``failure`` string derives from it), so the runtime
can blacklist, report and recover mechanically instead of parsing
strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro import obs
from repro.accelerator.config import LAConfig
from repro.accelerator.machine import KernelImage
from repro.analysis.dependence import refine_memory_edges
from repro.analysis.partition import partition_loop
from repro.analysis.schedulability import check_schedulability
from repro.cca.mapper import apply_subgraphs, map_cca
from repro.errors import (
    RegisterPressureError,
    ResourceClassError,
    SchedulabilityError,
    SchedulingError,
    StreamLimitError,
    TranslationBudgetExceeded,
    TranslationError,
)
from repro.ir.dfg import build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import LatencyModel
from repro.isa.annotations import (
    STATIC_CCA_KEY,
    STATIC_MII_KEY,
    STATIC_PRIORITY_KEY,
)
from repro.scheduler.mii import (
    FP_UNIT,
    INT_UNIT,
    LOAD_GEN,
    MIIResult,
    STORE_GEN,
    compute_rec_mii,
    compute_res_mii,
    sched_resource,
)
from repro.scheduler.priority import PriorityResult
from repro.scheduler.regalloc import fits, register_requirements
from repro.scheduler.rotation import assign_physical
from repro.scheduler.schedule import ModuloSchedule
from repro.scheduler.sms import ScheduleFailure, modulo_schedule
from repro.vm.costmodel import TranslationMeter


@dataclass(frozen=True)
class TranslationOptions:
    """Which phases run dynamically vs. consume static encodings."""

    use_static_cca: bool = False
    use_static_priority: bool = False
    #: Consume statically encoded ResMII/RecMII (the Section 4.2 option
    #: the paper evaluates and REJECTS as too architecture dependent;
    #: kept for the static_tradeoffs experiment).
    use_static_mii: bool = False
    priority_kind: str = "swing"  # "swing" or "height"
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    #: Translation work budget, in meter work units; ``None`` is
    #: unbounded.  A loop whose translation charges more than this
    #: aborts cleanly with :class:`~repro.errors.TranslationBudgetExceeded`
    #: as its failure reason and keeps running on the scalar core.
    work_budget: Optional[int] = None
    #: Optional wall-clock budget (seconds) for one translation.
    deadline_s: Optional[float] = None

    @staticmethod
    def fully_dynamic() -> "TranslationOptions":
        return TranslationOptions()

    @staticmethod
    def fully_dynamic_height() -> "TranslationOptions":
        return TranslationOptions(priority_kind="height")

    @staticmethod
    def hybrid() -> "TranslationOptions":
        """Static CCA + static priority: the paper's recommendation."""
        return TranslationOptions(use_static_cca=True,
                                  use_static_priority=True)


@dataclass
class TranslationResult:
    """Outcome of translating one loop.

    ``failure_reason`` is the typed failure (None on success);
    ``failure`` remains the backward-compatible human-readable string.
    """

    loop_name: str
    image: Optional[KernelImage]
    failure_reason: Optional[TranslationError]
    meter: TranslationMeter

    @property
    def ok(self) -> bool:
        return self.image is not None

    @property
    def failure(self) -> Optional[str]:
        if self.failure_reason is None:
            return None
        return str(self.failure_reason)

    @property
    def failure_kind(self) -> Optional[str]:
        """Stable machine-readable tag of the failure (None on success)."""
        if self.failure_reason is None:
            return None
        return self.failure_reason.kind

    @property
    def instructions(self) -> float:
        return self.meter.total_instructions()


def _charge_diff(before: dict, meter: TranslationMeter) -> dict:
    """Per-phase units *meter* accumulated since the *before* snapshot."""
    return {phase: units - before.get(phase, 0)
            for phase, units in meter.units.items()
            if units != before.get(phase, 0)}


def _analysis_cacheable(meter: TranslationMeter) -> bool:
    """Whether front-end products may be replayed for this meter.

    Replaying a cached front-end charges each phase's total in one bulk
    :meth:`~repro.vm.costmodel.TranslationMeter.charge` call, which is
    only observationally identical when nothing can fire *mid-phase*: a
    work budget would abort at a different charged total and a deadline
    at a different wall-clock point, so both disable the cache.
    """
    from repro import perf
    return (perf.engine_enabled() and meter.budget_units is None
            and meter.deadline_s is None)


def _front_end(loop: Loop, config: LAConfig, options: TranslationOptions,
               meter: TranslationMeter):
    """Phases 1-2: DFG, schedulability, dependence refinement, partition.

    Everything here reads only the loop, the latency model and the
    config's speculation capability — never unit pools, streams limits,
    register files or max II — so the products (and the exact meter
    charges, including a schedulability rejection) are shared across
    every sweep point that translates the same loop.
    """
    from repro import perf

    lat = options.latency_model
    cache_key = None
    if _analysis_cacheable(meter):
        from repro.perf.digest import digest_of, loop_digest
        cache_key = digest_of("front", loop_digest(loop), lat,
                              config.supports_speculation)
        hit = perf.analysis_cache.get(cache_key)
        if hit is not None:
            outcome, payload, charges = hit
            meter.replay(charges)
            if outcome == "fail":
                raise payload
            return payload

    before = dict(meter.units)
    try:
        # Phase 1: identification / schedulability.
        dfg = build_dfg(loop, lat, work=meter.charger("identify"))
        report = check_schedulability(
            loop, dfg, work=meter.charger("identify"),
            allow_speculation=config.supports_speculation)
        if not report.ok:
            reasons = "; ".join(report.reasons) or report.category.value
            raise SchedulabilityError(
                f"not modulo schedulable: {reasons}", loop_name=loop.name,
                category=report.category.value, reasons=report.reasons)
        streams = report.streams
        assert streams is not None

        # Phase 2: separate control and memory streams.  With every
        # access proven affine, the conservative memory-ordering edges
        # are refined to exact lattice-test dependences (interleaved
        # store streams stop serialising each other).
        dfg = refine_memory_edges(loop, dfg, streams)
        part = partition_loop(loop, dfg, work=meter.charger("partition"))
    except SchedulabilityError as exc:
        if cache_key is not None:
            perf.analysis_cache[cache_key] = \
                ("fail", exc, _charge_diff(before, meter))
        raise
    payload = (dfg, streams, part)
    if cache_key is not None:
        perf.analysis_cache[cache_key] = \
            ("ok", payload, _charge_diff(before, meter))
    return payload


def _cca_map(loop: Loop, dfg, part, streams, config: LAConfig,
             options: TranslationOptions, meter: TranslationMeter):
    """Phase 3: CCA mapping plus the post-mapping re-analysis.

    The mapping reads the CCA *shape* and the compute partition, never
    the CCA *count* (ResMII and the scheduler enforce that later), so
    the mapped loop with its rebuilt DFG/partition is one cached product
    per (loop, latency model, CCA shape, static-mapping mode).
    """
    from repro import perf

    if config.num_ccas <= 0:
        return loop, dfg, part
    lat = options.latency_model
    cache_key = None
    if _analysis_cacheable(meter):
        from repro.perf.digest import digest_of, loop_digest
        cache_key = digest_of("cca", loop_digest(loop), lat, config.cca,
                              options.use_static_cca,
                              config.supports_speculation)
        hit = perf.analysis_cache.get(cache_key)
        if hit is not None:
            payload, charges = hit
            meter.replay(charges)
            return payload

    before = dict(meter.units)
    if options.use_static_cca and STATIC_CCA_KEY in loop.annotations:
        mapping = apply_subgraphs(
            loop, loop.annotations[STATIC_CCA_KEY], dfg,
            config=config.cca, candidate_opids=part.compute,
            work=meter.charger("cca"))
    else:
        mapping = map_cca(loop, dfg, config=config.cca,
                          candidate_opids=part.compute,
                          work=meter.charger("cca"))
    mapped = mapping.loop
    if mapped is not loop:
        dfg2 = refine_memory_edges(
            mapped, build_dfg(mapped, lat, work=meter.charger("partition")),
            streams)
        part2 = partition_loop(mapped, dfg2, work=meter.charger("partition"))
    else:
        dfg2, part2 = dfg, part
    payload = (mapped, dfg2, part2)
    if cache_key is not None:
        perf.analysis_cache[cache_key] = \
            (payload, _charge_diff(before, meter))
    return payload


def _translate_pipeline(loop: Loop, config: LAConfig,
                        options: TranslationOptions,
                        meter: TranslationMeter,
                        capacity_check: bool = True,
                        requirements_hook=None) -> TranslationResult:
    """The translation pipeline proper; raises TranslationError to fail.

    ``capacity_check=False`` skips the register-file ``fits`` comparison
    (the only point where register capacities are read); the cached-core
    path uses it and re-applies the check per caller in
    :func:`_finalize`.  ``requirements_hook`` observes the register
    demand the moment it is computed — before the rotation postpass
    charges the meter — so a capacity failure can later report the
    meter state the reference pipeline would have reported.
    """
    # Phases 1-2 (cached across configs; see _front_end).
    with obs.span("front_end", component="translator", meter=meter,
                  loop=loop.name):
        dfg, streams, part = _front_end(loop, config, options, meter)
    if streams.num_load_streams > config.load_streams:
        raise StreamLimitError(
            f"{streams.num_load_streams} load streams > "
            f"{config.load_streams} supported", loop_name=loop.name,
            stream_kind="load", required=streams.num_load_streams,
            available=config.load_streams)
    if streams.num_store_streams > config.store_streams:
        raise StreamLimitError(
            f"{streams.num_store_streams} store streams > "
            f"{config.store_streams} supported", loop_name=loop.name,
            stream_kind="store", required=streams.num_store_streams,
            available=config.store_streams)

    # Phase 3: CCA mapping (cached across configs; see _cca_map).
    with obs.span("cca_map", component="translator", meter=meter,
                  loop=loop.name):
        mapped, dfg2, part2 = _cca_map(loop, dfg, part, streams, config,
                                       options, meter)

    # Phase 4: minimum II.
    units = config.units()
    with obs.span("mii", component="translator", meter=meter,
                  loop=loop.name):
        if options.use_static_mii and STATIC_MII_KEY in loop.annotations:
            # "the VM could recover these values with two loads" — but the
            # recovered ResMII reflects the architecture the COMPILER saw.
            encoded = loop.annotations[STATIC_MII_KEY]
            meter.charge("resmii", 1)
            meter.charge("recmii", 1)
            mii = MIIResult(res_mii=encoded["res"], rec_mii=encoded["rec"],
                            per_resource={})
        else:
            res_mii, per_resource = compute_res_mii(
                dfg2, part2.compute, units, meter.charger("resmii"))
            rec_mii = compute_rec_mii(dfg2, part2.compute,
                                      meter.charger("recmii"))
            mii = MIIResult(res_mii=res_mii, rec_mii=rec_mii,
                            per_resource=per_resource)
    if not mii.feasible:
        missing = sorted(rc for rc, v in mii.per_resource.items()
                         if v >= 10 ** 9)
        raise ResourceClassError(
            "loop requires a resource class the accelerator lacks"
            + (f" ({', '.join(missing)})" if missing else ""),
            loop_name=loop.name,
            resource=missing[0] if missing else None)

    # Phase 5: priority.
    priority: Optional[PriorityResult] = None
    if options.use_static_priority and STATIC_PRIORITY_KEY in loop.annotations:
        with obs.span("priority_calc", component="translator", meter=meter,
                      loop=loop.name, kind="static"):
            ranks: dict[int, int] = loop.annotations[STATIC_PRIORITY_KEY]
            effective: dict[int, int] = {}
            for opid in part2.compute:
                op = mapped.op(opid)
                if op.inner:
                    member_ranks = [ranks[m.opid] for m in op.inner
                                    if m.opid in ranks and ranks[m.opid] >= 0]
                    effective[opid] = min(member_ranks) if member_ranks else 0
                else:
                    effective[opid] = ranks.get(opid, 10 ** 6)
                meter.charge("priority", 1)  # one load per op (Figure 9(c))
            order = sorted(part2.compute, key=lambda o: (effective[o], o))
            priority = PriorityResult.from_order(order)

    # Phases 5 (dynamic case) + 6: priority and scheduling.  When no
    # static ranks exist, the scheduler recomputes the priority at each
    # candidate II (charged to the priority phase), exactly the work the
    # static encoding is designed to eliminate — the span's meter-unit
    # attribution splits the two phases even though one call does both.
    with obs.span("schedule", component="translator", meter=meter,
                  loop=loop.name, priority_kind=options.priority_kind):
        result = modulo_schedule(
            dfg2, part2.compute, units, config.max_ii,
            priority=priority, priority_kind=options.priority_kind,
            work=meter.charger("scheduling"),
            priority_work=meter.charger("priority"),
            mii_result=mii)
    if isinstance(result, ScheduleFailure):
        raise SchedulingError(result.reason, loop_name=loop.name,
                              schedule_failure=result)
    schedule = result

    # Phase 7: register assignment.
    with obs.span("regalloc", component="translator", meter=meter,
                  loop=loop.name):
        registers = register_requirements(mapped, dfg2, schedule, part2,
                                          meter.charger("regalloc"))
        if requirements_hook is not None:
            requirements_hook(registers)
        if capacity_check and \
                not fits(registers, config.num_int_regs, config.num_fp_regs):
            raise RegisterPressureError(
                f"register demand (int {registers.int_regs}, fp "
                f"{registers.fp_regs}) exceeds the register files",
                loop_name=loop.name,
                int_required=registers.int_regs,
                fp_required=registers.fp_regs,
                int_available=config.num_int_regs,
                fp_available=config.num_fp_regs)

        # Modulo variable expansion: place every cross-stage value's
        # copies into physical registers (part of the register-assignment
        # postpass; validated by the rotation tests).
        rotation = assign_physical(mapped, dfg2, schedule, part2)
        meter.charge("regalloc", len(rotation.ranges) + 1)

    image = KernelImage(loop=mapped, dfg=dfg2, partition=part2,
                        schedule=schedule, streams=streams,
                        registers=registers, config=config,
                        rotation=rotation)
    return TranslationResult(loop.name, image, None, meter)


# -- content-addressed translation caching ------------------------------------
#
# The translation pipeline reads the LAConfig at exactly five points:
# stream-count checks, the unit pools fed to ResMII/scheduling, the CCA
# enable + shape, the max-II scheduling bound, and the final register
# ``fits`` comparison.  Everything else (name, bus latency, code-cache
# size, register capacities) never influences the produced schedule.
# ``_schedule_projection`` therefore maps a config onto its
# *schedule-relevant* canonical form: unit pools are clamped to the
# loop's own demand (a pool at least as large as the op count of its
# class schedules identically to an unbounded one), capacities and
# cosmetic fields are zeroed, and max II is clamped to a per-loop upper
# bound on any achievable II.  Configs that agree under the projection
# provably translate identically — so one cached core run serves the
# infinite-resource baseline and most points of every design-space
# sweep, and *all* points of a register-file sweep.
#
# Two deliberate escape hatches keep this exact rather than heuristic:
#
# * the register-capacity check is re-applied per caller in
#   ``_finalize`` (reproducing the reference pipeline's check order and
#   meter state, including budget blow-ups during rotation);
# * a scheduling failure obtained under a clamped max II does not prove
#   failure at a larger true max II (and its message embeds the bound),
#   so that one outcome triggers an exact-max-II retranslation under
#   its own cache key (``exact_fallbacks`` in the stats).


def _clamp(available: int, demand: int) -> int:
    """Canonical unit-pool size: capped at the loop's own demand."""
    return min(available, max(demand, 1))


def _schedule_projection(loop: Loop, config: LAConfig,
                         options: TranslationOptions
                         ) -> tuple[LAConfig, int]:
    """The schedule-relevant canonical form of *config* for *loop*.

    Returns ``(projected config, ii_bound)`` where ``ii_bound`` is the
    loop's own upper bound on any achievable II — the max-II value that
    behaves as unbounded for this loop.
    """
    lat = options.latency_model
    counts: dict[str, int] = {}
    latency_sum = 0
    stack = list(loop.body)
    while stack:
        op = stack.pop()
        rc = sched_resource(op)
        counts[rc] = counts.get(rc, 0) + 1
        latency_sum += max(int(lat.latency(op.opcode)), 1)
        stack.extend(op.inner)
    loads = counts.get(LOAD_GEN, 0)
    stores = counts.get(STORE_GEN, 0)
    # No schedule of this body can need an II beyond a fully serial
    # one; MII is likewise bounded by it (ResMII by the op count,
    # RecMII by the latency sum), so clamping max_ii here can only
    # convert "success/failure at the true bound" into the identical
    # outcome — except II exhaustion, which _cached_core re-derives.
    ii_bound = latency_sum + len(loop.body) + 8
    projected = config.with_(
        name="core",
        num_int_units=_clamp(config.num_int_units, counts.get(INT_UNIT, 0)),
        num_fp_units=_clamp(config.num_fp_units, counts.get(FP_UNIT, 0)),
        num_ccas=min(config.num_ccas, len(loop.body)),
        num_int_regs=0,
        num_fp_regs=0,
        load_streams=_clamp(config.load_streams, loads),
        store_streams=_clamp(config.store_streams, stores),
        load_addr_gens=_clamp(config.load_addr_gens, loads),
        store_addr_gens=_clamp(config.store_addr_gens, stores),
        max_ii=min(config.max_ii, ii_bound),
        bus_latency=0,
        code_cache_entries=0,
    )
    return projected, ii_bound


def _translate_core(loop: Loop, core_config: LAConfig,
                    options: TranslationOptions):
    """Run the capacity-independent pipeline; package as a CoreEntry."""
    from repro.perf.transcache import CoreEntry, MeterSnapshot

    meter = TranslationMeter(budget_units=options.work_budget)
    entry = CoreEntry(loop_name=loop.name)
    # One increment per *actual* pipeline execution.  Unlike
    # ``translator.translations`` (per call, cache hits included) this
    # is the counter that proves single-flight dedup: N concurrent
    # submissions of one digest must move it by exactly 1.
    obs.inc("translator.core_runs")

    def _on_requirements(registers) -> None:
        entry.requirements = registers
        entry.meter_at_requirements = MeterSnapshot.of(meter)

    try:
        result = _translate_pipeline(loop, core_config, options, meter,
                                     capacity_check=False,
                                     requirements_hook=_on_requirements)
        entry.image = result.image
    except TranslationBudgetExceeded as exc:
        exc.loop_name = loop.name
        entry.failure = exc
    except SchedulingError as exc:
        entry.failure = exc
        entry.ii_exhausted = True
    except TranslationError as exc:
        entry.failure = exc
    entry.meter_final = MeterSnapshot.of(meter)
    return entry


def _cached_core(loop: Loop, config: LAConfig,
                 options: TranslationOptions):
    """Look up (or compute and store) the core entry for this input."""
    from repro import perf
    from repro.perf.digest import digest_of, loop_digest, options_digest

    cache = perf.translation_cache()
    opts_key = options_digest(options)
    core_config, ii_bound = _schedule_projection(loop, config, options)
    key = digest_of("core", loop_digest(loop), core_config, opts_key)
    entry = cache.get(key)
    # Max-II sweep points share one schedule: the candidate-II search
    # tries MII upward and stops at the first feasible II*, so a success
    # under the loop's full II bound with II* within this point's bound
    # is bit-for-bit the run this point would perform (same candidates
    # tried, same charges, same schedule) — and vice versa.  Alias the
    # two keys instead of recomputing; failures are never aliased (a
    # budget abort or II exhaustion depends on where the search stops).
    canon_key = None
    if core_config.max_ii < ii_bound:
        canon_key = digest_of("core", loop_digest(loop),
                              core_config.with_(max_ii=ii_bound), opts_key)
        if entry is None:
            canon = cache.peek(canon_key)
            if canon is not None and canon.image is not None and \
                    canon.image.schedule.ii <= core_config.max_ii:
                entry = canon
                cache.put(key, entry)
                # A core run was avoided: reclassify the recorded miss.
                cache.stats.misses -= 1
                cache.stats.hits += 1
    if entry is None:
        entry = _translate_core(loop, core_config, options)
        cache.put(key, entry)
        if canon_key is not None and entry.image is not None:
            cache.put(canon_key, entry)
    if entry.ii_exhausted and core_config.max_ii < config.max_ii:
        # Exhausting the clamped II window proves nothing about the
        # true control-store depth; re-derive at the exact max II.
        cache.stats.exact_fallbacks += 1
        exact_config = core_config.with_(max_ii=config.max_ii)
        exact_key = digest_of("core", loop_digest(loop), exact_config,
                              opts_key)
        entry = cache.get(exact_key)
        if entry is None:
            entry = _translate_core(loop, exact_config, options)
            cache.put(exact_key, entry)
    if entry.image is not None and \
            getattr(entry.image, "digest", None) is None:
        # Stamp the content-addressed cache key onto the image so the
        # specialization tier can key its compiled-function cache on it.
        entry.image = replace(entry.image, digest=key)
    return entry


def _finalize(loop: Loop, config: LAConfig, entry) -> TranslationResult:
    """Apply the one capacity-dependent step to a cached core entry.

    Reproduces the reference pipeline's ordering: the register-file
    check runs the moment requirements are known, before the rotation
    postpass — so a capacity failure wins over a budget blow-up that
    the core run hit *during* rotation, and reports the meter as of
    the requirements computation.
    """
    if entry.requirements is not None and not fits(
            entry.requirements, config.num_int_regs, config.num_fp_regs):
        registers = entry.requirements
        failure = RegisterPressureError(
            f"register demand (int {registers.int_regs}, fp "
            f"{registers.fp_regs}) exceeds the register files",
            loop_name=loop.name,
            int_required=registers.int_regs, fp_required=registers.fp_regs,
            int_available=config.num_int_regs,
            fp_available=config.num_fp_regs)
        return TranslationResult(loop.name, None, failure,
                                 entry.meter_at_requirements.restore())
    meter = entry.meter_final.restore()
    if entry.failure is not None:
        return TranslationResult(loop.name, None, entry.failure, meter)
    # The core ran against demand-clamped pools, which schedule
    # identically but are *recorded* on the schedule (utilization
    # reporting divides occupancy by them) — rebind both the config and
    # the schedule's unit pools to what the reference pipeline would
    # have recorded for this caller.
    schedule = replace(entry.image.schedule, units=config.units())
    image = replace(entry.image, config=config, schedule=schedule)
    return TranslationResult(loop.name, image, None, meter)


def translation_key(loop: Loop, config: LAConfig,
                    options: TranslationOptions = TranslationOptions()
                    ) -> str:
    """The cache key ``translate_loop`` would use for this input."""
    from repro.perf.digest import digest_of, loop_digest, options_digest
    core_config, _ = _schedule_projection(loop, config, options)
    return digest_of("core", loop_digest(loop), core_config,
                     options_digest(options))


def invalidate_translation(loop: Loop, config: LAConfig,
                           options: TranslationOptions = TranslationOptions()
                           ) -> bool:
    """Drop this input's cached translation (deoptimisation support).

    The entry may be reachable under up to three keys — the clamped
    projection, the canonical full-II-bound alias, and the exact-max-II
    fallback — and a deoptimised image must not survive under any of
    them.
    """
    from repro import perf
    from repro.perf.digest import digest_of, loop_digest, options_digest

    cache = perf.translation_cache()
    opts_key = options_digest(options)
    core_config, ii_bound = _schedule_projection(loop, config, options)
    keys = {digest_of("core", loop_digest(loop), core_config, opts_key)}
    if core_config.max_ii != ii_bound:
        keys.add(digest_of("core", loop_digest(loop),
                           core_config.with_(max_ii=ii_bound), opts_key))
    if core_config.max_ii != config.max_ii:
        keys.add(digest_of("core", loop_digest(loop),
                           core_config.with_(max_ii=config.max_ii),
                           opts_key))
    dropped = [cache.invalidate(k) for k in keys]
    return any(dropped)


def translate_loop(loop: Loop, config: LAConfig,
                   options: TranslationOptions = TranslationOptions()
                   ) -> TranslationResult:
    """Translate *loop* for *config*; never raises on unsupported loops.

    Any failure (unschedulable shape, too many streams, MII above the
    control store, register pressure, a blown translation budget) yields
    ``image=None`` with a typed ``failure_reason``, and the loop simply
    keeps running on the baseline core — exactly the fall-back the
    virtualised interface guarantees.

    When the performance engine is on (the default), results are served
    through the process-wide content-addressed cache: identical
    (loop, schedule-relevant config, options) inputs translate once per
    process — or once per *machine* with the disk layer attached — and
    every VirtualMachine instance shares the products.  A wall-clock
    ``deadline_s`` makes the outcome timing-dependent, so such requests
    bypass the cache entirely.
    """
    from repro import perf
    sp = obs.span("translate", component="translator", loop=loop.name,
                  config=config.name)
    with sp:
        if not perf.engine_enabled() or options.deadline_s is not None:
            meter = TranslationMeter(budget_units=options.work_budget,
                                     deadline_s=options.deadline_s)
            try:
                result = _translate_pipeline(loop, config, options, meter)
            except TranslationBudgetExceeded as exc:
                exc.loop_name = loop.name
                result = TranslationResult(loop.name, None, exc, meter)
            except TranslationError as exc:
                result = TranslationResult(loop.name, None, exc, meter)
        else:
            result = _finalize(loop, config,
                               _cached_core(loop, config, options))
        obs.inc("translator.translations")
        obs.inc("translator.ok" if result.ok
                else f"translator.failed.{result.failure_kind}")
        for phase, units in result.meter.units.items():
            obs.inc(f"translator.units.{phase}", units)
        if sp:
            sp.set(ok=result.ok, failure_kind=result.failure_kind,
                   units=dict(result.meter.units),
                   instructions=result.meter.instructions())
        return result

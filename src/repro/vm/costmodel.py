"""Translation cost accounting.

Figure 8 of the paper reports the measured translation penalty per loop
(in x86 instructions, via OProfile), broken into phases: on average
~99,716 instructions per loop, 69% in priority calculation, 20% in CCA
mapping, with ResMII+RecMII around 1,250 and scheduling + register
assignment about 9,650.

We cannot count x86 instructions, so each translation phase charges
*algorithmic work units* (nodes visited, edges relaxed, MRT slots
probed, set elements scanned) into a :class:`TranslationMeter`.  A
per-phase weight converts work units into modelled instructions; the
weights are calibrated once (see ``DEFAULT_WEIGHTS``) so the suite-wide
*distribution* matches Figure 8.  Because the unit counts come from the
real algorithms, the distribution emerges mechanistically: the Swing
ordering's per-SCC RecMII searches and reachability sweeps naturally
dwarf the single list-scheduling pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TranslationBudgetExceeded

#: Phase names, in pipeline order.
PHASES = (
    "identify",       # loop identification + schedulability checks
    "partition",      # control/memory stream separation
    "cca",            # CCA subgraph identification
    "resmii",         # resource-constrained MII
    "recmii",         # recurrence-constrained MII
    "priority",       # scheduling priority computation
    "scheduling",     # list scheduling into the MRT
    "regalloc",       # register assignment
)

#: Modelled instructions per work unit, per phase.  Calibrated against
#: Figure 8's distribution on the reproduction workload suite (see
#: EXPERIMENTS.md for the calibration numbers).
DEFAULT_WEIGHTS: dict[str, float] = {
    "identify": 2.0,
    "partition": 2.0,
    "cca": 72.0,
    "resmii": 17.0,
    "recmii": 17.0,
    "priority": 149.0,
    "scheduling": 48.0,
    "regalloc": 131.0,
}


@dataclass
class TranslationMeter:
    """Accumulates per-phase work during one loop translation.

    When ``budget_units`` is set the meter doubles as the translation
    *budget* enforcer: the moment the charged total passes the budget,
    :meth:`charge` raises
    :class:`~repro.errors.TranslationBudgetExceeded`, aborting the
    translation mid-phase.  The translator catches it and falls back to
    scalar execution — a pathological loop (e.g. an SMS backtracking
    blow-up over a huge body) costs a bounded amount of VM time instead
    of hanging a sweep.  ``deadline_s`` adds an optional wall-clock
    guard checked on the same path (coarse, since it only triggers on a
    charge, but every phase charges per unit of work).
    """

    units: dict[str, int] = field(default_factory=dict)
    budget_units: Optional[int] = None
    deadline_s: Optional[float] = None
    _total: int = 0
    _started_at: float = field(default_factory=time.monotonic)

    def total_units(self) -> int:
        return self._total

    def charge(self, phase: str, amount: int = 1) -> None:
        if phase not in PHASES:
            raise KeyError(f"unknown translation phase {phase!r}")
        self.units[phase] = self.units.get(phase, 0) + amount
        self._total += amount
        self._enforce(phase, check_deadline=True)

    def _enforce(self, phase: str, check_deadline: bool) -> None:
        """Charge-then-check limit enforcement, in one place.

        Every path that adds units (:meth:`charge`, :meth:`replay`,
        :meth:`merge`) records the units *first* and enforces *after*,
        so an aborted translation's meter still reports everything it
        spent.  ``check_deadline=False`` is the replay/merge exemption:
        units reconstructed from a cache hit (or folded in from another
        meter) consumed no wall clock *now*, and a meter rebuilt for
        replay carries a fresh ``_started_at``, so letting them trip
        ``deadline_s`` would turn a cache hit into a spurious timeout.
        """
        if self.budget_units is not None and self._total > self.budget_units:
            raise TranslationBudgetExceeded(
                f"translation budget of {self.budget_units} work units "
                f"exceeded during the {phase!r} phase "
                f"({self._total} units charged)",
                budget_units=self.budget_units, spent_units=self._total,
                phase=phase)
        if check_deadline and self.deadline_s is not None and \
                time.monotonic() - self._started_at > self.deadline_s:
            raise TranslationBudgetExceeded(
                f"translation wall-clock deadline of {self.deadline_s}s "
                f"exceeded during the {phase!r} phase",
                budget_units=self.budget_units or 0,
                spent_units=self._total, phase=phase)

    def replay(self, charges: dict[str, int]) -> None:
        """Re-apply cached per-phase *charges* exactly.

        Used by the analysis-cache hit paths to reconstruct the meter
        state a cache miss would have produced.  The work budget is
        still enforced (replayed work counts against it identically),
        but the wall-clock deadline is not: the replayed units were
        charged in a previous translation's time, and this meter's
        ``_started_at`` says nothing about when that happened.
        """
        for phase in charges:
            if phase not in PHASES:
                raise KeyError(f"unknown translation phase {phase!r}")
        for phase in PHASES:
            if phase not in charges:
                continue
            amount = charges[phase]
            self.units[phase] = self.units.get(phase, 0) + amount
            self._total += amount
            self._enforce(phase, check_deadline=False)

    def charger(self, phase: str) -> Callable[[int], None]:
        """A callback bound to *phase*, in the shape analyses expect."""
        def _charge(amount: int) -> None:
            self.charge(phase, amount)
        return _charge

    def instructions(self, weights: dict[str, float] | None = None
                     ) -> dict[str, float]:
        """Modelled instruction count per phase."""
        w = DEFAULT_WEIGHTS if weights is None else weights
        return {phase: self.units.get(phase, 0) * w.get(phase, 1.0)
                for phase in PHASES}

    def total_instructions(self, weights: dict[str, float] | None = None
                           ) -> float:
        return sum(self.instructions(weights).values())

    def merge(self, other: "TranslationMeter") -> None:
        """Fold *other*'s charges into this meter.

        Validates phases and enforces ``budget_units`` exactly as
        :meth:`charge` does — a merged meter must not silently exceed
        the budget the charge path enforces, nor carry unknown phases
        that :meth:`instructions` would then silently drop.  Phases
        fold in ``PHASES`` order, so the budget abort (charge-then-
        check: the crossing phase's units are already recorded) is
        deterministic regardless of *other*'s insertion order.  The
        wall-clock deadline is not consulted: the merged units were
        charged against another meter's clock.
        """
        unknown = sorted(set(other.units) - set(PHASES))
        if unknown:
            raise KeyError(
                f"cannot merge meter with unknown translation phase"
                f"{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(p) for p in unknown)}")
        for phase in PHASES:
            if phase not in other.units:
                continue
            units = other.units[phase]
            self.units[phase] = self.units.get(phase, 0) + units
            self._total += units
            self._enforce(phase, check_deadline=False)


def translation_cycles(instructions: float, cpi: float = 1.0) -> float:
    """Cycles the host core spends translating.

    The translator runs on the scalar core; a CPI of 1 on the modelled
    single-issue baseline turns instruction counts into cycles directly.
    """
    return instructions * cpi

"""Memory address-stream detection.

"In this analysis, we define a stream as a unique reference pattern,
i.e., a base address and a linear function that modifies that address
each loop iteration." (Section 3.1.)

The analysis symbolically executes one loop iteration, tracking each
register as a :class:`~repro.analysis.linexpr.LinExpr` over
iteration-start values.  A memory access is streamable when its address
is affine in registers that themselves advance by a constant per
iteration (classic induction variables and self-incrementing pointers
both satisfy this).  Accesses with data-dependent or non-affine
addresses make the loop untranslatable — "If the control and address
patterns are more complicated than supported by the accelerator, then
translation terminates at this point" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.linexpr import LinExpr, Symbol, symbol_of, try_mul
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operand


@dataclass(frozen=True)
class StreamPattern:
    """Canonical reference pattern of one memory access.

    Attributes:
        base: Affine address at the first iteration, in iteration-start
            symbols (array base registers appear symbolically; the VM
            resolves them from the memory-mapped register file at
            invocation).
        stride: Address change per loop iteration.
        is_store: Direction of the stream.
        element_offset: Constant offset operand of the access.
    """

    base: LinExpr
    stride: int
    is_store: bool
    element_offset: int

    def key(self) -> tuple:
        return (self.base, self.stride, self.is_store, self.element_offset)


@dataclass
class StreamAnalysis:
    """Result of stream detection over a loop.

    Attributes:
        patterns: opid -> detected pattern for every memory operation
            (None when the access is not streamable).
        load_streams / store_streams: De-duplicated reference patterns;
            their lengths are what the Figure 4(a) sweep constrains.
        failures: opids of memory ops with unsupported address patterns.
        iv_steps: Per-symbol per-iteration advance for every register
            whose update is affine (step 0 = loop invariant).
    """

    patterns: dict[int, Optional[StreamPattern]]
    load_streams: list[StreamPattern]
    store_streams: list[StreamPattern]
    failures: list[int]
    iv_steps: dict[Symbol, int]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def num_load_streams(self) -> int:
        return len(self.load_streams)

    @property
    def num_store_streams(self) -> int:
        return len(self.store_streams)


def _symbolic_iteration(
    loop: Loop, work: Optional[Callable[[int], None]] = None
) -> tuple[dict[int, Optional[LinExpr]], dict[Symbol, Optional[LinExpr]]]:
    """Symbolically execute one iteration.

    Returns ``(addr_exprs, final_env)`` where ``addr_exprs[opid]`` is the
    affine address of each memory op (or None) and ``final_env`` maps
    each register symbol to its end-of-iteration expression.
    """
    def charge(n: int) -> None:
        if work is not None:
            work(n)

    env: dict[Symbol, Optional[LinExpr]] = {}

    def value(operand: Operand) -> Optional[LinExpr]:
        if isinstance(operand, Imm):
            if isinstance(operand.value, int):
                return LinExpr.constant(operand.value)
            return None
        sym = symbol_of(operand)
        if sym not in env:
            env[sym] = LinExpr.of(operand)  # iteration-start value
        return env[sym]

    addr_exprs: dict[int, Optional[LinExpr]] = {}
    for op in loop.body:
        charge(1)
        if op.is_memory:
            # A predicated access may still be a stream: the address
            # generator advances every iteration and the squashed element
            # is simply dropped, so the predicate does not affect the
            # pattern (only predicated *address computation* does, via
            # the env returning None for conditionally-updated regs).
            base = value(op.srcs[0])
            offset = value(op.srcs[1]) if len(op.srcs) > 1 else LinExpr.constant(0)
            if base is not None and offset is not None:
                addr_exprs[op.opid] = base + offset
            else:
                addr_exprs[op.opid] = None
        result: Optional[LinExpr] = None
        if op.predicate is not None:
            result = None  # conditionally-updated registers are not affine
        elif op.opcode is Opcode.ADD:
            a, b = value(op.srcs[0]), value(op.srcs[1])
            result = a + b if a is not None and b is not None else None
        elif op.opcode is Opcode.SUB:
            a, b = value(op.srcs[0]), value(op.srcs[1])
            result = a - b if a is not None and b is not None else None
        elif op.opcode is Opcode.NEG:
            a = value(op.srcs[0])
            result = a.scaled(-1) if a is not None else None
        elif op.opcode is Opcode.MUL:
            result = try_mul(value(op.srcs[0]), value(op.srcs[1]))
        elif op.opcode is Opcode.SHL:
            a, b = value(op.srcs[0]), value(op.srcs[1])
            if a is not None and b is not None and b.is_constant and \
                    0 <= b.const < 63:
                result = a.shifted_left(b.const)
        elif op.opcode in (Opcode.MOV, Opcode.LDI):
            result = value(op.srcs[0])
        # Every other opcode produces a non-affine value.
        for dest in op.dests:
            env[symbol_of(dest)] = result
    return addr_exprs, env


def analyze_streams(loop: Loop,
                    work: Optional[Callable[[int], None]] = None
                    ) -> StreamAnalysis:
    """Detect the memory streams of *loop*.

    The per-iteration stride of an address ``const + sum(c_i * R_i)`` is
    ``sum(c_i * step_i)`` where ``step_i`` is register ``R_i``'s constant
    per-iteration advance.  If any referenced register does not advance
    by a compile-time constant, the access is not a stream.
    """
    addr_exprs, final_env = _symbolic_iteration(loop, work)

    iv_steps: dict[Symbol, int] = {}
    for sym, expr in final_env.items():
        if expr is None:
            continue
        delta = expr - LinExpr(terms=((sym, 1),))
        if delta.is_constant:
            iv_steps[sym] = delta.const

    patterns: dict[int, Optional[StreamPattern]] = {}
    failures: list[int] = []
    loads: dict[tuple, StreamPattern] = {}
    stores: dict[tuple, StreamPattern] = {}
    for op in loop.body:
        if not op.is_memory:
            continue
        expr = addr_exprs.get(op.opid)
        pattern: Optional[StreamPattern] = None
        if expr is not None:
            stride = 0
            ok = True
            for sym in expr.symbols():
                if sym not in iv_steps:
                    ok = False
                    break
                stride += expr.coefficient(sym) * iv_steps[sym]
            if ok:
                offset = 0
                if len(op.srcs) > 1 and isinstance(op.srcs[1], Imm) and \
                        isinstance(op.srcs[1].value, int):
                    offset = op.srcs[1].value
                pattern = StreamPattern(base=expr, stride=stride,
                                        is_store=op.is_store,
                                        element_offset=offset)
        patterns[op.opid] = pattern
        if pattern is None:
            failures.append(op.opid)
        elif op.is_store:
            stores.setdefault(pattern.key(), pattern)
        else:
            loads.setdefault(pattern.key(), pattern)

    return StreamAnalysis(
        patterns=patterns,
        load_streams=list(loads.values()),
        store_streams=list(stores.values()),
        failures=failures,
        iv_steps=iv_steps,
    )

"""Re-export of the SCC algorithms (kept under :mod:`repro.ir.graphalgo`
to avoid an import cycle: the DFG needs SCCs for recurrence extraction).
"""

from repro.ir.graphalgo import (
    condensation,
    nontrivial_sccs,
    strongly_connected_components,
)

__all__ = ["condensation", "nontrivial_sccs", "strongly_connected_components"]

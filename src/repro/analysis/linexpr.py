"""Symbolic linear expressions over loop registers.

Address-stream detection (Section 2.1: address patterns "typically follow
a simple, deterministic pattern (often based on the loop's induction
variable(s))") needs to decide whether each memory address is an affine
function of iteration-start register values.  :class:`LinExpr` represents
``const + sum(coeff_i * sym_i)`` where each symbol is "the value register
R holds at the start of an iteration".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.ops import Reg

Symbol = tuple[str, str]  # (register space, register name)


def symbol_of(reg: Reg) -> Symbol:
    return (reg.space, reg.name)


@dataclass(frozen=True)
class LinExpr:
    """An affine combination of iteration-start register values."""

    const: int = 0
    terms: tuple[tuple[Symbol, int], ...] = ()

    @staticmethod
    def constant(value: int) -> "LinExpr":
        return LinExpr(const=value)

    @staticmethod
    def of(reg: Reg) -> "LinExpr":
        return LinExpr(terms=((symbol_of(reg), 1),))

    @staticmethod
    def _normalise(terms: dict[Symbol, int]) -> tuple[tuple[Symbol, int], ...]:
        return tuple(sorted((s, c) for s, c in terms.items() if c != 0))

    def _term_dict(self) -> dict[Symbol, int]:
        return dict(self.terms)

    def __add__(self, other: "LinExpr") -> "LinExpr":
        terms = self._term_dict()
        for sym, coeff in other.terms:
            terms[sym] = terms.get(sym, 0) + coeff
        return LinExpr(self.const + other.const, self._normalise(terms))

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scaled(-1)

    def scaled(self, factor: int) -> "LinExpr":
        return LinExpr(self.const * factor,
                       self._normalise({s: c * factor for s, c in self.terms}))

    def shifted_left(self, amount: int) -> "LinExpr":
        return self.scaled(1 << amount)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coefficient(self, sym: Symbol) -> int:
        return dict(self.terms).get(sym, 0)

    def symbols(self) -> set[Symbol]:
        return {s for s, _ in self.terms}

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for (space, name), coeff in self.terms:
            prefix = "" if coeff == 1 else f"{coeff}*"
            parts.append(f"{prefix}%{name}")
        return " + ".join(parts) if parts else "0"


def try_mul(a: Optional[LinExpr], b: Optional[LinExpr]) -> Optional[LinExpr]:
    """Product, defined only when at least one side is constant."""
    if a is None or b is None:
        return None
    if a.is_constant:
        return b.scaled(a.const)
    if b.is_constant:
        return a.scaled(b.const)
    return None

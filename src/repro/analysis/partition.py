"""Separating control and memory streams from loop computation.

Translation step 2 (Section 4.1): "data dependence information is used to
identify the control and address calculations.  These calculations are
then mapped onto the special hardware supporting address generation and
accelerator control."

An operation is *offloadable* to that special hardware when (a) it is an
affine-capable opcode the address generators / loop control unit can
implement, and (b) every use of its results is an address operand, the
loop-back branch's condition, or another offloadable op.  Operations
whose values also feed real computation stay on the function units (the
FU-side copy), while the control hardware independently regenerates the
induction sequence — this mirrors how decoupled address generators
re-derive the access pattern rather than receiving it from the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.dfg import DataflowGraph
from repro.ir.loop import Loop
from repro.ir.opcodes import COMPARE_OPCODES, Opcode
from repro.ir.ops import Reg

#: Opcodes the address generators / loop control hardware can evaluate.
OFFLOADABLE_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.NEG, Opcode.MUL, Opcode.SHL,
    Opcode.MOV, Opcode.LDI,
}) | COMPARE_OPCODES


@dataclass
class LoopPartition:
    """Classification of every op into control / address / compute.

    Attributes:
        control: Ops implemented by the loop control hardware (the
            loop-back branch and the pure induction/compare slice).
        address: Ops implemented by the address generators.
        compute: Ops that occupy FU slots in the modulo schedule —
            including the memory ops themselves, which occupy address
            generator issue slots (the "Mem" columns of Figure 5's
            reservation table).
    """

    control: set[int]
    address: set[int]
    compute: set[int]

    def is_scheduled(self, opid: int) -> bool:
        return opid in self.compute


def _address_positions(loop: Loop) -> dict[int, set[int]]:
    """For each memory op, the indices of its address operands."""
    positions: dict[int, set[int]] = {}
    for op in loop.body:
        if op.is_memory:
            positions[op.opid] = {0, 1} if len(op.srcs) > 1 else {0}
    return positions


def partition_loop(loop: Loop, dfg: DataflowGraph,
                   work: Optional[Callable[[int], None]] = None
                   ) -> LoopPartition:
    """Partition *loop*'s ops into control, address and compute sets.

    Fixed-point over the "offloadable" predicate: start by assuming every
    affine-capable op is offloadable, then demote any op with a use in a
    data position of a non-offloadable consumer, until stable.  Linear in
    practice (at most |ops| demotion rounds, each linear in edges),
    matching the paper's claim that this step is cheap enough to run
    dynamically.
    """
    def charge(n: int) -> None:
        if work is not None:
            work(n)

    addr_pos = _address_positions(loop)
    branch = loop.branch
    branch_id = branch.opid if branch is not None else None

    live_outs = set(loop.live_outs)
    offloadable: set[int] = set()
    for op in loop.body:
        charge(1)
        has_use = any(e.kind == "flow" for e in dfg.out_edges(op.opid))
        if op.opcode in OFFLOADABLE_OPCODES and op.predicate is None and \
                has_use and not any(d in live_outs for d in op.dests):
            offloadable.add(op.opid)

    def use_is_acceptable(consumer_id: int, reg: Reg) -> bool:
        """Is this use of *reg* by *consumer* compatible with offload?"""
        if consumer_id == branch_id:
            return True
        if consumer_id in offloadable:
            return True
        consumer = loop.op(consumer_id)
        if consumer.is_memory:
            positions = addr_pos[consumer_id]
            used_positions = {i for i, s in enumerate(consumer.srcs) if s == reg}
            if consumer.predicate == reg:
                return False  # predicate is a data use
            return used_positions <= positions and bool(used_positions)
        return False

    changed = True
    while changed:
        changed = False
        for op in loop.body:
            if op.opid not in offloadable:
                continue
            ok = True
            # Inputs: the special hardware can only evaluate values it
            # produces itself (induction state, bases, constants).  An
            # op fed by FU-computed data — e.g. a while-loop's exit
            # compare reading a loaded value — must stay on the FUs.
            for edge in dfg.in_edges(op.opid):
                charge(1)
                if edge.kind == "flow" and edge.src not in offloadable:
                    ok = False
                    break
            for edge in dfg.out_edges(op.opid):
                charge(1)
                if edge.kind != "flow":
                    continue
                # Which register flows along this edge? Any dest of op
                # read by the consumer.
                consumer = loop.op(edge.dst)
                for dest in op.dests:
                    if dest in consumer.src_regs() or consumer.predicate == dest:
                        if not use_is_acceptable(edge.dst, dest):
                            ok = False
                            break
                if not ok:
                    break
            if not ok:
                offloadable.discard(op.opid)
                changed = True

    # An offloadable op must actually serve the special hardware: its
    # forward slice (through offloadable ops) must reach a memory
    # address operand or the loop-back branch.  Self-contained cycles
    # that feed neither (e.g. a dead scaling recurrence) stay on the FUs.
    serves: set[int] = set()
    frontier = []
    for op in loop.body:
        if op.opid in offloadable:
            for edge in dfg.out_edges(op.opid):
                if edge.kind != "flow":
                    continue
                if edge.dst == branch_id:
                    serves.add(op.opid)
                    frontier.append(op.opid)
                    break
                consumer = loop.op(edge.dst)
                if consumer.is_memory:
                    serves.add(op.opid)
                    frontier.append(op.opid)
                    break
    while frontier:
        node = frontier.pop()
        for edge in dfg.in_edges(node):
            charge(1)
            if edge.kind == "flow" and edge.src in offloadable and \
                    edge.src not in serves:
                serves.add(edge.src)
                frontier.append(edge.src)
    offloadable &= serves

    control: set[int] = set()
    if branch_id is not None:
        control.add(branch_id)
        # The control slice is the offloadable backward slice from BR.
        frontier = [branch_id]
        while frontier:
            node = frontier.pop()
            for edge in dfg.in_edges(node):
                charge(1)
                if edge.kind != "flow":
                    continue
                if edge.src in offloadable and edge.src not in control:
                    control.add(edge.src)
                    frontier.append(edge.src)

    address = offloadable - control
    compute = {op.opid for op in loop.body} - control - address
    return LoopPartition(control=control, address=address, compute=compute)

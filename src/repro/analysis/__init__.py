"""Loop analyses: SCCs, streams, partitioning, schedulability."""

from repro.analysis.dependence import refine_memory_edges
from repro.analysis.linexpr import LinExpr, Symbol, symbol_of, try_mul
from repro.analysis.partition import (
    LoopPartition,
    OFFLOADABLE_OPCODES,
    partition_loop,
)
from repro.analysis.scc import (
    condensation,
    nontrivial_sccs,
    strongly_connected_components,
)
from repro.analysis.schedulability import (
    LoopCategory,
    SchedulabilityReport,
    check_schedulability,
)
from repro.analysis.streams import (
    StreamAnalysis,
    StreamPattern,
    analyze_streams,
)

__all__ = [
    "LinExpr", "LoopCategory", "LoopPartition", "OFFLOADABLE_OPCODES",
    "SchedulabilityReport", "StreamAnalysis", "StreamPattern", "Symbol",
    "analyze_streams", "check_schedulability", "condensation",
    "nontrivial_sccs", "partition_loop", "refine_memory_edges",
    "strongly_connected_components", "symbol_of", "try_mul",
]

"""Affine memory dependence refinement.

:func:`repro.ir.dfg.build_dfg` must be conservative about memory: any
two same-region accesses with a store get ordering edges at distances
0 and 1, which can manufacture recurrences that do not exist (two
interleaved store streams into one array serialise at II >= 2).

Once stream analysis has proven both accesses affine, the classic 1-D
lattice test gives the *exact* dependence: accesses
``A(k) = C_a + s*k`` and ``B(k) = C_b + s*k`` with equal stride collide
iff ``(C_a - C_b)`` is a multiple of ``s``, and then at exactly one
iteration distance.  Refinement replaces the conservative edge pair
with that exact edge — or with nothing at all when the strides'
residues can never meet.

This mirrors the paper's decoupled-stream assumption from the other
side: instead of *declaring* streams mutually exclusive (Section 2.1's
option), the compiler proves it.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.streams import StreamAnalysis
from repro.ir.dfg import DataflowGraph, Edge
from repro.ir.loop import Loop


def _exact_dependence(pattern_a, pattern_b) -> Optional[tuple[bool, int]]:
    """Exact dependence between two affine access patterns.

    Returns ``None`` when the pair must stay conservative (different
    strides or symbolically different bases), ``(False, 0)`` when the
    accesses provably never touch the same address, and
    ``(True, delta)`` when they collide at iteration distance *delta*
    (B's iteration minus A's iteration).
    """
    if pattern_a is None or pattern_b is None:
        return None
    if pattern_a.stride != pattern_b.stride:
        return None  # 2-D lattice; leave to the conservative edges
    # ``base`` is the full affine address (element offset folded in);
    # identical symbols cancel, leaving the constant address gap.
    diff = pattern_a.base - pattern_b.base
    if not diff.is_constant:
        return None  # bases differ symbolically: cannot subtract
    stride = pattern_a.stride
    if stride == 0:
        # Both hit one fixed address each iteration.
        return (diff.const == 0, 0)
    if diff.const % stride != 0:
        return (False, 0)  # disjoint residue classes: never collide
    return (True, diff.const // stride)


def refine_memory_edges(loop: Loop, dfg: DataflowGraph,
                        streams: StreamAnalysis) -> DataflowGraph:
    """Replace conservative memory edges with exact affine dependences.

    Only edge *pairs* whose two endpoints both have proven stream
    patterns are refined; anything else (non-affine access, declared
    alias groups with differing bases, unequal strides) keeps its
    conservative ordering.  Semantics are preserved by construction —
    the exact edge orders every colliding pair of accesses — and the
    equivalence tests (sequential interpreter vs overlapped executor)
    check it end to end.
    """
    refined: list[Edge] = [e for e in dfg.edges if e.kind != "mem"]
    mem_ops = [op for op in loop.body if op.is_memory]
    index = {op.opid: i for i, op in enumerate(loop.body)}
    for i, a in enumerate(mem_ops):
        for b in mem_ops[i + 1:]:
            if not (a.is_store or b.is_store):
                continue
            had_edge = any(e.kind == "mem" and
                           {e.src, e.dst} == {a.opid, b.opid}
                           for e in dfg.edges)
            if not had_edge:
                continue
            exact = _exact_dependence(streams.patterns.get(a.opid),
                                      streams.patterns.get(b.opid))
            if exact is None:
                # Keep the conservative pair for this op pair.
                refined.extend(e for e in dfg.edges
                               if e.kind == "mem"
                               and {e.src, e.dst} == {a.opid, b.opid})
                continue
            collides, delta = exact
            if not collides:
                continue  # provably disjoint: no ordering needed
            # delta = iteration(b) - iteration(a) at the collision.
            if delta > 0:
                refined.append(Edge(a.opid, b.opid, 1, delta, kind="mem"))
            elif delta < 0:
                refined.append(Edge(b.opid, a.opid, 1, -delta, kind="mem"))
            else:
                # Same iteration: program order decides the direction.
                first, second = ((a, b) if index[a.opid] < index[b.opid]
                                 else (b, a))
                refined.append(Edge(first.opid, second.opid, 1, 0,
                                    kind="mem"))
    return DataflowGraph(loop, refined, dfg.latency_model)

"""Modulo-schedulability classification.

Figure 2 of the paper splits execution time into four categories:

* **modulo schedulable** loops — acceleratable,
* loops needing **speculation support** — while-loops and loops with
  side exits, which the accelerator deliberately does not support
  (Section 2.2),
* **subroutine** loops — loops containing a non-inlinable call,
* **acyclic** code.

This module classifies a single loop structurally; whole-application
coverage combines these with the workload's execution-time profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.streams import StreamAnalysis, analyze_streams
from repro.ir.dfg import DataflowGraph, build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import COMPARE_OPCODES, Opcode
from repro.ir.ops import Reg


class LoopCategory(enum.Enum):
    """Figure 2 execution-time category of a loop."""

    MODULO = "modulo schedulable"
    SPECULATION = "needs speculation support"
    SUBROUTINE = "non-inlinable subroutine call"
    MALFORMED = "not a schedulable loop shape"


@dataclass
class SchedulabilityReport:
    """Outcome of the structural schedulability check.

    ``ok`` is True only for cleanly modulo-schedulable loops.  The
    report is architecture independent; resource-limit checks (too many
    streams, too many ops for the maximum II, not enough registers)
    happen later in the translator against a concrete accelerator
    configuration.
    """

    category: LoopCategory
    reasons: list[str] = field(default_factory=list)
    streams: Optional[StreamAnalysis] = None
    #: True when the loop is schedulable ONLY on hardware with
    #: speculative memory access support (a while-loop whose exit
    #: condition the FUs evaluate each iteration).
    requires_speculation: bool = False

    @property
    def ok(self) -> bool:
        if self.reasons:
            return False
        if self.category is LoopCategory.MODULO:
            return True
        return (self.category is LoopCategory.SPECULATION
                and self.requires_speculation)


def _branch_condition_slice(loop: Loop, dfg: DataflowGraph) -> set[int]:
    """Opids in the backward dependence slice of the loop-back branch."""
    branch = loop.branch
    if branch is None:
        return set()
    slice_ids: set[int] = set()
    frontier = [branch.opid]
    while frontier:
        node = frontier.pop()
        for edge in dfg.in_edges(node):
            if edge.kind != "flow" or edge.distance > 0:
                continue
            if edge.src not in slice_ids:
                slice_ids.add(edge.src)
                frontier.append(edge.src)
    return slice_ids


def check_schedulability(loop: Loop,
                         dfg: Optional[DataflowGraph] = None,
                         work: Optional[Callable[[int], None]] = None,
                         allow_speculation: bool = False
                         ) -> SchedulabilityReport:
    """Classify *loop* per Figure 2 and list any disqualifying features.

    Checks, in order of severity:

    1. Shape: a single loop-back ``BR`` as the final operation; any
       other branch is a side exit (speculation support needed).
    2. Calls: ``CALL`` makes it a subroutine loop; ``BRL`` is permitted
       because it is the procedural-abstraction encoding of a CCA
       subgraph (Figure 9(b)) and can always be unfolded.
    3. While-loop detection: if the branch condition's same-iteration
       dependence slice contains a load or a non-affine computation, the
       trip count is data dependent — a while-loop needing speculative
       memory access support.
    4. Address patterns: every memory access must be a detected stream.
    """
    reasons: list[str] = []
    requires_speculation = False
    if not loop.body:
        return SchedulabilityReport(LoopCategory.MALFORMED, ["empty body"])
    if loop.annotations.get("while_loop"):
        if not allow_speculation:
            return SchedulabilityReport(
                LoopCategory.SPECULATION,
                ["annotated as while-loop (data-dependent trip count)"])
        requires_speculation = True

    branches = [op for op in loop.body if op.opcode in (Opcode.BR, Opcode.JUMP)]
    if not branches or loop.body[-1].opcode is not Opcode.BR:
        return SchedulabilityReport(
            LoopCategory.MALFORMED, ["missing terminal loop-back branch"])
    if len(branches) > 1:
        return SchedulabilityReport(
            LoopCategory.SPECULATION,
            ["side exit: multiple branches in loop body"])

    for op in loop.body:
        if op.opcode is Opcode.CALL:
            return SchedulabilityReport(
                LoopCategory.SUBROUTINE,
                [f"op{op.opid}: non-inlinable call"])

    if dfg is None:
        dfg = build_dfg(loop, work=work)

    cond_slice = _branch_condition_slice(loop, dfg)
    data_dependent_exit = any(loop.op(opid).is_memory
                              for opid in cond_slice)
    if data_dependent_exit:
        if not allow_speculation:
            return SchedulabilityReport(
                LoopCategory.SPECULATION,
                ["branch condition depends on a load (while-loop)"])
        requires_speculation = True
    elif not requires_speculation:
        for opid in cond_slice:
            op = loop.op(opid)
            if op.opcode not in COMPARE_OPCODES and op.opcode not in (
                    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL,
                    Opcode.MOV, Opcode.LDI, Opcode.NEG):
                reasons.append(f"op{opid}: control pattern too complex "
                               f"({op.opcode.value})")

    streams = analyze_streams(loop, work=work)
    for opid in streams.failures:
        reasons.append(f"op{opid}: unsupported (non-affine) address pattern")

    category = (LoopCategory.SPECULATION if requires_speculation
                else LoopCategory.MODULO)
    return SchedulabilityReport(category=category, reasons=reasons,
                                streams=streams,
                                requires_speculation=requires_speculation)

"""The long-running loop-acceleration server.

One :class:`LoopService` per process; many :class:`ServiceSession`
clients.  The control flow per request:

1. **Admission** (caller's thread, synchronous): a closed service
   raises :class:`~repro.errors.ServiceClosed`; a session past its
   translation budget raises
   :class:`~repro.errors.SessionBudgetExceeded`; a full request queue
   raises :class:`~repro.errors.ServiceOverload`.  Every rejection is
   recorded as an incident, so backpressure shows up on the same
   surface as cache corruption and worker losses.
2. **Dispatch**: admitted requests enter one bounded FIFO shared by
   every session, drained by ``workers`` dispatcher threads.
3. **Single-flight dedup** (translate requests): the dispatcher
   computes the content-addressed transcache digest
   (:func:`repro.vm.translator.translation_key`).  The first request
   for a digest is the *leader* and actually translates; concurrent
   duplicates wait for the leader, then finalize from the shared
   translation cache (register-capacity checks are per-request, so a
   follower with a different register file still gets *its* correct
   result — the expensive core pipeline runs once per digest).
4. **Execution**: with ``workers == 1`` requests run in-process — the
   byte-identical serial reference path.  With more, leaders fan out
   to a forked process pool; each pool task ships back its result plus
   the new cache entries and its perf/obs counter deltas, which the
   parent merges exactly like ``parallel_map`` does, so aggregate
   statistics describe the whole run at any worker count.
5. **Drain**: ``close()`` (or leaving the ``with`` block) stops
   admission, lets queued work finish, then joins the threads and
   shuts the pool down — no request is dropped, no temp files orphaned.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs, perf
from repro.errors import (
    AdmissionRejected,
    ServiceClosed,
    SessionBudgetExceeded,
)
from repro.resilience.incidents import record_incident
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.vm.translator import (
    TranslationOptions,
    TranslationResult,
    translate_loop,
    translation_key,
)

_SENTINEL = None


@dataclass(frozen=True)
class ServiceConfig:
    """How a :class:`LoopService` admits and executes work."""

    #: Dispatcher threads, and pool processes when > 1 (1 = in-process
    #: serial execution, the byte-identical reference path).
    workers: int = 1
    #: Bounded request-queue depth; submissions beyond it are rejected
    #: with :class:`~repro.errors.ServiceOverload`.
    queue_depth: int = 64
    #: Default per-session translation budget in meter units
    #: (None = unmetered); ``open_session`` may override per session.
    default_session_budget: Optional[int] = None
    #: How long ``close(drain=True)`` waits for queued work.
    drain_timeout_s: float = 60.0
    #: Optional stack configuration applied at ``start()``.
    settings: Optional[Any] = None
    #: Graded admission control (token buckets, watermark shedding,
    #: cached-work passthrough); see :mod:`repro.service.admission`.
    admission: AdmissionPolicy = AdmissionPolicy()
    #: AOT artifact installed into the translation cache at ``start()``
    #: (before the pool forks, so children inherit the warm entries).
    #: A corrupt/stale file is quarantined and the service boots cold;
    #: a *missing* one raises :class:`~repro.errors.ArtifactError`.
    artifact_path: Optional[str] = None
    #: ``(host, port)`` of a peer shard acting as the fleet's artifact
    #: registry: a local translate miss asks it (``artifact-fetch``)
    #: before paying a cold translation.  Picklable, so a cluster
    #: supervisor can ship it to spawned shard processes.
    registry_addr: Optional[tuple] = None
    #: Frame-auth secret for the registry link (the peer's
    #: ``auth_secret``).
    registry_secret: Optional[str] = None


@dataclass
class ServiceStats:
    """What one service lifetime did, reported by ``close()``."""

    submitted: int = 0
    completed: int = 0
    rejected_overload: int = 0
    rejected_budget: int = 0
    rejected_closed: int = 0
    translated: int = 0
    dedup_hits: int = 0
    drained: bool = True
    #: Admission decision tag -> count (``ok``, ``ok-cached``,
    #: ``queue-full``, ``throttled``, ``shed-low-priority``,
    #: ``saturated``).
    admission: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Request:
    kind: str
    payload: tuple
    session: str
    future: Future = field(default_factory=Future)
    submitted_at: float = 0.0


class ServiceSession:
    """One client's handle on the service.

    Carries the client's accelerator/options context (the same axes as
    :class:`repro.api.Session`) and its admission-control state: the
    translation budget and the meter units charged so far.
    """

    def __init__(self, service: "LoopService", name: str,
                 accelerator=None, options: Optional[TranslationOptions] = None,
                 budget_units: Optional[int] = None,
                 priority: int = 1) -> None:
        from repro.api import _default_accelerator
        self._service = service
        self.name = name
        self.accelerator = (_default_accelerator() if accelerator is None
                            else accelerator)
        self.options = TranslationOptions() if options is None else options
        self.budget_units = budget_units
        self.spent_units = 0
        #: Admission priority: sessions below the policy's shed
        #: threshold are refused first when the queue passes the low
        #: watermark (0 = best-effort, 1 = standard).
        self.priority = priority

    # Each submit returns a concurrent.futures.Future; admission errors
    # raise synchronously in the caller's thread.

    def translate(self, loop, accelerator=None,
                  options: Optional[TranslationOptions] = None) -> Future:
        config = self.accelerator if accelerator is None else accelerator
        opts = self.options if options is None else options
        return self._service._submit(
            _Request("translate", (loop, config, opts), self.name))

    def run_loop(self, loop, scalars: Optional[dict] = None,
                 seed: int = 1234) -> Future:
        return self._service._submit(
            _Request("run_loop",
                     (loop, self.accelerator, self.options, scalars, seed),
                     self.name))

    def run_figure(self, name: str) -> Future:
        return self._service._submit(
            _Request("figure", (name,), self.name))

    def run_suite(self, config=None, benchmarks=None,
                  annotate: bool = False) -> Future:
        return self._service._submit(
            _Request("suite", (config, benchmarks, annotate), self.name))


class LoopService:
    """Multi-session loop-acceleration server (see module docstring)."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.stats = ServiceStats()
        self._queue: queue.Queue = queue.Queue(maxsize=config.queue_depth)
        self._threads: list[threading.Thread] = []
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._accepting = True
        self._started = False
        self._closed = False
        # Single-flight bookkeeping: digest -> Event the leader sets
        # once the shared cache holds the core entry; plus every digest
        # ever completed (late duplicates are dedup hits too).
        self._inflight: dict[str, threading.Event] = {}
        self._done_keys: set[str] = set()
        self._sessions: dict[str, ServiceSession] = {}
        self._admission = AdmissionController(config.admission,
                                              config.queue_depth)
        # Artifact-registry link (lazy; see _registry_fetch).
        self._registry_client = None
        self._registry_lock = threading.Lock()
        self._registry_installed = False
        self._prev_fetcher = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LoopService":
        """Boot the dispatchers (and the process pool when workers > 1).

        Separate from construction so tests and callers may enqueue
        work first: requests submitted before ``start()`` simply wait
        in the bounded queue.
        """
        if self._started:
            return self
        if self.config.settings is not None:
            self.config.settings.apply()
        if self.config.artifact_path:
            # Before the fork: children inherit the adopted entries.
            from repro import aot
            adopted = aot.install(self.config.artifact_path)
            obs.set_gauge("service.artifact_entries", adopted)
        if self.config.workers > 1:
            # Fork *before* the dispatcher threads exist: forking a
            # multithreaded process can deadlock the children.
            import multiprocessing
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_pool_init)
        if self.config.registry_addr is not None:
            # After the fork: pool children must not inherit a live
            # fetcher (their misses ship home as hints instead — see
            # _cache_hints).
            self._prev_fetcher = perf.translation_cache().set_fetcher(
                self._registry_fetch)
            self._registry_installed = True
        self._started = True
        for index in range(self.config.workers):
            thread = threading.Thread(target=self._dispatch_loop,
                                      name=f"repro-service-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def __enter__(self) -> "LoopService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> ServiceStats:
        """Stop admission, optionally drain queued work, shut down.

        With ``drain`` every admitted request completes before the
        dispatchers exit; without it, still-queued requests fail with
        :class:`~repro.errors.ServiceClosed`.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return self.stats
            self._accepting = False
            self._closed = True
        if not drain:
            self._cancel_pending()
        if self._started:
            for _ in self._threads:
                self._queue.put(_SENTINEL)
            deadline = time.monotonic() + self.config.drain_timeout_s
            for thread in self._threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
                if thread.is_alive():
                    self.stats.drained = False
                    record_incident(
                        "service-stall", "service",
                        f"dispatcher {thread.name} still running after "
                        f"{self.config.drain_timeout_s:.0f}s drain window")
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        else:
            self._cancel_pending()
        if self._registry_installed:
            perf.translation_cache().set_fetcher(self._prev_fetcher)
            self._registry_installed = False
            with self._registry_lock:
                client, self._registry_client = \
                    self._registry_client, None
            if client is not None:
                client.close()
        obs.set_gauge("service.queue_depth", 0)
        self.stats.admission = self._admission.stats.as_dict()
        return self.stats

    def _cancel_pending(self) -> None:
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is not _SENTINEL:
                request.future.set_exception(
                    ServiceClosed("service closed before request ran"))

    # -- sessions and admission --------------------------------------------

    def open_session(self, name: Optional[str] = None, accelerator=None,
                     options: Optional[TranslationOptions] = None,
                     budget_units: Optional[int] = None,
                     priority: int = 1) -> ServiceSession:
        with self._lock:
            return self._open_session_locked(
                name, accelerator=accelerator, options=options,
                budget_units=budget_units, priority=priority)

    def _open_session_locked(self, name: Optional[str] = None,
                             accelerator=None,
                             options: Optional[TranslationOptions] = None,
                             budget_units: Optional[int] = None,
                             priority: int = 1) -> ServiceSession:
        if self._closed:
            raise ServiceClosed("service is closed")
        if budget_units is None:
            budget_units = self.config.default_session_budget
        session = ServiceSession(
            self, name or f"session-{len(self._sessions)}",
            accelerator=accelerator, options=options,
            budget_units=budget_units, priority=priority)
        self._sessions[session.name] = session
        return session

    def get_or_open_session(self, name: str, **kwargs) -> ServiceSession:
        """The session named *name*, creating it on first use.

        Reconnecting network clients resume their session by name so
        budget accounting and token-bucket state survive a transport
        failure (the retry/idempotency contract).  Lookup-or-create is
        atomic: two concurrent hellos for the same name get the *same*
        session object, never a silent overwrite that would split
        spent-units accounting and drop the first hello's settings.
        """
        with self._lock:
            existing = self._sessions.get(name)
            if existing is not None:
                return existing
            return self._open_session_locked(name, **kwargs)

    def _submit(self, request: _Request) -> Future:
        with self._lock:
            if not self._accepting:
                self.stats.rejected_closed += 1
                obs.inc("service.rejected.closed")
                raise ServiceClosed("service is not accepting requests")
            session = request.session
            spent, budget = self._session_budget(session)
            if budget is not None and spent >= budget:
                self.stats.rejected_budget += 1
                obs.inc("service.rejected.budget")
                record_incident(
                    "session-budget", "service",
                    f"session {session} spent {spent} of {budget} "
                    f"translation units; request refused",
                    session=session, budget_units=budget, spent_units=spent)
                raise SessionBudgetExceeded(
                    f"session {session} exhausted its translation budget "
                    f"({spent} >= {budget} units)",
                    budget_units=budget, spent_units=spent, session=session)
        priority = self._session_priority(request.session)
        qsize = self._queue.qsize()
        decision = self._admission.admit(
            request.session, priority, qsize,
            is_cached=lambda: self._cached_key(request) is not None,
            queue_full=qsize >= self.config.queue_depth)
        if not decision.admitted:
            self._reject(request, decision)
        request.submitted_at = time.perf_counter()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            # Lost the race for the last physical slot since the check:
            # roll the recorded admission back (and its token) so the
            # request is counted exactly once, as a queue-full reject.
            self._reject(request, self._admission.revise_to_queue_full(
                decision, request.session, self._queue.qsize()))
        with self._lock:
            self.stats.submitted += 1
        obs.inc("service.submitted")
        obs.set_gauge("service.queue_depth", self._queue.qsize())
        return request.future

    def _reject(self, request: _Request, decision) -> None:
        """Record one admission rejection and raise it, with the queue
        depth / session / decision triple on both surfaces so every
        shed request is diagnosable from the incident log alone."""
        with self._lock:
            self.stats.rejected_overload += 1
            self.stats.admission = self._admission.stats.as_dict()
        obs.inc("service.rejected.overload")
        obs.inc(f"service.admission.{decision.decision}")
        record_incident(
            "service-overload", "service",
            f"admission refused {request.kind} from {request.session}: "
            f"{decision.decision} (queue depth {decision.queue_depth}/"
            f"{self.config.queue_depth}, retry after "
            f"{decision.retry_after:.3f}s)",
            session=request.session, request_kind=request.kind,
            queue_depth=decision.queue_depth,
            decision=decision.decision,
            retry_after=decision.retry_after)
        raise AdmissionRejected(
            f"admission refused {request.kind}: {decision.decision} "
            f"(queue depth {decision.queue_depth}, retry after "
            f"{decision.retry_after:.3f}s)",
            decision=decision.decision, retry_after=decision.retry_after,
            session=request.session,
            queue_depth=decision.queue_depth) from None

    def _session_priority(self, name: str) -> int:
        session = self._sessions.get(name)
        return 1 if session is None else session.priority

    def _cached_key(self, request: _Request) -> Optional[str]:
        """The request's transcache digest if already translated.

        Only translate/run_loop requests have one; a digest the
        service has completed (or that the process cache holds) marks
        the request as cheap cached work the degradation ladder admits
        even under saturation.
        """
        if request.kind == "translate":
            loop, config, options = request.payload
        elif request.kind == "run_loop":
            loop, config, options = request.payload[:3]
        else:
            return None
        if config is None:
            return None
        try:
            key = translation_key(loop, config, options)
        except Exception:  # noqa: BLE001 — unkeyable: treat as uncached
            return None
        with self._lock:
            if key in self._done_keys:
                return key
        return key if perf.translation_cache().peek(key) is not None \
            else None

    def _session_budget(self, name: str
                        ) -> tuple[int, Optional[int]]:
        session = self._sessions.get(name)
        if session is None:
            return 0, None
        return session.spent_units, session.budget_units

    # -- artifact registry link --------------------------------------------

    def _registry_fetch(self, key: str):
        """The translation cache's last-resort layer: ask the fleet's
        registry peer for *key* before paying a cold translation.

        Installed via ``TranslationCache.set_fetcher`` when
        ``registry_addr`` is configured.  Never raises: any transport
        trouble (peer down, circuit open, auth mismatch) degrades to a
        local miss — the registry is an optimisation, never a
        correctness dependency.  Serialized under a lock because
        :class:`~repro.service.client.LoopClient` is one socket; cold
        misses are rare enough that the serialization is invisible.
        """
        from repro.perf.transcache import CoreEntry
        with self._registry_lock:
            try:
                client = self._registry_client_locked()
                entry = client.call("artifact-fetch", key,
                                    deadline_s=2.0)
            except Exception:  # noqa: BLE001 — registry is best-effort
                obs.inc("aot.registry_errors")
                return None
        return entry if isinstance(entry, CoreEntry) else None

    def _registry_client_locked(self):
        if self._registry_client is None:
            from repro.service.client import LoopClient, RetryPolicy
            host, port = self.config.registry_addr
            self._registry_client = LoopClient(
                host, port,
                session=f"registry-{os.getpid()}",
                deadline_s=2.0,
                retry=RetryPolicy(attempts=2, attempt_timeout_s=1.0),
                secret=self.config.registry_secret)
        return self._registry_client

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is _SENTINEL:
                return
            obs.set_gauge("service.queue_depth", self._queue.qsize())
            try:
                with obs.span("service.request", component="service",
                              kind=request.kind, session=request.session):
                    result = self._execute(request)
            except BaseException as exc:  # noqa: BLE001 — future carries it
                request.future.set_exception(exc)
            else:
                self._charge(request, result)
                with self._lock:
                    self.stats.completed += 1
                obs.inc("service.completed")
                _observe_latency(request)
                request.future.set_result(result)

    def _charge(self, request: _Request, result) -> None:
        """Post-completion budget accounting.

        Charged *after* execution (translate requests only — they are
        the metered work) so the budget never leaks into
        ``TranslationOptions`` and therefore never perturbs the cache
        digest that cross-session dedup keys on.
        """
        if request.kind != "translate":
            return
        session = self._sessions.get(request.session)
        if session is not None and isinstance(result, TranslationResult):
            with self._lock:
                session.spent_units += result.meter.total_units()

    def _execute(self, request: _Request):
        if request.kind == "translate":
            return self._execute_translate(request)
        if self._pool is not None:
            return self._in_pool(request.kind, request.payload)
        return _execute_local(request.kind, request.payload)

    def _execute_translate(self, request: _Request):
        loop, config, options = request.payload
        key = translation_key(loop, config, options)
        leader = False
        with self._lock:
            if key in self._done_keys:
                event = None          # already translated: cache serve
            elif key in self._inflight:
                event = self._inflight[key]
            else:
                event = self._inflight[key] = threading.Event()
                leader = True
        if leader:
            try:
                if self._pool is not None:
                    result = self._in_pool("translate", request.payload)
                else:
                    result = translate_loop(loop, config, options)
            finally:
                with self._lock:
                    self._done_keys.add(key)
                    self._inflight.pop(key, None).set()
            with self._lock:
                self.stats.translated += 1
            obs.inc("service.translated")
            return result
        if event is not None:
            event.wait()
        # Follower: the shared cache now holds the core entry, so this
        # re-translation is a cache hit plus this request's *own*
        # capacity finalization — correct even when the duplicate asked
        # with a different register file than the leader.
        with self._lock:
            self.stats.dedup_hits += 1
        obs.inc("service.dedup_hits")
        return translate_loop(loop, config, options)

    def _in_pool(self, kind: str, payload: tuple):
        future = self._pool.submit(_pool_task, kind, payload,
                                   self._cache_hints(kind, payload))
        result, entries, perf_delta, obs_delta = future.result()
        cache = perf.translation_cache()
        for key, entry in entries.items():
            cache.seed(key, entry)
        perf.merge_counters(perf_delta)
        obs.merge_metrics(obs_delta)
        return result

    def _cache_hints(self, kind: str, payload: tuple) -> dict:
        """Shared-code-cache entries to ship with a pool request.

        Pool children have their own cache instances; a request whose
        translation the service already holds must not be translated
        again in a cold child — the parent sends the entry along and
        the child seeds it, so the child's lookup is the same cache
        hit the in-process path would take.
        """
        if kind == "run_loop":
            loop, accelerator, options = payload[:3]
        elif kind == "translate":
            loop, accelerator, options = payload
        else:
            return {}
        if accelerator is None:
            return {}
        key = translation_key(loop, accelerator, options)
        cache = perf.translation_cache()
        # Pool children have no registry link (forked before the
        # fetcher installed): pull on their behalf, stats-neutral, so
        # a fleet-warm entry rides the hint instead of re-translating.
        cache.fetch_remote(key)
        entry = cache.peek(key)
        return {} if entry is None else {key: entry}


# -- execution bodies (shared by in-process and pool paths) -------------------

def _execute_local(kind: str, payload: tuple):
    if kind == "translate":
        loop, config, options = payload
        return translate_loop(loop, config, options)
    if kind == "run_loop":
        from repro.cpu.pipeline import ARM11
        from repro.vm.runtime import VMConfig, VirtualMachine
        loop, accelerator, options, scalars, seed = payload
        vm = VirtualMachine(VMConfig(cpu=ARM11, accelerator=accelerator,
                                     options=options))
        return vm.run_loop(loop, scalars=scalars, seed=seed)
    if kind == "figure":
        from repro.experiments.figures import FIGURES
        (name,) = payload
        _description, fn = FIGURES[name]
        return fn()
    if kind == "suite":
        from repro.api import run_suite
        config, benchmarks, annotate = payload
        return run_suite(config, benchmarks=benchmarks, annotate=annotate)
    raise ValueError(f"unknown request kind {kind!r}")


def _pool_init() -> None:
    os.environ[perf.IN_WORKER_ENV] = "1"


def _pool_task(kind: str, payload: tuple, hints: Optional[dict] = None):
    """Top-level (picklable) pool body.

    Seeds the parent's shipped cache ``hints`` first (the shared code
    cache follows the request into the child), then ships home
    everything the parent must merge for aggregate state to match a
    serial run: the result, the cache entries this task newly computed
    (the parent *seeds* them — stats-neutral — so followers and later
    sessions hit them in-process), and the perf/obs counter deltas,
    mirroring ``parallel_map``'s worker accounting.
    """
    cache = perf.translation_cache()
    for key, entry in (hints or {}).items():
        cache.seed(key, entry)
    before_keys = set(cache._entries)
    perf_before = perf.counter_snapshot()
    obs_before = obs.metrics_snapshot()
    result = _execute_local(kind, payload)
    new_entries = {key: cache._entries[key]
                   for key in set(cache._entries) - before_keys}
    return (result, new_entries, perf.counter_delta(perf_before),
            obs.metrics_delta(obs_before))


def _observe_latency(request: _Request) -> None:
    """Power-of-two-bucketed request latency histogram (exact-count
    histograms need bounded cardinality; sub-ms work lands in 1)."""
    elapsed_ms = (time.perf_counter() - request.submitted_at) * 1000.0
    bucket = 1
    while bucket < elapsed_ms and bucket < 1 << 20:
        bucket <<= 1
    obs.observe(f"service.latency_ms.{request.kind}", bucket)

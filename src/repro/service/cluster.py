"""A self-healing sharded cluster of :class:`~repro.service.net.NetServer`.

VEAL's amortization argument scales horizontally only if the shared
translation service survives its own parts failing: a fleet-sized
translation tier is many processes, and any of them can be OOM-killed
mid-request.  This module turns the single-process TCP server of PR 6
into an N-shard cluster with supervised failover:

* **Digest-routed shards** — each shard is a full ``NetServer`` in its
  own *spawned* process, and the content-addressed transcache digest
  (the idempotency key every translate/run_loop request already
  carries) is routed by **rendezvous hashing** over the live shards.
  Rendezvous (highest-random-weight) hashing means the loss of one
  shard remaps only the keys that shard owned; everyone else's cache
  stays warm — exactly the property the amortization argument needs.
* **A versioned shard map** — the supervisor owns the map, pushes it
  to every shard (``map-update`` wire op), and each shard embeds it in
  its ``hello`` responses so clients learn routing on connect.  A
  shard that receives a keyed request it does not own answers with a
  typed :class:`~repro.errors.ShardMovedError` carrying the owner's
  coordinates *and* the current map: one round trip both redirects the
  request and repairs a stale client.
* **Supervised failover** — :class:`ShardSupervisor` health-checks
  every shard with periodic wire-level pings; missed heartbeats (or a
  dead process) escalate to SIGKILL + restart with bounded exponential
  backoff, a new epoch, and a new map version.  Every death, restart
  and rebalance is an incident record (PR 3 JSONL log) and a
  ``cluster.*`` metric.
* **Exactly-once through failure** — :class:`ClusterClient` treats a
  dead shard as a retryable event: it fails over to the next-best live
  shard (telling it ``allow_any`` so the ownership check stands down),
  and because resubmission is by digest into single-flight dedup,
  translation remains exactly-once even when the original shard died
  with the request in flight.

What *is* lost on a shard death: that shard's in-memory translation
cache, admission-bucket state and counters.  Correctness never depends
on any of it — results are recomputed byte-identically — and restarted
shards boot their admission buckets at a conservative
``cold_start_fraction`` so returning sessions cannot stampede a fresh
empty queue (see :mod:`repro.service.admission`).
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro import obs
from repro.errors import ShardMovedError, TransportError
from repro.faults import infra
from repro.resilience.incidents import record_incident
from repro.service import wire
from repro.service.client import (
    LoopClient,
    RetryPolicy,
    idempotency_key_for,
)
from repro.service.net import NetConfig, NetServer
from repro.service.server import ServiceConfig

#: Ops that carry real work (and therefore ownership + kill faults).
_WORK_OPS = ("translate", "run_loop", "figure", "suite")
#: Ops whose routing key is the transcache digest.
_KEYED_OPS = ("translate", "run_loop")


# -- the shard map ------------------------------------------------------------

def rendezvous_score(key: str, shard_id: int) -> int:
    """Highest-random-weight score of (*key*, *shard_id*).

    SHA-256 based so every process — shards, supervisor, clients —
    computes identical routing regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(f"{key}|{shard_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ShardInfo:
    """One shard's coordinates in the map."""

    shard_id: int
    host: str
    port: int
    #: Bumped on every restart; distinguishes incarnations at one id.
    epoch: int = 0
    #: False between a shard's death and its restart: down shards stay
    #: in the map (their identity persists) but receive no routes.
    up: bool = True

    def to_json(self) -> dict:
        return {"shard_id": self.shard_id, "host": self.host,
                "port": self.port, "epoch": self.epoch, "up": self.up}

    @staticmethod
    def from_json(data: dict) -> "ShardInfo":
        return ShardInfo(shard_id=int(data["shard_id"]),
                         host=str(data["host"]), port=int(data["port"]),
                         epoch=int(data.get("epoch", 0)),
                         up=bool(data.get("up", True)))


class ShardMap:
    """A versioned, liveness-aware rendezvous routing table."""

    def __init__(self, version: int,
                 shards: dict[int, ShardInfo]) -> None:
        self.version = version
        self.shards = dict(shards)

    def live(self) -> list[ShardInfo]:
        return [s for s in self.shards.values() if s.up]

    def candidates(self, key: str) -> list[ShardInfo]:
        """Live shards in rendezvous order (owner first) for *key*."""
        return sorted(self.live(),
                      key=lambda s: rendezvous_score(key, s.shard_id),
                      reverse=True)

    def owner(self, key: str) -> Optional[ShardInfo]:
        ranked = self.candidates(key)
        return ranked[0] if ranked else None

    def to_json(self) -> dict:
        return {"version": self.version,
                "shards": [s.to_json() for s in
                           sorted(self.shards.values(),
                                  key=lambda s: s.shard_id)]}

    @staticmethod
    def from_json(data: dict) -> "ShardMap":
        shards = {int(s["shard_id"]): ShardInfo.from_json(s)
                  for s in data.get("shards", [])}
        return ShardMap(int(data.get("version", 0)), shards)


# -- the shard-side router ----------------------------------------------------

class ShardRouter:
    """Installed into a :class:`NetServer` to make it one shard.

    Gets first look at every request (``NetServer._dispatch``): applies
    injected shard faults, absorbs ``map-update`` pushes from the
    supervisor, and enforces digest ownership — a keyed request this
    shard does not own (per its copy of the map) is answered with
    :class:`ShardMovedError` unless the client set ``allow_any`` (its
    explicit failover escape hatch when the owner is unreachable).
    """

    def __init__(self, shard_id: int, epoch: int = 0) -> None:
        self.shard_id = shard_id
        self.epoch = epoch
        self.map: Optional[ShardMap] = None
        self._hung_until = 0.0

    def hello_info(self) -> dict:
        return {"shard_id": self.shard_id, "epoch": self.epoch,
                "map": self.map.to_json() if self.map else None}

    def describe(self) -> dict:
        return {"shard_id": self.shard_id, "epoch": self.epoch,
                "map_version": self.map.version if self.map else None}

    def apply_map(self, data: Optional[dict]) -> None:
        if not data:
            return
        new = ShardMap.from_json(data)
        if self.map is None or new.version > self.map.version:
            self.map = new
            obs.set_gauge("cluster.shard.map_version", new.version)

    async def intercept(self, op: str,
                        message: dict) -> Optional[dict]:
        """First look at a request; a dict response short-circuits."""
        req_id = message.get("id")
        await self._maybe_hang_or_die(op)
        if op == "map-update":
            self.apply_map(wire.unpack_body(message.get("body")))
            obs.inc("cluster.shard.map_updates")
            return wire.ok_response(req_id, {
                "shard_id": self.shard_id,
                "map_version": self.map.version if self.map else None})
        key = message.get("idempotency_key")
        if (key and op in _KEYED_OPS and self.map is not None
                and not message.get("allow_any")):
            owner = self.map.owner(key)
            if owner is not None and owner.shard_id != self.shard_id:
                obs.inc("cluster.shard.moved")
                raise ShardMovedError(
                    f"digest {key[:12]}… is owned by shard "
                    f"{owner.shard_id} ({owner.host}:{owner.port}), "
                    f"not shard {self.shard_id}",
                    shard_id=self.shard_id, owner_id=owner.shard_id,
                    owner_host=owner.host, owner_port=owner.port,
                    shard_map=self.map.to_json())
        return None

    async def _maybe_hang_or_die(self, op: str) -> None:
        """Apply armed SHARD_HANG / SHARD_KILL faults to this request."""
        spec = infra.claim_shard_fault(infra.InfraFaultMode.SHARD_HANG,
                                       self.shard_id)
        if spec is not None:
            delay = spec.delay_s or 30.0
            self._hung_until = time.monotonic() + delay
            record_incident(
                "shard-hang", "clusterfault",
                f"injected shard-hang on shard {self.shard_id}: all "
                f"responses stalled {delay:.1f}s ({spec.token})",
                token=spec.token, shard=self.shard_id, op=op)
        if self._hung_until > time.monotonic():
            # Stall (cooperatively, per request) until the hang lapses
            # — in practice the supervisor's missed-heartbeat
            # escalation SIGKILLs this process long before that.
            await asyncio.sleep(self._hung_until - time.monotonic())
        if op in _WORK_OPS:
            spec = infra.claim_shard_fault(
                infra.InfraFaultMode.SHARD_KILL, self.shard_id)
            if spec is not None:
                record_incident(
                    "shard-kill", "clusterfault",
                    f"injected SIGKILL on shard {self.shard_id} "
                    f"mid-{op} ({spec.token})",
                    token=spec.token, shard=self.shard_id, op=op)
                os.kill(os.getpid(), signal.SIGKILL)


# -- the shard process --------------------------------------------------------

def _shard_main(shard_id: int, epoch: int, config: NetConfig,
                conn) -> None:
    """Entry point of one spawned shard process.

    Reports ``{"ok": True, "port": ...}`` (or the boot failure) back
    through *conn*, then serves until SIGTERM.  The incident-log sink
    and the chaos spec-file path arrive through the environment, so
    shard-side faults land in the same JSONL log the parent reads.
    """
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_args: stop.set())
    try:
        spec = infra.claim_shard_fault(
            infra.InfraFaultMode.SHARD_SLOW_START, shard_id)
        if spec is not None:
            delay = spec.delay_s or 1.0
            record_incident(
                "shard-slow-start", "clusterfault",
                f"injected slow start on shard {shard_id} epoch "
                f"{epoch}: bind delayed {delay:.1f}s ({spec.token})",
                token=spec.token, shard=shard_id, epoch=epoch)
            time.sleep(delay)
        router = ShardRouter(shard_id, epoch)
        server = NetServer(config, router=router)
        server.start()
    except BaseException as exc:  # noqa: BLE001 — reported to parent
        try:
            conn.send({"ok": False,
                       "error": f"{type(exc).__name__}: {exc}"})
        finally:
            conn.close()
        return
    try:
        conn.send({"ok": True, "port": server.port,
                   "pid": os.getpid()})
    finally:
        conn.close()
    stop.wait()
    server.stop(drain=True)


# -- the supervisor -----------------------------------------------------------

@dataclass(frozen=True)
class ClusterConfig:
    """How the supervisor runs and heals its shard fleet."""

    shards: int = 2
    host: str = "127.0.0.1"
    #: Propagated to every shard (wire HMAC) and to every control
    #: connection the supervisor itself opens.
    auth_secret: Optional[str] = None
    #: Per-shard service configuration.  ``workers`` is forced to 1:
    #: shards are daemonic processes (guaranteed reaping) and may not
    #: fork a pool of their own — the cluster *is* the fan-out.
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Health-check cadence and per-ping response budget.
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 0.75
    #: Consecutive missed pings that escalate to SIGKILL + restart.
    missed_heartbeats: int = 3
    #: Restart backoff: ``base * 2**consecutive_restarts``, capped.
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 2.0
    #: Healthy pings that reset the consecutive-restart counter.
    healthy_streak: int = 4
    #: How long a spawned shard may take to report its port (covers
    #: injected slow starts).
    start_timeout_s: float = 60.0
    #: Admission-bucket fill fraction for *restarted* shards — the
    #: conservative cold start that prevents a thundering-herd admit
    #: after bucket state died with the old process.
    cold_start_fraction: float = 0.25
    #: Give every spawned shard a live peer as its artifact registry
    #: (``ServiceConfig.registry_addr``): a freshly (re)started shard
    #: pulls fleet-warm translations over ``artifact-fetch`` instead of
    #: paying cold translation.  Opt out for strict per-shard isolation
    #: experiments.
    registry: bool = True


class _ShardHandle:
    """Supervisor-side state for one shard id across incarnations."""

    def __init__(self, info: ShardInfo, process) -> None:
        self.info = info
        self.process = process
        self.client: Optional[LoopClient] = None
        self.misses = 0
        self.healthy = 0
        self.consecutive_restarts = 0
        self.retry_at = 0.0  # monotonic; when a down shard may restart


class ShardSupervisor:
    """Spawns, health-checks, and restarts the shard fleet.

    The supervisor owns the shard map.  Every change — a shard marked
    down, a shard restarted at a new port/epoch — bumps the version and
    is pushed to every live shard, so ownership checks and the
    ``hello``/``shard-moved`` envelopes clients learn routing from stay
    current.  All spawns use the *spawn* start method: the supervisor
    restarts shards from its health thread, and forking a
    multi-threaded parent would inherit held locks.
    """

    def __init__(self, config: ClusterConfig = ClusterConfig()) -> None:
        if config.shards < 1:
            raise ValueError(f"need at least 1 shard, got "
                             f"{config.shards}")
        self.config = config
        self._ctx = multiprocessing.get_context("spawn")
        self._shards: dict[int, _ShardHandle] = {}
        self._all_processes: list = []
        self._map_version = 0
        self._map_lock = threading.Lock()
        self._stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        if self._started:
            return self
        self._started = True
        self._ensure_importable()
        for shard_id in range(self.config.shards):
            # Sequential boot fills self._shards as it goes, so every
            # shard after the first gets an already-live peer as its
            # artifact registry.
            info, process = self._spawn(
                shard_id, epoch=0, cold=False,
                registry_addr=self._registry_peer(shard_id))
            self._shards[shard_id] = _ShardHandle(info, process)
        self._bump_and_push("cluster booted")
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-shard-supervisor",
            daemon=True)
        self._health_thread.start()
        return self

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop health-checking, terminate every shard, reap them all.

        Guarantees zero orphans: SIGTERM first (clean drain), SIGKILL
        any straggler, and join every process ever spawned — including
        long-dead incarnations — so nothing is left unreaped.
        """
        if self._stopped:
            return
        self._stopped = True
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=30.0)
        for handle in self._shards.values():
            if handle.client is not None:
                handle.client.close()
                handle.client = None
            if handle.process.is_alive():
                handle.process.terminate()  # SIGTERM: drain and exit
        deadline = time.monotonic() + 15.0
        for process in self._all_processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)

    def orphan_pids(self) -> list[int]:
        """PIDs of spawned shard processes still alive (0 expected
        after ``stop()``)."""
        return [p.pid for p in self._all_processes
                if p.pid is not None and p.is_alive()]

    # -- observation -------------------------------------------------------

    @property
    def map(self) -> ShardMap:
        with self._map_lock:
            return ShardMap(self._map_version,
                            {i: h.info for i, h in self._shards.items()})

    def seed_address(self) -> tuple[str, int]:
        """(host, port) of a live shard — a client's entry point."""
        for handle in self._shards.values():
            if handle.info.up:
                return handle.info.host, handle.info.port
        raise TransportError("no live shard to connect to")

    def shard_stats(self) -> dict[int, dict]:
        """Per-shard ``stats`` snapshots (live shards only).

        This is the fleet-wide accounting surface: summing
        ``counters["translator.core_runs"]`` across shards is how the
        cluster chaos campaign proves exactly-once translation.
        """
        snapshots: dict[int, dict] = {}
        for shard_id, handle in sorted(self._shards.items()):
            if not handle.info.up:
                continue
            # A transient client per scrape: the persistent control
            # client belongs to the health thread, and LoopClient is
            # not thread-safe.
            client = LoopClient(handle.info.host, handle.info.port,
                                session="cluster-supervisor-stats",
                                secret=self.config.auth_secret,
                                retry=RetryPolicy(attempts=2))
            try:
                snapshots[shard_id] = client.call(
                    "stats", deadline_s=10.0)
            except Exception:  # noqa: BLE001 — a dying shard: skip
                continue
            finally:
                client.close()
        return snapshots

    def _converged(self) -> bool:
        # A shard only counts as converged when the *process* is alive,
        # not merely when the map says up: a freshly SIGKILLed shard
        # stays "up" in the map until the health loop notices.
        return all(h.info.up and h.process.is_alive()
                   for h in self._shards.values())

    def wait_converged(self, timeout_s: float = 30.0) -> bool:
        """Block until every shard is up (True) or timeout (False)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._converged():
                return True
            time.sleep(0.05)
        return self._converged()

    def kill_shard(self, shard_id: int) -> int:
        """SIGKILL one shard (campaign/test hook); returns its pid."""
        handle = self._shards[shard_id]
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # -- spawning ----------------------------------------------------------

    def _ensure_importable(self) -> None:
        """Make ``repro`` importable in spawned children.

        Spawn re-imports the package from scratch; when the parent got
        ``repro`` from a path not on ``PYTHONPATH`` (pytest inserting
        ``src/`` into ``sys.path``), the children need the hint.
        """
        import repro
        pkg_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        existing = os.environ.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else ""))

    def _registry_peer(self, shard_id: int) -> Optional[tuple]:
        """A live peer's (host, port) for *shard_id*'s registry link."""
        if not self.config.registry:
            return None
        for sid in sorted(self._shards):
            handle = self._shards[sid]
            if sid != shard_id and handle.info.up:
                return (handle.info.host, handle.info.port)
        return None

    def _shard_config(self, cold: bool, port: int = 0,
                      registry_addr: Optional[tuple] = None) -> NetConfig:
        service = replace(self.config.service, workers=1)
        if cold:
            service = replace(service, admission=replace(
                service.admission,
                cold_start_fraction=self.config.cold_start_fraction))
        if registry_addr is not None:
            service = replace(
                service, registry_addr=registry_addr,
                registry_secret=self.config.auth_secret)
        return NetConfig(host=self.config.host, port=port,
                         auth_secret=self.config.auth_secret,
                         service=service)

    def _spawn(self, shard_id: int, epoch: int, cold: bool,
               port: int = 0, registry_addr: Optional[tuple] = None
               ) -> tuple[ShardInfo, Any]:
        """Spawn one shard incarnation; returns its info + process."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_shard_main,
            args=(shard_id, epoch,
                  self._shard_config(cold, port, registry_addr),
                  child_conn),
            name=f"repro-shard-{shard_id}.{epoch}", daemon=True)
        process.start()
        child_conn.close()
        self._all_processes.append(process)
        try:
            if not parent_conn.poll(self.config.start_timeout_s):
                raise TransportError(
                    f"shard {shard_id} epoch {epoch} did not report a "
                    f"port within {self.config.start_timeout_s:.0f}s")
            report = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.kill()
            process.join(timeout=5.0)
            raise TransportError(
                f"shard {shard_id} epoch {epoch} died while booting: "
                f"{exc}") from None
        finally:
            parent_conn.close()
        if not report.get("ok"):
            process.join(timeout=5.0)
            raise TransportError(
                f"shard {shard_id} epoch {epoch} failed to boot: "
                f"{report.get('error')}")
        info = ShardInfo(shard_id=shard_id, host=self.config.host,
                         port=int(report["port"]), epoch=epoch, up=True)
        return info, process

    def _control_client(self, handle: _ShardHandle) -> LoopClient:
        """The supervisor's own connection to one shard incarnation."""
        if handle.client is None:
            handle.client = LoopClient(
                handle.info.host, handle.info.port,
                session="cluster-supervisor",
                secret=self.config.auth_secret,
                deadline_s=self.config.heartbeat_timeout_s,
                retry=RetryPolicy(
                    attempts=1,
                    attempt_timeout_s=self.config.heartbeat_timeout_s,
                    # The health loop is the escalation authority; a
                    # breaker failing pings fast would usurp it.
                    breaker_threshold=1 << 30))
        return handle.client

    # -- map management ----------------------------------------------------

    def _bump_and_push(self, why: str) -> None:
        """Bump the map version and push it to every live shard."""
        with self._map_lock:
            self._map_version += 1
            version = self._map_version
        current = self.map
        obs.set_gauge("cluster.map_version", version)
        record_incident(
            "cluster-rebalance", "cluster",
            f"shard map v{version}: {why} "
            f"({sum(1 for s in current.shards.values() if s.up)}/"
            f"{len(current.shards)} shards up)",
            map_version=version,
            up=[s.shard_id for s in current.live()])
        payload = current.to_json()
        for handle in self._shards.values():
            if not handle.info.up:
                continue
            try:
                self._control_client(handle).call(
                    "map-update", payload, deadline_s=5.0)
            except Exception:  # noqa: BLE001 — dead shard: the health
                pass           # loop will notice and re-push on restart

    # -- health checking and healing ---------------------------------------

    def _health_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._stop.wait(interval):
            for shard_id in list(self._shards):
                if self._stop.is_set():
                    return
                handle = self._shards[shard_id]
                if not handle.info.up:
                    if (time.monotonic() >= handle.retry_at
                            and not self._stop.is_set()):
                        self._restart(handle)
                    continue
                if not handle.process.is_alive():
                    self._escalate(handle, "process exited")
                    continue
                try:
                    self._control_client(handle).ping(
                        deadline_s=self.config.heartbeat_timeout_s)
                except Exception as exc:  # noqa: BLE001 — any miss
                    handle.misses += 1
                    handle.healthy = 0
                    obs.inc("cluster.heartbeat_misses")
                    if handle.misses >= self.config.missed_heartbeats:
                        self._escalate(
                            handle,
                            f"{handle.misses} consecutive missed "
                            f"heartbeats ({type(exc).__name__})")
                else:
                    handle.misses = 0
                    handle.healthy += 1
                    if handle.healthy >= self.config.healthy_streak:
                        handle.consecutive_restarts = 0

    def _escalate(self, handle: _ShardHandle, why: str) -> None:
        """A shard is dead or unresponsive: SIGKILL, mark down, push."""
        info = handle.info
        obs.inc("cluster.shard_deaths")
        record_incident(
            "shard-death", "cluster",
            f"shard {info.shard_id} epoch {info.epoch} "
            f"({info.host}:{info.port}) escalated: {why}; SIGKILL + "
            f"restart with backoff",
            shard=info.shard_id, epoch=info.epoch, reason=why)
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=10.0)
        if handle.client is not None:
            handle.client.close()
            handle.client = None
        handle.misses = 0
        handle.healthy = 0
        backoff = min(self.config.restart_backoff_max_s,
                      self.config.restart_backoff_s
                      * (2 ** handle.consecutive_restarts))
        handle.consecutive_restarts += 1
        handle.retry_at = time.monotonic() + backoff
        handle.info = replace(info, up=False)
        self._bump_and_push(
            f"shard {info.shard_id} down ({why}); restart in "
            f"{backoff:.2f}s")

    def _restart(self, handle: _ShardHandle) -> None:
        """Bring a down shard back (new epoch, cold buckets).

        The restart *reuses the shard's port*: a stranded client whose
        every known address died while it was away can reconnect to the
        same coordinates once the shard is back — a shard's address is
        part of its identity.  Only if that bind is lost (another
        process claimed the port meanwhile) does the shard move to a
        fresh port, which the map push then advertises.
        """
        shard_id = handle.info.shard_id
        epoch = handle.info.epoch + 1
        # The restarted shard's registry peer: any live sibling — the
        # fleet-warm cache that makes this restart's translations pulls
        # instead of cold re-runs (the down shard is excluded by its
        # own up=False).
        registry_addr = self._registry_peer(shard_id)
        try:
            try:
                info, process = self._spawn(
                    shard_id, epoch, cold=True, port=handle.info.port,
                    registry_addr=registry_addr)
            except TransportError:
                info, process = self._spawn(shard_id, epoch, cold=True,
                                            registry_addr=registry_addr)
        except TransportError as exc:
            backoff = min(self.config.restart_backoff_max_s,
                          self.config.restart_backoff_s
                          * (2 ** handle.consecutive_restarts))
            handle.consecutive_restarts += 1
            handle.retry_at = time.monotonic() + backoff
            record_incident(
                "shard-restart-failed", "cluster",
                f"shard {shard_id} epoch {epoch} failed to restart "
                f"({exc}); next attempt in {backoff:.2f}s",
                shard=shard_id, epoch=epoch)
            return
        handle.info = info
        handle.process = process
        obs.inc("cluster.shard_restarts")
        record_incident(
            "shard-restart", "cluster",
            f"shard {shard_id} restarted as epoch {epoch} on "
            f"{info.host}:{info.port} (admission buckets cold-started "
            f"at {self.config.cold_start_fraction:.0%})",
            shard=shard_id, epoch=epoch, port=info.port)
        self._bump_and_push(f"shard {shard_id} back up (epoch {epoch})")


# -- the failover client ------------------------------------------------------

@dataclass
class ClusterClientStats:
    """What one cluster-client lifetime saw across all shards."""

    failovers: int = 0
    moved: int = 0
    map_updates: int = 0
    map_stale_drops: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class ClusterClient:
    """A shard-map-aware, failing-over front end over ``LoopClient``.

    Routing: requests that carry a transcache digest go to the digest's
    rendezvous owner; a ``shard-moved`` answer refreshes the map and
    re-resolves; a transport failure marks the shard suspect and fails
    over to the next-best live shard with ``allow_any`` set (the
    explicit "owner is unreachable" escape hatch).  Idempotent
    resubmission by digest makes the failover exactly-once: whichever
    shard ends up serving the request dedups into single-flight.

    One ``secret`` covers every shard connection the client opens —
    shards learned from the map inherit it, so wire auth is uniform
    across the fleet.
    """

    def __init__(self, host: str, port: int, *,
                 session: Optional[str] = None, priority: int = 1,
                 budget_units: Optional[int] = None,
                 deadline_s: float = 60.0,
                 secret: Optional[str] = None, seed: int = 0,
                 shard_retry: Optional[RetryPolicy] = None,
                 suspect_ttl_s: float = 2.0) -> None:
        self._seed_addr = (host, port)
        self.session = session or f"cluster-{port}"
        self.priority = priority
        self.budget_units = budget_units
        self.deadline_s = deadline_s
        self._secret = secret
        self._seed = seed
        #: Per-shard policy: fail fast and let failover do the healing
        #: (the per-shard breaker never usurps cluster-level routing).
        self.shard_retry = shard_retry or RetryPolicy(
            attempts=2, base_delay_s=0.02, max_delay_s=0.2,
            attempt_timeout_s=10.0, breaker_threshold=1 << 30)
        self.suspect_ttl_s = suspect_ttl_s
        self.stats = ClusterClientStats()
        self._map: Optional[ShardMap] = None
        self._clients: dict[tuple[str, int], LoopClient] = {}
        self._suspect: dict[int, float] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- the session-shaped API -------------------------------------------

    def ping(self, deadline_s: Optional[float] = None) -> bool:
        return bool(self._call("ping", None, key=None,
                               deadline_s=deadline_s).get("pong"))

    def translate(self, loop, accelerator=None, options=None,
                  deadline_s: Optional[float] = None):
        return self._call(
            "translate", (loop, accelerator, options),
            key=idempotency_key_for(loop, accelerator, options),
            deadline_s=deadline_s)

    def run_loop(self, loop, scalars: Optional[dict] = None,
                 seed: int = 1234,
                 deadline_s: Optional[float] = None):
        return self._call(
            "run_loop", (loop, scalars, seed),
            key=idempotency_key_for(loop),
            deadline_s=deadline_s)

    def run_figure(self, name: str,
                   deadline_s: Optional[float] = None,
                   attempt_timeout_s: Optional[float] = None) -> str:
        return self._call("figure", name, key=None,
                          deadline_s=deadline_s,
                          attempt_timeout_s=attempt_timeout_s)

    def run_suite(self, config=None, benchmarks=None,
                  annotate: bool = False,
                  deadline_s: Optional[float] = None,
                  attempt_timeout_s: Optional[float] = None):
        return self._call("suite", (config, benchmarks, annotate),
                          key=None, deadline_s=deadline_s,
                          attempt_timeout_s=attempt_timeout_s)

    def close(self) -> ClusterClientStats:
        self._closed = True
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            client.close()
        return self.stats

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observation -------------------------------------------------------

    @property
    def shard_map(self) -> Optional[ShardMap]:
        return self._map

    def client_stats(self) -> dict:
        """Aggregated per-shard ``ClientStats`` plus cluster counters."""
        totals = {"requests": 0, "retries": 0, "admission_retries": 0,
                  "reconnects": 0, "protocol_errors": 0}
        latencies: list[float] = []
        with self._lock:
            clients = list(self._clients.values())
        for client in clients:
            for name in totals:
                totals[name] += getattr(client.stats, name)
            latencies.extend(client.stats.latencies_ms)
        totals["latencies_ms"] = latencies
        totals["cluster"] = self.stats.as_dict()
        return totals

    # -- routing -----------------------------------------------------------

    def connect(self) -> "ClusterClient":
        """Learn the shard map from any reachable shard's hello."""
        self._refresh_map()
        return self

    def _client_for(self, addr: tuple[str, int]) -> LoopClient:
        with self._lock:
            client = self._clients.get(addr)
            if client is None:
                client = self._clients[addr] = LoopClient(
                    addr[0], addr[1], session=self.session,
                    priority=self.priority,
                    budget_units=self.budget_units,
                    deadline_s=self.deadline_s,
                    retry=self.shard_retry,
                    secret=self._secret, seed=self._seed)
            return client

    def _apply_map(self, data: Optional[dict]) -> None:
        if not data:
            return
        spec = infra.claim_shard_fault(infra.InfraFaultMode.MAP_STALE)
        if spec is not None:
            self.stats.map_stale_drops += 1
            obs.inc("cluster.client.map_stale")
            record_incident(
                "map-stale", "clusterfault",
                f"injected map-stale: client dropped a shard-map "
                f"update ({spec.token})", token=spec.token,
                session=self.session)
            return
        new = ShardMap.from_json(data)
        if self._map is None or new.version > self._map.version:
            self._map = new
            self.stats.map_updates += 1
            obs.inc("cluster.client.map_updates")
            obs.set_gauge("cluster.client.map_version", new.version)
            with self._lock:
                live = {(s.host, s.port) for s in new.shards.values()
                        if s.up}
                live.add(self._seed_addr)
                stale = [addr for addr in self._clients
                         if addr not in live]
                dropped = [self._clients.pop(addr) for addr in stale]
            for client in dropped:
                client.close()

    def _refresh_map(self) -> None:
        """Best-effort map learn/refresh via a hello round trip."""
        for addr in self._known_addresses():
            client = self._client_for(addr)
            try:
                info = client.call(
                    "hello",
                    {"priority": self.priority,
                     "budget_units": self.budget_units},
                    deadline_s=2.0)
            except Exception:  # noqa: BLE001 — try the next address
                continue
            shard = (info or {}).get("shard") or {}
            self._apply_map(shard.get("map"))
            return

    def _known_addresses(self) -> list[tuple[str, int]]:
        addresses = [self._seed_addr]
        if self._map is not None:
            # Live shards first, but *down* shards too: restarts keep
            # their port, so a shard that was down when this map was
            # learned may answer at the same address by now — often
            # the only way back for a client whose map went fully
            # stale while it was away.
            ranked = sorted(self._map.shards.values(),
                            key=lambda s: not s.up)
            for shard in ranked:
                addr = (shard.host, shard.port)
                if addr not in addresses:
                    addresses.append(addr)
        return addresses

    def _candidates(self, key: Optional[str]
                    ) -> list[tuple[Optional[int], tuple[str, int]]]:
        """(shard_id, address) targets in preference order."""
        if self._map is None:
            return [(None, self._seed_addr)]
        ranked = self._map.candidates(key if key is not None
                                      else self.session)
        if not ranked:
            return [(None, self._seed_addr)]
        now = time.monotonic()
        fresh = [s for s in ranked
                 if self._suspect.get(s.shard_id, 0.0) <= now]
        suspect = [s for s in ranked
                   if self._suspect.get(s.shard_id, 0.0) > now]
        return [(s.shard_id, (s.host, s.port))
                for s in fresh + suspect]

    def _call(self, op: str, body: Any, key: Optional[str],
              deadline_s: Optional[float] = None,
              attempt_timeout_s: Optional[float] = None) -> Any:
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = time.monotonic() + budget
        if self._map is None:
            self._refresh_map()
        allow_any = False
        moves = 0
        dark_rounds = 0
        forced: Optional[tuple[Optional[int], tuple[str, int]]] = None
        last_error: Optional[BaseException] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"cluster {op} deadline of {budget:.1f}s expired",
                    op=op) from last_error
            targets = self._candidates(key)
            if forced is not None:
                targets = ([forced]
                           + [t for t in targets if t[1] != forced[1]])
                forced = None
            rerouted = False
            for shard_id, addr in targets:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                client = self._client_for(addr)
                extra = {"allow_any": True} if allow_any else None
                try:
                    result = client.call(
                        op, body, idempotency_key=key,
                        deadline_s=remaining,
                        attempt_timeout_s=attempt_timeout_s,
                        extra=extra)
                except ShardMovedError as exc:
                    # The shard is healthy but not the owner: adopt its
                    # map and follow the redirect to the owner it
                    # names.  Redirects are bounded — disagreeing maps
                    # (a push caught mid-flight) could otherwise
                    # ping-pong a request, so past the bound the client
                    # demands service from whoever answers
                    # (``allow_any``; dedup keeps that exactly-once).
                    self.stats.moved += 1
                    obs.inc("cluster.client.shard_moved")
                    self._apply_map(exc.shard_map)
                    last_error = exc
                    moves += 1
                    if moves > 2 * max(2, len(self._map.shards)
                                       if self._map else 2):
                        allow_any = True
                    elif (exc.owner_host is not None
                            and exc.owner_port is not None):
                        forced = (exc.owner_id,
                                  (exc.owner_host, exc.owner_port))
                    rerouted = True
                    break
                except (TransportError, OSError) as exc:
                    # Dead/hung shard: suspect it, fail over to the
                    # next-best candidate.  allow_any tells the
                    # fallback shard to serve despite not owning the
                    # digest — dedup by digest keeps this exactly-once.
                    last_error = exc
                    if shard_id is not None:
                        self._suspect[shard_id] = (
                            time.monotonic() + self.suspect_ttl_s)
                    self.stats.failovers += 1
                    obs.inc("cluster.client.failovers")
                    record_incident(
                        "cluster-failover", "netclient",
                        f"{op} to shard "
                        f"{'?' if shard_id is None else shard_id} at "
                        f"{addr[0]}:{addr[1]} failed "
                        f"({type(exc).__name__}); failing over",
                        op=op, shard=shard_id, session=self.session)
                    allow_any = True
                    continue
                else:
                    if shard_id is not None:
                        self._suspect.pop(shard_id, None)
                    if self._map is None:
                        # First contact resolved without an explicit
                        # refresh: adopt the map from the connection's
                        # hello handshake.
                        shard = (client.server_info or {}).get(
                            "shard") or {}
                        self._apply_map(shard.get("map"))
                    return result
            if not rerouted:
                # Every candidate failed this round: refresh the map
                # (shards may be back — on their old port or, if the
                # bind was lost, a new one) and go again with
                # exponential backoff until the deadline says stop.
                self._refresh_map()
                dark_rounds += 1
                pause = min(1.0, 0.05 * (2 ** min(dark_rounds, 5)))
                time.sleep(min(pause, max(0.0,
                                          deadline - time.monotonic())))


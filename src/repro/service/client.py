"""``LoopClient``: the fault-tolerant network client of the service.

The client owns every transport failure mode so callers see exactly
the in-process session API — a translate/run_loop/figure call either
returns the same value the serial path computes or raises the same
typed error the service raised:

* **Deadlines** — every request carries a wall-clock budget; attempts
  (connect, send, await response) each get at most
  ``RetryPolicy.attempt_timeout_s`` of it, so a dropped response burns
  one attempt, not the whole budget.
* **Bounded retries with jittered backoff** — transport failures
  (reset, truncation, checksum mismatch, timeout) reconnect and
  resubmit with exponential backoff; the jitter is seeded, so a chaos
  campaign's retry schedule is reproducible.
* **Idempotent resubmission** — translate/run_loop requests carry the
  content-addressed transcache digest as their idempotency key; the
  service's single-flight dedup makes a resubmitted translation a
  cache hit, never a second execution, which is what makes blind
  retry-after-unknown-outcome safe.
* **Admission awareness** — an :class:`~repro.errors.AdmissionRejected`
  response is not a transport failure: the client honours the
  server's ``retry_after`` hint (no exponential escalation, no breaker
  penalty) and resubmits until the deadline says stop.
* **Circuit breaking** — ``breaker_threshold`` consecutive transport
  failures open the circuit; calls fail fast with
  :class:`~repro.errors.CircuitOpenError` for ``breaker_cooldown_s``,
  then one probe is let through (half-open).

Every retry and reconnect is counted in :class:`ClientStats` and
recorded as a ``net-retry`` incident, so a run that limped through a
bad network is distinguishable, after the fact, from one that sailed.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import obs
from repro.errors import (
    AdmissionRejected,
    CircuitOpenError,
    ProtocolError,
    ServiceClosed,
    TransportError,
)
from repro.resilience.incidents import record_incident
from repro.service import wire


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the client fights the network."""

    #: Max attempts per request (first try included).
    attempts: int = 5
    #: Exponential backoff: ``base * 2**attempt``, capped at ``max``.
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    #: Multiplicative jitter width (0.5 = uniform in [0.75x, 1.25x]).
    jitter: float = 0.5
    #: Per-attempt cap on waiting for a response (a dropped response
    #: costs one attempt, not the whole deadline).
    attempt_timeout_s: float = 10.0
    #: Consecutive transport failures that open the circuit.
    breaker_threshold: int = 8
    #: How long an open circuit fails fast before the half-open probe.
    breaker_cooldown_s: float = 1.0


@dataclass
class ClientStats:
    """What one client lifetime saw on the wire."""

    requests: int = 0
    retries: int = 0
    admission_retries: int = 0
    reconnects: int = 0
    protocol_errors: int = 0
    #: End-to-end per-request latencies (ms), for percentile reporting.
    latencies_ms: list = field(default_factory=list)

    def as_dict(self) -> dict:
        data = dict(self.__dict__)
        data.pop("latencies_ms")
        return data


class CircuitBreaker:
    """Consecutive-failure circuit with a half-open probe."""

    def __init__(self, threshold: int, cooldown_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` while the circuit cools."""
        if self.opened_at is None:
            return
        remaining = self.cooldown_s - (self._clock() - self.opened_at)
        if remaining <= 0:
            return  # half-open: let one probe through
        raise CircuitOpenError(
            f"circuit open after {self.failures} consecutive transport "
            f"failures; retry in {remaining:.2f}s")

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            # (Re)start the cooldown — a failed half-open probe counts.
            self.opened_at = self._clock()

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None


class LoopClient:
    """A reconnecting, retrying, deadline-bound service client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 session: Optional[str] = None, priority: int = 1,
                 budget_units: Optional[int] = None,
                 deadline_s: float = 60.0,
                 retry: RetryPolicy = RetryPolicy(),
                 secret: Optional[str] = None,
                 seed: int = 0) -> None:
        self.host = host
        self.port = port
        #: Shared secret matching the server's ``auth_secret``; turns
        #: per-frame checksums into HMAC authentication (required to
        #: talk to any non-loopback server).
        self._key = wire.frame_key(secret)
        self.session = session or f"client-{port}"
        self.priority = priority
        self.budget_units = budget_units
        self.deadline_s = deadline_s
        self.retry = retry
        self.stats = ClientStats()
        #: The server's hello response body (session, priority, and —
        #: on a cluster shard — the shard id and shard map).
        self.server_info: dict = {}
        self._rng = random.Random(seed)
        self._sock: Optional[socket.socket] = None
        self._sock_lock = threading.Lock()
        self._closed = False
        self._req_id = 0
        self._breaker = CircuitBreaker(retry.breaker_threshold,
                                       retry.breaker_cooldown_s)

    # -- the session-shaped API -------------------------------------------

    def ping(self, deadline_s: Optional[float] = None) -> bool:
        return bool(self._call("ping", None,
                               deadline_s=deadline_s).get("pong"))

    def translate(self, loop, accelerator=None, options=None,
                  deadline_s: Optional[float] = None):
        return self._call(
            "translate", (loop, accelerator, options),
            idempotency_key=self._idempotency_key(loop, accelerator,
                                                  options),
            deadline_s=deadline_s)

    def run_loop(self, loop, scalars: Optional[dict] = None,
                 seed: int = 1234,
                 deadline_s: Optional[float] = None):
        return self._call(
            "run_loop", (loop, scalars, seed),
            idempotency_key=self._idempotency_key(loop, None, None),
            deadline_s=deadline_s)

    def run_figure(self, name: str,
                   deadline_s: Optional[float] = None,
                   attempt_timeout_s: Optional[float] = None) -> str:
        return self._call("figure", name, deadline_s=deadline_s,
                          attempt_timeout_s=attempt_timeout_s)

    def run_suite(self, config=None, benchmarks=None,
                  annotate: bool = False,
                  deadline_s: Optional[float] = None,
                  attempt_timeout_s: Optional[float] = None):
        return self._call("suite", (config, benchmarks, annotate),
                          deadline_s=deadline_s,
                          attempt_timeout_s=attempt_timeout_s)

    def call(self, op: str, body: Any = None, *,
             idempotency_key: Optional[str] = None,
             deadline_s: Optional[float] = None,
             attempt_timeout_s: Optional[float] = None,
             extra: Optional[dict] = None) -> Any:
        """Issue an arbitrary wire op with the full retry machinery.

        The cluster layer builds on this: the supervisor pushes shard
        maps (``map-update``) and scrapes shard counters (``stats``),
        and the failover client threads routing hints (*extra* envelope
        keys) through work requests.
        """
        return self._call(op, body, idempotency_key=idempotency_key,
                          deadline_s=deadline_s,
                          attempt_timeout_s=attempt_timeout_s,
                          extra=extra)

    def close(self) -> ClientStats:
        """Close the client; idempotent and safe against in-flight calls.

        The socket swap happens under a lock so a concurrent retry (or
        a second ``close``) can never double-close the descriptor, and
        an in-flight attempt interrupted by the close raises
        :class:`~repro.errors.ServiceClosed` instead of charging the
        circuit breaker with a spurious transport failure.
        """
        self._closed = True
        self._disconnect()
        return self.stats

    def __enter__(self) -> "LoopClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _idempotency_key(self, loop, accelerator, options
                         ) -> Optional[str]:
        return idempotency_key_for(loop, accelerator, options)

    # -- transport ---------------------------------------------------------

    def _call(self, op: str, body: Any,
              idempotency_key: Optional[str] = None,
              deadline_s: Optional[float] = None,
              attempt_timeout_s: Optional[float] = None,
              extra: Optional[dict] = None) -> Any:
        if self._closed:
            raise ServiceClosed(f"client closed; cannot issue {op}")
        policy = self.retry
        budget = self.deadline_s if deadline_s is None else deadline_s
        attempt_cap = (policy.attempt_timeout_s
                       if attempt_timeout_s is None else attempt_timeout_s)
        deadline = time.monotonic() + budget
        started = time.perf_counter()
        self.stats.requests += 1
        obs.inc(f"net.client.requests.{op}")
        last_error: Optional[BaseException] = None
        attempt = 0            # transport failures (bounded by policy)
        rejections = 0         # admission rejections (deadline-bounded)
        while True:
            self._breaker.check()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"{op} deadline of {budget:.1f}s expired after "
                    f"{attempt} transport attempt(s) and {rejections} "
                    f"admission rejection(s)", op=op,
                    attempts=attempt) from last_error
            try:
                response = self._attempt(op, body, idempotency_key,
                                         min(remaining, attempt_cap),
                                         remaining, extra)
            except (TransportError, OSError) as exc:
                if self._closed:
                    # A concurrent close() tore down the socket under
                    # this attempt: that is a caller decision, not a
                    # transport failure — no breaker charge, no retry.
                    raise ServiceClosed(
                        f"client closed during an in-flight {op} "
                        f"attempt") from exc
                attempt += 1
                last_error = exc
                self._transport_failure(op, attempt, exc)
                if attempt >= policy.attempts:
                    raise TransportError(
                        f"{op} failed after {attempt} attempts",
                        op=op, attempts=attempt) from exc
                self._backoff(attempt, deadline)
                continue
            if response.get("ok"):
                self._breaker.record_success()
                self.stats.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0)
                return wire.unpack_body(response.get("body"))
            # A typed error envelope: the server is alive and talking.
            self._breaker.record_success()
            try:
                wire.raise_error(response)
            except AdmissionRejected as exc:
                # Not a transport failure: honour the server's hint
                # (escalating gently past it when rejections repeat)
                # until the deadline says stop.  A one-attempt policy
                # means no retries of any kind — propagate.
                if policy.attempts <= 1:
                    raise
                rejections += 1
                last_error = exc
                hint = max(getattr(exc, "retry_after", 0.0) or 0.0,
                           policy.base_delay_s)
                wait = max(hint, min(
                    policy.max_delay_s,
                    policy.base_delay_s * (2 ** min(rejections, 16))))
                if deadline - time.monotonic() <= wait:
                    raise
                self.stats.admission_retries += 1
                obs.inc("net.client.admission_retries")
                time.sleep(wait)

    def _attempt(self, op: str, body: Any,
                 idempotency_key: Optional[str],
                 attempt_timeout: float, remaining: float,
                 extra: Optional[dict] = None) -> dict:
        """One connect/send/receive cycle; returns the response dict."""
        self._ensure_connected(min(remaining, 10.0))
        self._req_id += 1
        req_id = self._req_id
        message = wire.request(op, req_id, body, session=self.session,
                               idempotency_key=idempotency_key,
                               deadline_s=round(remaining, 3),
                               **(extra or {}))
        sock = self._sock
        if sock is None:
            raise TransportError(f"connection lost before sending {op}",
                                 op=op)
        sock.settimeout(max(0.05, attempt_timeout))
        try:
            sock.sendall(wire.encode_frame(message, key=self._key))
            response = wire.read_frame_blocking(
                lambda count: self._read_exactly(sock, count),
                self._key)
        except socket.timeout:
            raise TransportError(
                f"no {op} response within {attempt_timeout:.2f}s",
                op=op) from None
        except ProtocolError:
            self.stats.protocol_errors += 1
            obs.inc("net.client.protocol_errors")
            raise
        if response is None:
            raise TransportError(
                f"server closed the connection before answering {op}",
                op=op)
        if response.get("id") not in (req_id, None):
            raise ProtocolError(
                f"response id {response.get('id')} != request id "
                f"{req_id}", reason="bad-json")
        return response

    def _transport_failure(self, op: str, attempt: int,
                           exc: BaseException) -> None:
        self._disconnect()
        self._breaker.record_failure()
        self.stats.retries += 1
        obs.inc("net.client.retries")
        record_incident(
            "net-retry", "netclient",
            f"{op} attempt {attempt}/{self.retry.attempts} failed "
            f"({type(exc).__name__}: {exc}); reconnecting",
            op=op, attempt=attempt, session=self.session,
            error=str(exc))

    def _backoff(self, attempt: int, deadline: float) -> None:
        policy = self.retry
        delay = min(policy.max_delay_s,
                    policy.base_delay_s * (2 ** (attempt - 1)))
        # Seeded jitter: uniform in [1 - j/2, 1 + j/2] x delay.
        delay *= 1.0 + policy.jitter * (self._rng.random() - 0.5)
        time.sleep(max(0.0, min(delay, deadline - time.monotonic())))

    def _ensure_connected(self, connect_timeout: float) -> None:
        if self._sock is not None:
            return
        if self._closed:
            raise ServiceClosed("client closed; refusing to reconnect")
        try:
            sock = socket.create_connection(
                (self.host, self.port),
                timeout=max(0.05, connect_timeout))
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}",
                op="connect") from None
        self._sock = sock
        self.stats.reconnects += 1
        obs.inc("net.client.reconnects")
        # Open (or resume) the named server-side session first, so
        # priority/budget apply before any work request.
        self._req_id += 1
        hello = wire.request(
            "hello", self._req_id,
            {"priority": self.priority,
             "budget_units": self.budget_units},
            session=self.session)
        sock.settimeout(max(0.05, connect_timeout))
        try:
            sock.sendall(wire.encode_frame(hello, key=self._key))
            response = wire.read_frame_blocking(
                lambda count: self._read_exactly(sock, count),
                self._key)
        except socket.timeout:
            self._disconnect()
            raise TransportError("hello handshake timed out",
                                 op="hello") from None
        except ProtocolError:
            self._disconnect()
            raise
        if response is None or not response.get("ok"):
            self._disconnect()
            raise TransportError("hello handshake rejected", op="hello")
        try:
            self.server_info = wire.unpack_body(
                response.get("body")) or {}
        except ProtocolError:
            self.server_info = {}

    def _read_exactly(self, sock: socket.socket, count: int) -> bytes:
        """Exactly *count* bytes; ``b""`` on clean EOF before any byte."""
        chunks: list[bytes] = []
        got = 0
        while got < count:
            chunk = sock.recv(count - got)
            if not chunk:
                if not chunks:
                    return b""
                raise ProtocolError(
                    f"connection closed {got} of {count} bytes into a "
                    f"frame", reason="truncated")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _disconnect(self) -> None:
        with self._sock_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


def idempotency_key_for(loop, accelerator=None,
                        options=None) -> Optional[str]:
    """The transcache digest a translate/run_loop request resolves to
    server-side.

    Mirrors the session defaulting (``None`` accelerator/options mean
    the session's own), so a resubmission after an unknown outcome
    dedups against the first attempt's translation — and so the
    cluster client can route a request to the shard that owns its
    digest before ever putting it on the wire.
    """
    try:
        from repro.api import _default_accelerator
        from repro.vm.translator import (TranslationOptions,
                                         translation_key)
        config = (_default_accelerator() if accelerator is None
                  else accelerator)
        opts = TranslationOptions() if options is None else options
        return translation_key(loop, config, opts)
    except Exception:  # noqa: BLE001 — unkeyable request: no key
        return None

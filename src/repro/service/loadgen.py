"""Synthetic multi-client load driver for the loop-acceleration service.

``python -m repro loadgen`` boots a :class:`~repro.service.server.
LoopService` per worker count, fires a fixed corpus of translation
requests at it from several client threads (every client submits the
*same* corpus, so most requests are concurrent duplicates), and
reports:

* **throughput scaling** — wall-clock and requests/s per worker count
  on a mixed workload: every client submits the shared translate
  corpus *plus* its own measured loop executions (``run_loop``), whose
  ~100ms-scale simulations are what a multi-tenant service actually
  spends its time on and what the worker pool parallelises;
* **single-flight dedup** — ``translator.core_runs`` must equal the
  number of *unique* content-addressed digests in the translate
  corpus: however many clients race, each distinct translation runs
  exactly once;
* **byte-identity** — a figure produced through the service path must
  equal the direct ``repro.api`` serial rendering bit for bit.

The translate corpus varies the accelerator *below* kernel demand
(fewer integer units / load streams than the proposed design) because
the cache key is demand-clamped: raising a unit pool past what a loop
can use projects to the same digest on purpose, and would make
"unique digests" smaller than the naive config count.
``benchmarks/results/BENCH_service.json`` records the run.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs, perf
from repro.errors import ServiceOverload
from repro.service.server import LoopService, ServiceConfig
from repro.vm.translator import TranslationOptions, translation_key

DEFAULT_OUTPUT = os.path.join("benchmarks", "results",
                              "BENCH_service.json")
#: Worker counts the scaling comparison runs, in order.
DEFAULT_WORKERS = (1, 2)
DEFAULT_CLIENTS = 3
#: Measured-execution kernels per client (the heavy half of the mix).
DEFAULT_RUN_KERNELS = 6
CHECK_FIGURE = "fig2"


def request_corpus() -> list[tuple]:
    """The deterministic translate-request list every client submits.

    Suite kernels crossed with accelerator variants whose unit pools
    sit below typical kernel demand (so the demand-clamped digests
    actually differ), and whose ``max_ii`` is the untightened proposed
    value (so the exact-max-II fallback never fires and every unique
    digest costs exactly one core run).
    """
    from repro.accelerator import PROPOSED_LA
    from repro.workloads.suite import media_fp_benchmarks
    kernels = [kernel for bench in media_fp_benchmarks()
               for kernel in bench.kernels]
    variants = [
        PROPOSED_LA,
        PROPOSED_LA.with_(num_int_units=2),
        PROPOSED_LA.with_(load_streams=2, store_streams=1),
    ]
    options = TranslationOptions()
    return [(kernel, config, options)
            for kernel in kernels for config in variants]


@dataclass
class LoadgenRun:
    """One worker-count measurement."""

    workers: int
    elapsed_s: float
    requests: int
    completed: int
    rejected_overload: int
    translated: int
    dedup_hits: int
    core_runs: int
    exact_fallbacks: int
    drained: bool

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0


@dataclass
class LoadgenReport:
    clients: int
    requests_per_client: int
    unique_digests: int
    #: Cores the host actually grants; with one, worker processes add
    #: IPC cost but no parallelism, so the scaling series only rises
    #: when this is > 1.
    cpus: int = 1
    runs: list[LoadgenRun] = field(default_factory=list)
    figure_identical: bool = False
    check_figure: str = CHECK_FIGURE

    @property
    def dedup_exact(self) -> bool:
        """Every run translated each unique digest exactly once."""
        return all(r.core_runs == self.unique_digests
                   and r.exact_fallbacks == 0 for r in self.runs)

    @property
    def ok(self) -> bool:
        return (self.figure_identical and self.dedup_exact
                and all(r.drained and r.completed == r.requests
                        for r in self.runs))


def run_kernels(count: int = DEFAULT_RUN_KERNELS) -> list:
    """The measured-execution kernels each client runs (heavy half)."""
    from repro.workloads.suite import media_fp_benchmarks
    kernels = [kernel for bench in media_fp_benchmarks()
               for kernel in bench.kernels]
    stride = max(1, len(kernels) // count)
    return kernels[::stride][:count]


def _submit(futures: list, submit_one: Callable[[], object]) -> None:
    """One submission, honouring overload backpressure."""
    while True:
        try:
            futures.append(submit_one())
            return
        except ServiceOverload:
            time.sleep(0.001)


def _client(session, corpus: list[tuple], futures: list) -> None:
    """Submit the shared translate corpus (wave one)."""
    for loop, config, options in corpus:
        _submit(futures, lambda: session.translate(loop, config, options))


def _client_heavy(session, heavy: list, seed: int, futures: list) -> None:
    """Submit this client's measured executions (wave two)."""
    for kernel in heavy:
        _submit(futures, lambda: session.run_loop(kernel, seed=seed))


def _one_run(workers: int, corpus: list[tuple], heavy: list,
             clients: int, queue_depth: int) -> LoadgenRun:
    # Each worker count starts from a cold shared cache: the dedup
    # contract is per-service-lifetime, and warm entries would turn the
    # scaling measurement into a cache benchmark.
    perf.clear_caches()
    before = obs.metrics_snapshot()
    perf_before = perf.counter_snapshot()
    service = LoopService(ServiceConfig(workers=workers,
                                        queue_depth=queue_depth)).start()
    sessions = [service.open_session(f"client-{i}")
                for i in range(clients)]
    per_client: list[list] = [[] for _ in sessions]
    started = time.perf_counter()
    # Wave one: every client races the shared translate corpus (the
    # single-flight dedup measurement).  Wave two: each client's own
    # measured loop executions, which reuse the translations wave one
    # just populated — the shared-code-cache amortization story.
    waves = [
        [threading.Thread(target=_client, args=(session, corpus, futures))
         for session, futures in zip(sessions, per_client)],
        [threading.Thread(target=_client_heavy,
                          args=(session, heavy, 1000 + index, futures))
         for index, (session, futures)
         in enumerate(zip(sessions, per_client))],
    ]
    for threads in waves:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for futures in per_client:
            for future in futures:
                future.result(timeout=600)
    elapsed = time.perf_counter() - started
    stats = service.close()
    delta = obs.metrics_delta(before)["counters"]
    return LoadgenRun(
        workers=workers,
        elapsed_s=elapsed,
        requests=clients * (len(corpus) + len(heavy)),
        completed=stats.completed,
        rejected_overload=stats.rejected_overload,
        translated=stats.translated,
        dedup_hits=stats.dedup_hits,
        core_runs=delta.get("translator.core_runs", 0),
        exact_fallbacks=perf.counter_delta(perf_before)["exact_fallbacks"],
        drained=stats.drained,
    )


def _figure_via_service(name: str) -> bool:
    """Byte-identity: the service figure path vs the direct api path."""
    from repro import api
    perf.clear_caches()
    with LoopService(ServiceConfig(workers=1)) as service:
        session = service.open_session("figure-check")
        served = session.run_figure(name).result(timeout=600)
    perf.clear_caches()
    direct = api.run_figure(name)
    return served == direct


def run_loadgen(workers=DEFAULT_WORKERS, clients: int = DEFAULT_CLIENTS,
                run_kernel_count: int = DEFAULT_RUN_KERNELS,
                queue_depth: int = 64,
                progress: Optional[Callable[[str], None]] = None
                ) -> LoadgenReport:
    corpus = request_corpus()
    heavy = run_kernels(run_kernel_count)
    say = progress or (lambda _msg: None)
    unique = len({translation_key(loop, config, options)
                  for loop, config, options in corpus})
    report = LoadgenReport(clients=clients,
                           requests_per_client=len(corpus) + len(heavy),
                           unique_digests=unique,
                           cpus=os.cpu_count() or 1)
    for count in workers:
        say(f"loadgen: {clients} clients x {len(corpus)} translates "
            f"+ {len(heavy)} runs, workers={count}")
        report.runs.append(
            _one_run(count, corpus, heavy, clients, queue_depth))
    say(f"loadgen: figure identity check ({report.check_figure})")
    report.figure_identical = _figure_via_service(report.check_figure)
    return report


def write_report(report: LoadgenReport, path: str = DEFAULT_OUTPUT) -> str:
    payload = {
        "bench": "service-loadgen",
        "clients": report.clients,
        "requests_per_client": report.requests_per_client,
        "unique_digests": report.unique_digests,
        "cpus": report.cpus,
        "dedup_exact": report.dedup_exact,
        "figure_identical": report.figure_identical,
        "check_figure": report.check_figure,
        "ok": report.ok,
        "runs": [{
            "workers": r.workers,
            "elapsed_s": round(r.elapsed_s, 4),
            "throughput_rps": round(r.throughput_rps, 2),
            "requests": r.requests,
            "completed": r.completed,
            "rejected_overload": r.rejected_overload,
            "translated": r.translated,
            "dedup_hits": r.dedup_hits,
            "core_runs": r.core_runs,
            "exact_fallbacks": r.exact_fallbacks,
            "drained": r.drained,
        } for r in report.runs],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_loadgen(report: LoadgenReport) -> str:
    from repro.experiments.common import format_table
    rows = []
    for r in report.runs:
        rows.append((r.workers, r.requests, f"{r.elapsed_s:.2f}",
                     f"{r.throughput_rps:.1f}", r.translated,
                     r.dedup_hits, r.core_runs,
                     "yes" if r.drained else "NO"))
    table = format_table(
        ("workers", "requests", "seconds", "req/s", "translated",
         "dedup hits", "core runs", "drained"), rows,
        title=f"service loadgen: {report.clients} clients, "
              f"{report.unique_digests} unique digests, "
              f"{report.cpus} cpu(s)")
    lines = [table, ""]
    lines.append(f"single-flight dedup exact: "
                 f"{'yes' if report.dedup_exact else 'NO'} "
                 f"(core runs == unique digests, zero exact fallbacks)")
    lines.append(f"figure {report.check_figure} via service identical: "
                 f"{'yes' if report.figure_identical else 'NO'}")
    if report.cpus <= 1:
        lines.append("note: single-CPU host — worker processes cannot "
                     "run concurrently, so the scaling series shows "
                     "dispatch overhead only")
    lines.append(f"overall: {'OK' if report.ok else 'FAILED'}")
    return "\n".join(lines)

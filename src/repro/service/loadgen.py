"""Synthetic multi-client load driver for the loop-acceleration service.

``python -m repro loadgen`` boots a :class:`~repro.service.server.
LoopService` per worker count, fires a fixed corpus of translation
requests at it from several client threads (every client submits the
*same* corpus, so most requests are concurrent duplicates), and
reports:

* **throughput scaling** — wall-clock and requests/s per worker count
  on a mixed workload: every client submits the shared translate
  corpus *plus* its own measured loop executions (``run_loop``), whose
  ~100ms-scale simulations are what a multi-tenant service actually
  spends its time on and what the worker pool parallelises;
* **single-flight dedup** — ``translator.core_runs`` must equal the
  number of *unique* content-addressed digests in the translate
  corpus: however many clients race, each distinct translation runs
  exactly once;
* **byte-identity** — a figure produced through the service path must
  equal the direct ``repro.api`` serial rendering bit for bit.

The translate corpus varies the accelerator *below* kernel demand
(fewer integer units / load streams than the proposed design) because
the cache key is demand-clamped: raising a unit pool past what a loop
can use projects to the same digest on purpose, and would make
"unique digests" smaller than the naive config count.
``benchmarks/results/BENCH_service.json`` records the run.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs, perf
from repro.errors import (AdmissionRejected, ServiceOverload,
                          TransportError)
from repro.service.server import LoopService, ServiceConfig
from repro.vm.translator import TranslationOptions, translation_key

DEFAULT_OUTPUT = os.path.join("benchmarks", "results",
                              "BENCH_service.json")
#: Worker counts the scaling comparison runs, in order.
DEFAULT_WORKERS = (1, 2)
#: Shard counts the cluster throughput series runs, in order.
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_CLIENTS = 3
#: Measured-execution kernels per client (the heavy half of the mix).
DEFAULT_RUN_KERNELS = 6
CHECK_FIGURE = "fig2"


def request_corpus() -> list[tuple]:
    """The deterministic translate-request list every client submits.

    Suite kernels crossed with accelerator variants whose unit pools
    sit below typical kernel demand (so the demand-clamped digests
    actually differ), and whose ``max_ii`` is the untightened proposed
    value (so the exact-max-II fallback never fires and every unique
    digest costs exactly one core run).
    """
    from repro.accelerator import PROPOSED_LA
    from repro.workloads.suite import media_fp_benchmarks
    kernels = [kernel for bench in media_fp_benchmarks()
               for kernel in bench.kernels]
    variants = [
        PROPOSED_LA,
        PROPOSED_LA.with_(num_int_units=2),
        PROPOSED_LA.with_(load_streams=2, store_streams=1),
    ]
    options = TranslationOptions()
    return [(kernel, config, options)
            for kernel in kernels for config in variants]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 on empty input."""
    if not values:
        return 0.0
    ranked = sorted(values)
    rank = max(1, int(-(-q * len(ranked) // 1)))  # ceil without math
    return ranked[min(rank, len(ranked)) - 1]


class _Tally:
    """Thread-shared per-run backpressure and latency accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rejections = 0
        self.retries = 0
        self.latencies_ms: list[float] = []

    def rejected(self) -> None:
        with self._lock:
            self.rejections += 1
            self.retries += 1

    def finished(self, started: float) -> None:
        self.latencies_ms.append(
            (time.perf_counter() - started) * 1000.0)


@dataclass
class LoadgenRun:
    """One worker-count measurement."""

    workers: int
    elapsed_s: float
    requests: int
    completed: int
    rejected_overload: int
    translated: int
    dedup_hits: int
    core_runs: int
    exact_fallbacks: int
    drained: bool
    #: Client-side backpressure: rejections seen and resubmissions made.
    rejections: int = 0
    retries: int = 0
    #: Decision tag -> count from the service's admission controller.
    admission: dict = field(default_factory=dict)
    #: End-to-end request latency percentiles (submit -> result), ms.
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0


@dataclass
class ClusterRun:
    """One shard-count measurement against a supervised cluster."""

    shards: int
    elapsed_s: float
    requests: int
    completed: int
    #: Cluster-client routing evidence summed across all clients.
    failovers: int = 0
    moved: int = 0
    map_updates: int = 0
    converged: bool = False
    orphans: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0


@dataclass
class LoadgenReport:
    clients: int
    requests_per_client: int
    unique_digests: int
    #: Cores the host actually grants; with one, worker processes add
    #: IPC cost but no parallelism, so the scaling series only rises
    #: when this is > 1.
    cpus: int = 1
    runs: list[LoadgenRun] = field(default_factory=list)
    #: Sharded-cluster throughput series (``shards`` counts in order).
    cluster_runs: list[ClusterRun] = field(default_factory=list)
    #: Tail-latency evidence from :func:`cluster_failover_probe`.
    failover: dict = field(default_factory=dict)
    figure_identical: bool = False
    check_figure: str = CHECK_FIGURE
    #: Degraded-but-progressing evidence from :func:`saturation_probe`.
    saturation: dict = field(default_factory=dict)
    #: Cold-start evidence from :func:`aot_cold_start_probe` (server
    #: boot + request latency with vs without an AOT artifact).
    aot: dict = field(default_factory=dict)
    #: Fleet-warm-cache evidence from :func:`cluster_registry_probe`
    #: (a restarted shard pulls instead of re-translating).
    registry: dict = field(default_factory=dict)

    @property
    def dedup_exact(self) -> bool:
        """Every run translated each unique digest exactly once."""
        return all(r.core_runs == self.unique_digests
                   and r.exact_fallbacks == 0 for r in self.runs)

    @property
    def ok(self) -> bool:
        return (self.figure_identical and self.dedup_exact
                and all(r.drained and r.completed == r.requests
                        for r in self.runs)
                and all(r.completed == r.requests and r.converged
                        and r.orphans == 0 for r in self.cluster_runs)
                and self.failover.get("ok", True)
                and self.saturation.get("ok", True)
                and self.aot.get("ok", True)
                and self.registry.get("ok", True))


def run_kernels(count: int = DEFAULT_RUN_KERNELS) -> list:
    """The measured-execution kernels each client runs (heavy half)."""
    from repro.workloads.suite import media_fp_benchmarks
    kernels = [kernel for bench in media_fp_benchmarks()
               for kernel in bench.kernels]
    stride = max(1, len(kernels) // count)
    return kernels[::stride][:count]


def _submit(futures: list, submit_one: Callable[[], object],
            tally: _Tally) -> None:
    """One submission, honouring the server's retry hints."""
    started = time.perf_counter()
    while True:
        try:
            future = submit_one()
        except AdmissionRejected as exc:
            tally.rejected()
            # The server said exactly when resubmission has a chance.
            time.sleep(exc.retry_after or 0.001)
            continue
        except ServiceOverload:
            tally.rejected()
            time.sleep(0.001)
            continue
        future.add_done_callback(
            lambda _f, t0=started: tally.finished(t0))
        futures.append(future)
        return


def _client(session, corpus: list[tuple], futures: list,
            tally: _Tally) -> None:
    """Submit the shared translate corpus (wave one)."""
    for loop, config, options in corpus:
        _submit(futures,
                lambda: session.translate(loop, config, options), tally)


def _client_heavy(session, heavy: list, seed: int, futures: list,
                  tally: _Tally) -> None:
    """Submit this client's measured executions (wave two)."""
    for kernel in heavy:
        _submit(futures, lambda: session.run_loop(kernel, seed=seed),
                tally)


def _one_run(workers: int, corpus: list[tuple], heavy: list,
             clients: int, queue_depth: int) -> LoadgenRun:
    # Each worker count starts from a cold shared cache: the dedup
    # contract is per-service-lifetime, and warm entries would turn the
    # scaling measurement into a cache benchmark.
    perf.clear_caches()
    before = obs.metrics_snapshot()
    perf_before = perf.counter_snapshot()
    service = LoopService(ServiceConfig(workers=workers,
                                        queue_depth=queue_depth)).start()
    sessions = [service.open_session(f"client-{i}")
                for i in range(clients)]
    per_client: list[list] = [[] for _ in sessions]
    tally = _Tally()
    started = time.perf_counter()
    # Wave one: every client races the shared translate corpus (the
    # single-flight dedup measurement).  Wave two: each client's own
    # measured loop executions, which reuse the translations wave one
    # just populated — the shared-code-cache amortization story.
    waves = [
        [threading.Thread(target=_client,
                          args=(session, corpus, futures, tally))
         for session, futures in zip(sessions, per_client)],
        [threading.Thread(target=_client_heavy,
                          args=(session, heavy, 1000 + index, futures,
                                tally))
         for index, (session, futures)
         in enumerate(zip(sessions, per_client))],
    ]
    for threads in waves:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for futures in per_client:
            for future in futures:
                future.result(timeout=600)
    elapsed = time.perf_counter() - started
    stats = service.close()
    delta = obs.metrics_delta(before)["counters"]
    return LoadgenRun(
        workers=workers,
        elapsed_s=elapsed,
        requests=clients * (len(corpus) + len(heavy)),
        completed=stats.completed,
        rejected_overload=stats.rejected_overload,
        translated=stats.translated,
        dedup_hits=stats.dedup_hits,
        core_runs=delta.get("translator.core_runs", 0),
        exact_fallbacks=perf.counter_delta(perf_before)["exact_fallbacks"],
        drained=stats.drained,
        rejections=tally.rejections,
        retries=tally.retries,
        admission=dict(stats.admission),
        p50_ms=round(percentile(tally.latencies_ms, 0.50), 3),
        p95_ms=round(percentile(tally.latencies_ms, 0.95), 3),
        p99_ms=round(percentile(tally.latencies_ms, 0.99), 3),
    )


def _figure_via_service(name: str) -> bool:
    """Byte-identity: the figure over TCP vs the direct api path."""
    from repro import api
    from repro.service.client import LoopClient
    from repro.service.net import NetConfig, NetServer
    perf.clear_caches()
    with NetServer(NetConfig(service=ServiceConfig(workers=1))) as server:
        with LoopClient(server.host, server.port,
                        session="figure-check") as client:
            served = client.run_figure(name, deadline_s=1800.0,
                                       attempt_timeout_s=900.0)
    perf.clear_caches()
    direct = api.run_figure(name)
    return served == direct


def saturation_probe(drivers: int = 4, queue_depth: int = 8) -> dict:
    """Prove the degradation ladder over TCP: saturate a one-worker
    server with a standing backlog of cached executions, then show
    that (a) an uncached translate is shed with a positive retry hint,
    (b) a cached translate still progresses through the saturated
    queue, and (c) a retrying client honouring the hints eventually
    lands the shed translate.  Returns the evidence dict for the JSON
    report.
    """
    from repro.accelerator import PROPOSED_LA
    from repro.service.client import LoopClient, RetryPolicy
    from repro.service.net import NetConfig, NetServer
    from repro.service.admission import AdmissionPolicy

    perf.clear_caches()
    heavy = run_kernels(drivers)
    warm_kernel = heavy[0]
    shed_kernel = heavy[-1]
    # Distinct digests per probe attempt: once a variant is admitted it
    # is cached, and cached work is *supposed* to dodge the shedding
    # this probe is trying to observe.
    shed_variants = [
        (shed_kernel, PROPOSED_LA.with_(num_int_units=units,
                                        load_streams=streams),
         TranslationOptions(priority_kind=kind))
        for kind in ("swing", "height")
        for units in (1, 2) for streams in (1, 2)]
    evidence = {"drivers": drivers, "queue_depth": queue_depth,
                "shed_seen": False, "retry_hint_s": 0.0,
                "cached_ok": False, "retried_ok": False,
                "admission_retries": 0, "admission": {}}
    # high_watermark 0.25: a couple of queued items already count as
    # saturation, so the shed window is the whole time the drivers
    # keep a backlog, not a razor-thin race on the last queue slot.
    threshold = max(1, int(queue_depth * 0.25))
    server = NetServer(NetConfig(service=ServiceConfig(
        workers=1, queue_depth=queue_depth,
        admission=AdmissionPolicy(high_watermark=0.25)))).start()
    stop = threading.Event()
    threads: list[threading.Thread] = []
    retry_thread: Optional[threading.Thread] = None
    try:
        # Pre-warm every driver kernel: driver traffic is then *cached*
        # work, admitted straight through the watermark (the ladder's
        # cached bypass), so the drivers can hold the queue saturated
        # without shedding each other.
        with LoopClient(server.host, server.port,
                        session="sat-warm") as warm:
            for kernel in heavy:
                warm.translate(kernel, deadline_s=120.0)

        def drive(index: int) -> None:
            with LoopClient(server.host, server.port,
                            session=f"sat-driver-{index}",
                            deadline_s=600.0,
                            retry=RetryPolicy(attempts=20,
                                              attempt_timeout_s=120.0)
                            ) as driver:
                seed = 4000 + index
                while not stop.is_set():
                    driver.run_loop(heavy[index % len(heavy)],
                                    seed=seed)
                    seed += drivers

        threads = [threading.Thread(target=drive, args=(i,),
                                    daemon=True)
                   for i in range(drivers)]
        for thread in threads:
            thread.start()

        # (a) a single-shot client (attempts=1: rejections propagate)
        # sees its uncached translate shed while the backlog stands.
        probe = LoopClient(server.host, server.port, session="sat-probe",
                           deadline_s=120.0,
                           retry=RetryPolicy(attempts=1,
                                             attempt_timeout_s=60.0))
        deadline = time.monotonic() + 30.0
        backlog = server.service._queue  # intra-package: probe timing
        variant = 0
        shed_work = shed_variants[0]
        while time.monotonic() < deadline and not evidence["shed_seen"]:
            if backlog.qsize() < threshold:
                time.sleep(0.002)
                continue
            shed_work = shed_variants[variant % len(shed_variants)]
            variant += 1
            try:
                probe.translate(shed_work[0], shed_work[1],
                                shed_work[2], deadline_s=5.0)
            except AdmissionRejected as exc:
                evidence["shed_seen"] = True
                evidence["retry_hint_s"] = round(exc.retry_after, 6)
                evidence["decision"] = exc.decision
            except (ServiceOverload, TransportError):
                pass  # raced past the watermark: keep probing
        # (b) cached work must progress through the same saturation.
        try:
            cached = probe.translate(warm_kernel, deadline_s=60.0)
            evidence["cached_ok"] = cached.ok
        except (ServiceOverload, TransportError):
            evidence["cached_ok"] = False
        # (c) a retrying client honouring the hints eventually lands
        # the request that was just shed.  Started while the drivers
        # still hold the backlog (so it is rejected at least once),
        # then the drivers stand down and the queue drains.
        retrier = LoopClient(server.host, server.port,
                             session="sat-retry", deadline_s=600.0,
                             retry=RetryPolicy(attempts=50,
                                               attempt_timeout_s=120.0))
        landing: dict = {}

        def retry_shed() -> None:
            try:
                landing["result"] = retrier.translate(
                    shed_work[0], shed_work[1], shed_work[2],
                    deadline_s=600.0)
            except Exception as exc:  # noqa: BLE001 — evidence, not control
                landing["error"] = f"{type(exc).__name__}: {exc}"

        retry_thread = threading.Thread(target=retry_shed, daemon=True)
        retry_thread.start()
        hold_until = time.monotonic() + 15.0
        while (time.monotonic() < hold_until
               and retrier.stats.admission_retries < 1):
            time.sleep(0.005)
        stop.set()
        retry_thread.join(timeout=300.0)
        # "Landed" means the request completed through the saturated
        # service; whether the translation itself schedules is the
        # kernel's business, not the transport's.
        evidence["retried_ok"] = "result" in landing
        if "error" in landing:
            evidence["retry_error"] = landing["error"]
        evidence["admission_retries"] = retrier.stats.admission_retries
        probe.close()
        retrier.close()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=300.0)
        if retry_thread is not None:
            retry_thread.join(timeout=300.0)
        stats = server.stop()
    evidence["admission"] = dict(stats.admission)
    evidence["ok"] = bool(
        evidence["shed_seen"] and evidence["retry_hint_s"] > 0.0
        and evidence["cached_ok"] and evidence["retried_ok"]
        and evidence["admission_retries"] >= 1)
    return evidence


def _cluster_retry():
    """Per-shard retry policy for benchmark cluster clients: the
    cluster layer owns failover, so the per-connection breaker must
    never latch open."""
    from repro.service.client import RetryPolicy
    return RetryPolicy(attempts=2, base_delay_s=0.02, max_delay_s=0.2,
                       attempt_timeout_s=60.0, breaker_threshold=1 << 30)


def _one_cluster_run(shards: int, corpus: list[tuple],
                     clients: int) -> ClusterRun:
    """Throughput of the translate corpus through a ``shards``-wide
    supervised cluster, one :class:`ClusterClient` per client thread.

    Requests route by transcache digest, so the corpus spreads across
    the fleet; on a single-CPU host the series measures routing and
    wire overhead, not parallel speedup (same caveat as workers).
    """
    from repro.service.cluster import ClusterClient, ClusterConfig, \
        ShardSupervisor
    perf.clear_caches()
    supervisor = ShardSupervisor(ClusterConfig(
        shards=shards, service=ServiceConfig(workers=1))).start()
    tally = _Tally()
    completed = [0] * clients
    stats_totals = {"failovers": 0, "moved": 0, "map_updates": 0}
    lock = threading.Lock()

    def drive(index: int) -> None:
        host, port = supervisor.seed_address()
        with ClusterClient(host, port, session=f"bench-{index}",
                           shard_retry=_cluster_retry()
                           ).connect() as client:
            for loop, config, options in corpus:
                started = time.perf_counter()
                client.translate(loop, config, options, deadline_s=120.0)
                tally.finished(started)
                completed[index] += 1
            stats = client.stats
            with lock:
                for name in stats_totals:
                    stats_totals[name] += getattr(stats, name)

    try:
        started = time.perf_counter()
        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        converged = supervisor.wait_converged(30.0)
    finally:
        supervisor.stop()
    return ClusterRun(
        shards=shards,
        elapsed_s=elapsed,
        requests=clients * len(corpus),
        completed=sum(completed),
        failovers=stats_totals["failovers"],
        moved=stats_totals["moved"],
        map_updates=stats_totals["map_updates"],
        converged=converged,
        orphans=len(supervisor.orphan_pids()),
        p50_ms=round(percentile(tally.latencies_ms, 0.50), 3),
        p95_ms=round(percentile(tally.latencies_ms, 0.95), 3),
        p99_ms=round(percentile(tally.latencies_ms, 0.99), 3),
    )


def cluster_failover_probe(shards: int = 2,
                           requests: int = 120) -> dict:
    """Tail latency while a shard dies under the client.

    One cluster client streams translates; mid-stream a shard is
    SIGKILLed.  The requests in the kill window pay the failover cost
    (suspect marking + re-route + idempotent resubmission) and their
    p99 is reported next to the steady-state p99 — the price of
    exactly-once through a shard death, in milliseconds.  Every
    request must still complete and the fleet must heal.
    """
    from repro.service.cluster import ClusterClient, ClusterConfig, \
        ShardSupervisor
    perf.clear_caches()
    corpus = request_corpus()
    supervisor = ShardSupervisor(ClusterConfig(
        shards=shards, service=ServiceConfig(workers=1))).start()
    kill_at = requests // 2
    window = max(10, requests // 5)
    steady: list[float] = []
    during: list[float] = []
    served = 0
    evidence: dict = {"shards": shards, "requests": requests}
    try:
        host, port = supervisor.seed_address()
        with ClusterClient(host, port, session="bench-failover",
                           shard_retry=_cluster_retry()
                           ).connect() as client:
            for index in range(requests):
                if index == kill_at:
                    evidence["killed_pid"] = supervisor.kill_shard(
                        (shards - 1) if shards > 1 else 0)
                loop, config, options = corpus[index % len(corpus)]
                started = time.perf_counter()
                client.translate(loop, config, options, deadline_s=120.0)
                latency = (time.perf_counter() - started) * 1000.0
                served += 1
                if kill_at <= index < kill_at + window:
                    during.append(latency)
                else:
                    steady.append(latency)
            stats = client.stats
        healed = supervisor.wait_converged(60.0)
    finally:
        supervisor.stop()
    evidence.update({
        "served": served,
        "failovers": stats.failovers,
        "p99_steady_ms": round(percentile(steady, 0.99), 3),
        "p99_during_kill_ms": round(percentile(during, 0.99), 3),
        "healed": healed,
        "orphans": len(supervisor.orphan_pids()),
        "ok": bool(served == requests and healed
                   and not supervisor.orphan_pids()),
    })
    return evidence


def aot_cold_start_probe() -> dict:
    """Cold-start cost with vs without an AOT translation artifact.

    Builds the default artifact corpus into a throwaway file, then
    boots the same one-worker TCP server twice: once cold (every
    translate pays a core run) and once with the artifact installed
    (zero core runs, every corpus request an artifact hit).  Reports
    boot seconds, per-request p50/p99, core runs, and artifact hits
    for both, plus byte-identity of ``CHECK_FIGURE`` rendered through
    the artifact path against a clean dynamic rendering.
    """
    import shutil
    import tempfile

    from repro import aot, api
    from repro.service.client import LoopClient
    from repro.service.net import NetConfig, NetServer

    corpus = request_corpus()
    tmpdir = tempfile.mkdtemp(prefix="repro-aot-bench-")
    path = os.path.join(tmpdir, "suite.rvaf")
    try:
        perf.clear_caches()
        build = aot.build_artifact(path)
        evidence: dict = {
            "artifact_entries": build.entries,
            "artifact_loops": build.loops,
            "build_core_runs": build.core_runs,
        }

        def one(artifact: Optional[str]) -> dict:
            perf.clear_caches()
            before = obs.metrics_snapshot()
            boot_started = time.perf_counter()
            server = NetServer(NetConfig(service=ServiceConfig(
                workers=1, artifact_path=artifact))).start()
            boot_s = time.perf_counter() - boot_started
            latencies: list[float] = []
            try:
                with LoopClient(server.host, server.port,
                                session="aot-bench") as client:
                    for loop, config, options in corpus:
                        started = time.perf_counter()
                        client.translate(loop, config, options,
                                         deadline_s=120.0)
                        latencies.append(
                            (time.perf_counter() - started) * 1000.0)
            finally:
                server.stop()
            counters = obs.metrics_delta(before)["counters"]
            return {
                "boot_s": round(boot_s, 4),
                "requests": len(latencies),
                "p50_ms": round(percentile(latencies, 0.50), 3),
                "p99_ms": round(percentile(latencies, 0.99), 3),
                "core_runs": counters.get("translator.core_runs", 0),
                "artifact_hits": counters.get("aot.artifact_hits", 0),
            }

        evidence["cold"] = one(None)
        evidence["warm"] = one(path)
        # Byte-identity through the artifact path: install the bundle
        # into a clean cache, render, and compare against a clean
        # dynamic rendering of the same figure.
        perf.clear_caches()
        aot.install(path)
        via_artifact = api.run_figure(CHECK_FIGURE)
        perf.clear_caches()
        dynamic = api.run_figure(CHECK_FIGURE)
        evidence["figure_identical"] = via_artifact == dynamic
        evidence["check_figure"] = CHECK_FIGURE
        evidence["ok"] = bool(
            evidence["warm"]["core_runs"] == 0
            and evidence["warm"]["artifact_hits"] >= len(corpus)
            and evidence["cold"]["core_runs"] > 0
            and evidence["figure_identical"])
        return evidence
    finally:
        perf.clear_caches()
        shutil.rmtree(tmpdir, ignore_errors=True)


def cluster_registry_probe(shards: int = 2) -> dict:
    """Fleet-warm cache: a restarted shard pulls instead of paying.

    Boots a cluster whose shards all install the same AOT artifact and
    register each other as artifact-registry peers, then proves the
    two warm paths end to end:

    * the whole translate corpus crosses the fleet with **zero** core
      runs (every shard adopted the artifact);
    * a key *outside* the artifact is translated (owner pays one core
      run), the owner is SIGKILLed, the key is re-translated during
      the outage (the survivor pays once — the fleet now holds the
      entry), and after the supervisor heals the fleet, the restarted
      owner serves the same key with ``translator.core_runs == 0`` and
      ``aot.registry_hits >= 1``: it pulled the entry over the wire
      instead of re-translating.
    """
    import shutil
    import tempfile

    from repro import aot
    from repro.accelerator import PROPOSED_LA
    from repro.service.client import LoopClient
    from repro.service.cluster import ClusterClient, ClusterConfig, \
        ShardSupervisor

    corpus = request_corpus()
    # A key deliberately absent from the artifact corpus: the registry
    # pull is only observable on a genuine artifact miss.
    extra_kernel = corpus[0][0]
    extra = (extra_kernel, PROPOSED_LA.with_(num_int_units=1),
             TranslationOptions())
    tmpdir = tempfile.mkdtemp(prefix="repro-aot-registry-")
    path = os.path.join(tmpdir, "suite.rvaf")
    evidence: dict = {"shards": shards}
    try:
        perf.clear_caches()
        build = aot.build_artifact(path)
        evidence["artifact_entries"] = build.entries
        perf.clear_caches()
        supervisor = ShardSupervisor(ClusterConfig(
            shards=shards,
            service=ServiceConfig(workers=1, artifact_path=path))).start()
        try:
            host, port = supervisor.seed_address()
            with ClusterClient(host, port, session="registry-probe",
                               shard_retry=_cluster_retry()
                               ).connect() as client:
                for loop, config, options in corpus:
                    client.translate(loop, config, options,
                                     deadline_s=120.0)
                fleet = supervisor.shard_stats()
                evidence["corpus_core_runs"] = sum(
                    s["counters"].get("translator.core_runs", 0)
                    for s in fleet.values())
                # Owner pays the single core run for the extra key.
                client.translate(*extra, deadline_s=120.0)
                fleet = supervisor.shard_stats()
                owners = [sid for sid, s in fleet.items()
                          if s["counters"].get("translator.core_runs", 0)]
                owner = owners[0] if owners else 0
                evidence["owner_shard"] = owner
                evidence["killed_pid"] = supervisor.kill_shard(owner)
                # Re-translate during the outage: failover routes to a
                # survivor, which pays the core run — after this, the
                # *fleet* holds the entry even though the owner's copy
                # died with it.
                client.translate(*extra, deadline_s=120.0)
            evidence["healed"] = supervisor.wait_converged(60.0)
            # Direct request to the restarted owner: it owns the key
            # again, misses locally (fresh process, key not in the
            # artifact), and must pull from its registry peer.  Retry
            # briefly: the shard accepts connections a beat before the
            # pushed shard map lands.
            info = supervisor.map.shards[owner]
            pull_ms = 0.0
            deadline = time.monotonic() + 15.0
            while True:
                try:
                    with LoopClient(info.host, info.port,
                                    session="registry-probe-direct",
                                    retry=_cluster_retry()) as direct:
                        started = time.perf_counter()
                        direct.translate(*extra, deadline_s=120.0)
                        pull_ms = (time.perf_counter() - started) * 1000.0
                    break
                except Exception:  # noqa: BLE001 — map push race
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.2)
            evidence["restart_pull_ms"] = round(pull_ms, 3)
            restarted = supervisor.shard_stats()[owner]["counters"]
            evidence["restarted_core_runs"] = restarted.get(
                "translator.core_runs", 0)
            evidence["restarted_registry_hits"] = restarted.get(
                "aot.registry_hits", 0)
        finally:
            supervisor.stop()
        evidence["orphans"] = len(supervisor.orphan_pids())
        evidence["ok"] = bool(
            evidence.get("corpus_core_runs") == 0
            and evidence.get("restarted_core_runs") == 0
            and evidence.get("restarted_registry_hits", 0) >= 1
            and evidence.get("healed")
            and evidence.get("orphans") == 0)
        return evidence
    finally:
        perf.clear_caches()
        shutil.rmtree(tmpdir, ignore_errors=True)


def run_loadgen(workers=DEFAULT_WORKERS, clients: int = DEFAULT_CLIENTS,
                run_kernel_count: int = DEFAULT_RUN_KERNELS,
                queue_depth: int = 64,
                saturation: bool = True,
                shard_counts=DEFAULT_SHARDS,
                progress: Optional[Callable[[str], None]] = None
                ) -> LoadgenReport:
    corpus = request_corpus()
    heavy = run_kernels(run_kernel_count)
    say = progress or (lambda _msg: None)
    unique = len({translation_key(loop, config, options)
                  for loop, config, options in corpus})
    report = LoadgenReport(clients=clients,
                           requests_per_client=len(corpus) + len(heavy),
                           unique_digests=unique,
                           cpus=os.cpu_count() or 1)
    for count in workers:
        say(f"loadgen: {clients} clients x {len(corpus)} translates "
            f"+ {len(heavy)} runs, workers={count}")
        report.runs.append(
            _one_run(count, corpus, heavy, clients, queue_depth))
    for count in shard_counts or ():
        say(f"loadgen: cluster series, shards={count}")
        report.cluster_runs.append(
            _one_cluster_run(count, corpus, clients))
    if shard_counts:
        probe_shards = max(2, min(shard_counts))
        say(f"loadgen: failover probe (shard kill mid-stream, "
            f"shards={probe_shards})")
        report.failover = cluster_failover_probe(shards=probe_shards)
    say("loadgen: AOT cold-start probe (artifact vs dynamic boot)")
    report.aot = aot_cold_start_probe()
    if shard_counts:
        probe_shards = max(2, min(shard_counts))
        say(f"loadgen: artifact-registry probe (restarted shard pulls, "
            f"shards={probe_shards})")
        report.registry = cluster_registry_probe(shards=probe_shards)
    say(f"loadgen: figure identity check over TCP "
        f"({report.check_figure})")
    report.figure_identical = _figure_via_service(report.check_figure)
    if saturation:
        say("loadgen: saturation probe (degraded-but-progressing)")
        report.saturation = saturation_probe()
    return report


def write_report(report: LoadgenReport, path: str = DEFAULT_OUTPUT) -> str:
    payload = {
        "bench": "service-loadgen",
        "clients": report.clients,
        "requests_per_client": report.requests_per_client,
        "unique_digests": report.unique_digests,
        "cpus": report.cpus,
        "dedup_exact": report.dedup_exact,
        "figure_identical": report.figure_identical,
        "check_figure": report.check_figure,
        "ok": report.ok,
        "saturation": report.saturation,
        "failover": report.failover,
        "aot": report.aot,
        "registry": report.registry,
        "cluster_runs": [{
            "shards": r.shards,
            "elapsed_s": round(r.elapsed_s, 4),
            "throughput_rps": round(r.throughput_rps, 2),
            "requests": r.requests,
            "completed": r.completed,
            "failovers": r.failovers,
            "moved": r.moved,
            "map_updates": r.map_updates,
            "converged": r.converged,
            "orphans": r.orphans,
            "p50_ms": r.p50_ms,
            "p95_ms": r.p95_ms,
            "p99_ms": r.p99_ms,
        } for r in report.cluster_runs],
        "runs": [{
            "workers": r.workers,
            "elapsed_s": round(r.elapsed_s, 4),
            "throughput_rps": round(r.throughput_rps, 2),
            "requests": r.requests,
            "completed": r.completed,
            "rejected_overload": r.rejected_overload,
            "rejections": r.rejections,
            "retries": r.retries,
            "admission": r.admission,
            "p50_ms": r.p50_ms,
            "p95_ms": r.p95_ms,
            "p99_ms": r.p99_ms,
            "translated": r.translated,
            "dedup_hits": r.dedup_hits,
            "core_runs": r.core_runs,
            "exact_fallbacks": r.exact_fallbacks,
            "drained": r.drained,
        } for r in report.runs],
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_loadgen(report: LoadgenReport) -> str:
    from repro.experiments.common import format_table
    rows = []
    for r in report.runs:
        rows.append((r.workers, r.requests, f"{r.elapsed_s:.2f}",
                     f"{r.throughput_rps:.1f}",
                     f"{r.p50_ms:.0f}", f"{r.p95_ms:.0f}",
                     f"{r.p99_ms:.0f}", r.rejections, r.retries,
                     r.translated, r.dedup_hits, r.core_runs,
                     "yes" if r.drained else "NO"))
    table = format_table(
        ("workers", "requests", "seconds", "req/s", "p50ms", "p95ms",
         "p99ms", "rejected", "retried", "translated", "dedup hits",
         "core runs", "drained"), rows,
        title=f"service loadgen: {report.clients} clients, "
              f"{report.unique_digests} unique digests, "
              f"{report.cpus} cpu(s)")
    lines = [table, ""]
    if report.cluster_runs:
        cluster_rows = [
            (r.shards, r.requests, f"{r.elapsed_s:.2f}",
             f"{r.throughput_rps:.1f}", f"{r.p50_ms:.0f}",
             f"{r.p95_ms:.0f}", f"{r.p99_ms:.0f}", r.failovers,
             r.moved, "yes" if r.converged else "NO", r.orphans)
            for r in report.cluster_runs]
        lines.append(format_table(
            ("shards", "requests", "seconds", "req/s", "p50ms",
             "p95ms", "p99ms", "failovers", "moved", "converged",
             "orphans"), cluster_rows,
            title="cluster series: digest-routed shards, "
                  "supervised failover"))
        lines.append("")
    if report.failover:
        fo = report.failover
        lines.append(
            f"failover probe ({fo.get('shards', '?')} shards, SIGKILL "
            f"mid-stream): served {fo.get('served', 0)}/"
            f"{fo.get('requests', 0)}, p99 steady "
            f"{fo.get('p99_steady_ms', 0.0):.0f}ms vs during kill "
            f"{fo.get('p99_during_kill_ms', 0.0):.0f}ms, failovers "
            f"{fo.get('failovers', 0)}, healed="
            f"{'yes' if fo.get('healed') else 'NO'}, orphans "
            f"{fo.get('orphans', 0)}")
    if report.aot:
        cold = report.aot.get("cold", {})
        warm = report.aot.get("warm", {})
        lines.append(
            f"aot cold-start probe: dynamic boot "
            f"{cold.get('boot_s', 0.0):.2f}s p99 "
            f"{cold.get('p99_ms', 0.0):.0f}ms "
            f"({cold.get('core_runs', 0)} core runs) vs artifact boot "
            f"{warm.get('boot_s', 0.0):.2f}s p99 "
            f"{warm.get('p99_ms', 0.0):.0f}ms "
            f"({warm.get('core_runs', 0)} core runs, "
            f"{warm.get('artifact_hits', 0)} artifact hits), figure "
            f"identical={'yes' if report.aot.get('figure_identical') else 'NO'}")
    if report.registry:
        reg = report.registry
        lines.append(
            f"artifact-registry probe ({reg.get('shards', '?')} shards): "
            f"corpus fleet core runs {reg.get('corpus_core_runs', '?')}, "
            f"restarted shard {reg.get('owner_shard', '?')} pulled in "
            f"{reg.get('restart_pull_ms', 0.0):.0f}ms with "
            f"{reg.get('restarted_core_runs', '?')} core runs and "
            f"{reg.get('restarted_registry_hits', 0)} registry hits, "
            f"healed={'yes' if reg.get('healed') else 'NO'}")
    lines.append(f"single-flight dedup exact: "
                 f"{'yes' if report.dedup_exact else 'NO'} "
                 f"(core runs == unique digests, zero exact fallbacks)")
    lines.append(f"figure {report.check_figure} via TCP identical: "
                 f"{'yes' if report.figure_identical else 'NO'}")
    if report.saturation:
        sat = report.saturation
        lines.append(
            f"saturation probe: shed={'yes' if sat.get('shed_seen') else 'NO'}"
            f" (hint {sat.get('retry_hint_s', 0.0):.3f}s, decision "
            f"{sat.get('decision', '-')}), cached progressed="
            f"{'yes' if sat.get('cached_ok') else 'NO'}, retry landed="
            f"{'yes' if sat.get('retried_ok') else 'NO'} after "
            f"{sat.get('admission_retries', 0)} hinted retries")
    if report.cpus <= 1:
        lines.append("note: single-CPU host — worker and shard "
                     "processes cannot run concurrently, so the "
                     "scaling series show dispatch/routing overhead "
                     "only")
    lines.append(f"overall: {'OK' if report.ok else 'FAILED'}")
    return "\n".join(lines)


def measure_service(workers=(), shards=(), clients: int = DEFAULT_CLIENTS,
                    run_kernel_count: int = DEFAULT_RUN_KERNELS,
                    queue_depth: int = 64,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> list[dict]:
    """The series driver for ``kind="service"`` experiment configs.

    Runs the worker-pool series (*workers*) and/or the sharded-cluster
    series (*shards*) and yields one row dict per point with the gated
    metrics (throughput, latency percentiles) plus an ``ok`` verdict —
    drained/complete for the pool, converged/orphan-free for the
    cluster.  The full probe battery (failover, AOT, saturation, ...)
    stays with :func:`run_loadgen`; this is the repeatable measurement
    core the ``repro.xp`` run store records.
    """
    corpus = request_corpus()
    heavy = run_kernels(run_kernel_count) if workers else []
    say = progress or (lambda _msg: None)
    rows: list[dict] = []
    for count in workers or ():
        say(f"service: {clients} clients x {len(corpus)} translates "
            f"+ {len(heavy)} runs, workers={count}")
        run = _one_run(count, corpus, heavy, clients, queue_depth)
        rows.append({
            "name": f"workers={count}",
            "elapsed_s": round(run.elapsed_s, 6),
            "throughput_rps": round(run.throughput_rps, 3),
            "p50_ms": run.p50_ms,
            "p95_ms": run.p95_ms,
            "p99_ms": run.p99_ms,
            "ok": run.drained and run.completed == run.requests,
        })
    for count in shards or ():
        say(f"service: cluster series, shards={count}")
        run = _one_cluster_run(count, corpus, clients)
        rows.append({
            "name": f"shards={count}",
            "elapsed_s": round(run.elapsed_s, 6),
            "throughput_rps": round(run.throughput_rps, 3),
            "p50_ms": run.p50_ms,
            "p95_ms": run.p95_ms,
            "p99_ms": run.p99_ms,
            "ok": (run.completed == run.requests and run.converged
                   and run.orphans == 0),
        })
    return rows

"""Admission control: token-bucket fairness and a degradation ladder.

PR 5 shed load with one blunt instrument — a full queue raised
``ServiceOverload`` no matter who asked or what for (972 rejections at
``workers=2`` in the committed ``BENCH_service.json``).  This module
replaces that with a graded policy the service consults *before*
enqueueing:

* **Per-session token buckets** — each session refills at
  ``session_rate`` tokens/s up to ``session_burst``; a session that
  outruns its bucket is throttled with a precise ``retry_after`` (the
  time until its next token) instead of starving its neighbours.
* **Queue-depth watermarks** — below ``low_watermark`` everything is
  admitted; between the watermarks the lowest-priority sessions are
  shed first; at/above ``high_watermark`` only *cached* work is
  admitted.
* **Cached work always progresses** — a request whose translation the
  process cache already holds costs almost nothing to serve, so the
  degradation ladder admits it at every level (and it bypasses the
  token bucket): under saturation the service degrades to a warm-cache
  server rather than rejecting blanketly.

Every rejection carries the decision tag, the observed queue depth and
a ``retry_after`` hint that crosses the wire, so clients back off
instead of hammering and operators can reconstruct *why* any request
was refused from the incident log alone.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class AdmissionPolicy:
    """How the service grades admission under load."""

    #: Session token-bucket refill rate (requests/second).
    session_rate: float = 1000.0
    #: Session token-bucket capacity (burst size).
    session_burst: float = 256.0
    #: Queue fill fraction where low-priority shedding begins.
    low_watermark: float = 0.75
    #: Queue fill fraction where only cached work is admitted.  Must
    #: stay below 1.0 at defaults: the physical queue rejects at a
    #: fill of exactly 1.0 (``queue-full``, even for cached work), so
    #: the cached-only band only exists strictly below it.
    high_watermark: float = 0.9
    #: Sessions with priority below this are shed between watermarks.
    shed_below_priority: int = 1
    #: Bounds on the retry hints handed to rejected clients.
    retry_after_min_s: float = 0.002
    retry_after_max_s: float = 0.5
    #: Fraction of ``session_burst`` a *new* bucket starts with.  A
    #: freshly (re)started shard has lost its per-session bucket state;
    #: booting buckets full would hand every returning session a whole
    #: burst at once — a thundering-herd admit straight into an empty
    #: queue.  A supervisor restarts shards with a conservative
    #: fraction (< 1.0) so returning sessions are metered by the refill
    #: rate until they have re-earned their burst.
    cold_start_fraction: float = 1.0


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    #: ``ok`` | ``ok-cached`` | ``queue-full`` | ``throttled`` |
    #: ``shed-low-priority`` | ``saturated``
    decision: str
    queue_depth: int = 0
    retry_after: float = 0.0


class TokenBucket:
    """A monotonic-clock token bucket (thread-safe)."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic,
                 initial_fraction: float = 1.0) -> None:
        self.rate = max(1e-9, rate)
        self.burst = max(1.0, burst)
        self._clock = clock
        self._tokens = self.burst * min(1.0, max(0.0, initial_fraction))
        self._stamp = clock()
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        """Current fill (refilled to now); for tests and snapshots."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            return self._tokens

    def try_take(self, amount: float = 1.0) -> float:
        """Take *amount* tokens; returns 0.0 on success, else the
        seconds until enough tokens will have refilled."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            return (amount - self._tokens) / self.rate

    def refund(self, amount: float = 1.0) -> None:
        """Return tokens whose admission was ultimately not used."""
        with self._lock:
            self._tokens = min(self.burst, self._tokens + amount)


@dataclass
class AdmissionStats:
    """Decision tag -> count, for the service stats and loadgen."""

    decisions: dict[str, int] = field(default_factory=dict)

    def count(self, decision: str) -> None:
        self.decisions[decision] = self.decisions.get(decision, 0) + 1

    def uncount(self, decision: str) -> None:
        """Roll back one *decision* count (it was superseded)."""
        remaining = self.decisions.get(decision, 0) - 1
        if remaining > 0:
            self.decisions[decision] = remaining
        else:
            self.decisions.pop(decision, None)

    def as_dict(self) -> dict[str, int]:
        return dict(sorted(self.decisions.items()))


class AdmissionController:
    """Grades every submission against the policy (see module doc)."""

    def __init__(self, policy: AdmissionPolicy, queue_depth: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.queue_depth = max(1, queue_depth)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    def _bucket(self, session: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(session)
            if bucket is None:
                bucket = self._buckets[session] = TokenBucket(
                    self.policy.session_rate, self.policy.session_burst,
                    self._clock,
                    initial_fraction=self.policy.cold_start_fraction)
            return bucket

    def _retry_after(self, qsize: int, floor: float = 0.0) -> float:
        """Hint scaled to the backlog: a deeper queue needs a longer
        back-off before a resubmission has any chance of admission."""
        policy = self.policy
        hint = max(floor, policy.retry_after_min_s
                   * max(1, qsize))
        return round(min(policy.retry_after_max_s,
                         max(policy.retry_after_min_s, hint)), 6)

    def admit(self, session: str, priority: int, qsize: int,
              is_cached: Callable[[], bool] = lambda: False,
              queue_full: bool = False) -> AdmissionDecision:
        """Grade one submission (never raises; the caller rejects).

        *is_cached* is a lazy predicate — computing the transcache
        digest costs real analysis work, so it is consulted only when
        the ladder would otherwise reject (the only point where cached
        status changes the outcome).
        """
        policy = self.policy
        depth = self.queue_depth

        def reject(decision: str, floor: float = 0.0
                   ) -> AdmissionDecision:
            self.stats.count(decision)
            return AdmissionDecision(
                admitted=False, decision=decision, queue_depth=qsize,
                retry_after=self._retry_after(qsize, floor))

        def accept(decision: str) -> AdmissionDecision:
            self.stats.count(decision)
            return AdmissionDecision(admitted=True, decision=decision,
                                     queue_depth=qsize)

        if queue_full:
            # No physical space: even cached work cannot be enqueued.
            return reject("queue-full")
        blocked: Optional[str] = None
        floor = 0.0
        if qsize >= depth * policy.high_watermark:
            blocked = "saturated"
        elif (qsize >= depth * policy.low_watermark
                and priority < policy.shed_below_priority):
            blocked = "shed-low-priority"
        else:
            wait = self._bucket(session).try_take()
            if wait > 0.0:
                blocked, floor = "throttled", wait
        if blocked is None:
            return accept("ok")
        if is_cached():
            # The degradation ladder's promise: warm work always
            # progresses, at any watermark, outside the bucket.
            return accept("ok-cached")
        return reject(blocked, floor=floor)

    def revise_to_queue_full(self, prior: AdmissionDecision,
                             session: str,
                             qsize: int) -> AdmissionDecision:
        """Turn an already-recorded admission into a queue-full reject.

        The caller admitted but then lost the race for the last
        physical queue slot.  The request must be counted exactly once
        in the stats, so the *prior* decision's count is rolled back —
        and its bucket token refunded (``ok-cached`` bypassed the
        bucket, so only ``ok`` consumed one) — before the final
        ``queue-full`` rejection is recorded.
        """
        self.stats.uncount(prior.decision)
        if prior.decision == "ok":
            self._bucket(session).refund()
        self.stats.count("queue-full")
        return AdmissionDecision(
            admitted=False, decision="queue-full", queue_depth=qsize,
            retry_after=self._retry_after(qsize))

"""``repro.service`` — the loop-acceleration service.

VEAL's translator is a *runtime service*: a co-designed VM accepts hot
loops from many applications and amortizes translation cost across
invocations (PAPER §4; the Figure 8/9 amortization argument).  This
package realises that posture at the process level:

* :class:`~repro.service.server.LoopService` — a long-running server.
  Sessions submit translate/run/figure requests into one bounded
  queue; concurrent identical translations are deduplicated
  (single-flight on the content-addressed transcache digest: one
  translation serves all waiters), every session shares the
  process-wide translation cache, and admission control (queue depth,
  per-session translation budgets) rejects excess load with typed
  :class:`~repro.errors.ServiceOverload` backpressure instead of
  queueing unboundedly.
* :mod:`~repro.service.loadgen` — a synthetic multi-client load driver
  (``python -m repro loadgen``) that measures throughput scaling with
  worker count and proves the dedup/identity contracts.
* :mod:`~repro.service.net` / :mod:`~repro.service.client` — the TCP
  front end (``python -m repro serve --port``): a length-framed,
  checksummed wire protocol (:mod:`~repro.service.wire`), a
  :class:`~repro.service.net.NetServer` wrapping the service behind a
  socket, and a :class:`~repro.service.client.LoopClient` that owns
  deadlines, retries with seeded jittered backoff, idempotent
  resubmission and circuit breaking so callers see the session API.
* :mod:`~repro.service.admission` — the degradation ladder: per-session
  token buckets, queue-depth watermarks that shed low-priority and
  uncached work first, and ``retry_after`` hints on every rejection.
* :mod:`~repro.service.cluster` — the self-healing sharded tier
  (``python -m repro serve --shards N``): a
  :class:`~repro.service.cluster.ShardSupervisor` runs N single-worker
  shard processes, each owning a rendezvous-hashed slice of transcache
  digest space, health-checks them over the wire and restarts crashed
  or hung shards with bounded backoff; a
  :class:`~repro.service.cluster.ClusterClient` learns the shard map,
  routes by digest, follows ``shard-moved`` redirects and fails over
  with idempotent resubmission (exactly-once across shard death).

The service composes the existing layers rather than bypassing them:
results come from the same :func:`repro.vm.translator.translate_loop`
/ :mod:`repro.experiments` entry points the serial path uses (and are
byte-identical to it), requests run under :mod:`repro.obs` spans and
``service.*`` metrics, and every rejection is a
:mod:`repro.resilience` incident.
"""

from __future__ import annotations

from repro.errors import (
    AdmissionRejected,
    CircuitOpenError,
    ProtocolError,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
    SessionBudgetExceeded,
    TransportError,
)
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.service.client import ClientStats, LoopClient, RetryPolicy
from repro.service.cluster import (
    ClusterClient,
    ClusterClientStats,
    ClusterConfig,
    ShardInfo,
    ShardMap,
    ShardRouter,
    ShardSupervisor,
    rendezvous_score,
)
from repro.service.net import NetConfig, NetServer
from repro.service.server import (
    LoopService,
    ServiceConfig,
    ServiceSession,
    ServiceStats,
)

__all__ = [
    "AdmissionController", "AdmissionPolicy", "AdmissionRejected",
    "CircuitOpenError", "ClientStats", "ClusterClient",
    "ClusterClientStats", "ClusterConfig", "LoopClient", "LoopService",
    "NetConfig", "NetServer", "ProtocolError", "RetryPolicy",
    "ServiceClosed", "ServiceConfig", "ServiceError", "ServiceOverload",
    "ServiceSession", "ServiceStats", "SessionBudgetExceeded",
    "ShardInfo", "ShardMap", "ShardRouter", "ShardSupervisor",
    "TokenBucket", "TransportError", "rendezvous_score",
]

"""The framed, checksummed JSON wire protocol of the loop service.

Every message on a service connection — request or response — travels
as one frame reusing the PR 3 disk-cache frame discipline
(:mod:`repro.resilience.integrity`), with its own magic:

    ``RVNW`` | version (u32) | payload length (u64) | sha256(payload)
    | payload

The payload is a UTF-8 JSON object.  Binary request/response bodies
(loops, accelerator configs, translation results) ride inside the JSON
envelope as base64-encoded pickles under the ``"body"`` key, so the
*envelope* — op, request id, session, idempotency key, error kind,
``retry_after`` hint — is a checkable, language-agnostic contract
(the ILA posture from PAPERS.md) while the bodies stay exact Python
values.

Every violation is a typed :class:`~repro.errors.ProtocolError` with a
stable ``reason`` tag mirroring the cache-integrity taxonomy:
``bad-magic``, ``version-mismatch``, ``truncated``,
``checksum-mismatch``, ``auth-mismatch``, ``empty-payload``,
``oversize``, ``bad-json``, ``forbidden-global``.
A protocol error means the stream may no longer be frame-aligned; both
peers respond by closing the connection (the client reconnects and
resubmits — safe, because single-flight dedup on the transcache digest
makes identical translations exactly-once).

Trust model
-----------
Frame bodies are pickles, and unpickling attacker-controlled bytes is
arbitrary code execution, so *both* directions deserialize through a
restricted unpickler (:func:`unpack_body`) that resolves only classes
and functions defined inside the ``repro`` package plus a short list
of safe builtins — ``os.system`` and friends are unreachable and any
other global is a ``forbidden-global`` protocol error.  That bounds
the blast radius but is **not** authentication: the per-frame digest
is plain SHA-256 (integrity only) unless both peers share a secret,
in which case it becomes HMAC-SHA256 and an unkeyed or wrongly-keyed
peer's frames fail with ``auth-mismatch``.  The server therefore
refuses to bind a non-loopback address without a secret
(:class:`repro.service.net.NetServer`); loopback-only service among
same-user processes is the supported no-secret deployment.
"""

from __future__ import annotations

import asyncio
import base64
import builtins
import hashlib
import hmac
import io
import json
import pickle
import struct
import types
from typing import Any, Optional

from repro.errors import (
    AdmissionRejected,
    ProtocolError,
    ReproError,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
    SessionBudgetExceeded,
    ShardMovedError,
)

#: Bumped whenever the envelope layout changes; a peer speaking a
#: different version is rejected with reason ``version-mismatch``.
WIRE_VERSION = 1

MAGIC = b"RVNW"
_HEADER = struct.Struct("<4sIQ32s")  # magic, version, length, sha256
HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame's payload: protects both peers from
#: a corrupted length field committing them to a gigabyte read.
MAX_PAYLOAD = 64 << 20


# -- framing ------------------------------------------------------------------

def frame_key(secret: Optional[str]) -> Optional[bytes]:
    """The per-frame HMAC key a shared *secret* derives (None = unkeyed)."""
    return secret.encode("utf-8") if secret else None


def _frame_digest(payload: bytes, key: Optional[bytes]) -> bytes:
    """Keyed frames authenticate (HMAC); unkeyed frames only integrity-
    check (plain SHA-256) — see the module trust model."""
    if key:
        return hmac.new(key, payload, hashlib.sha256).digest()
    return hashlib.sha256(payload).digest()


def encode_frame(message: dict, version: int = WIRE_VERSION,
                 key: Optional[bytes] = None) -> bytes:
    """Serialise *message* (a JSON-safe dict) into one wire frame."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    digest = _frame_digest(payload, key)
    return _HEADER.pack(MAGIC, version, len(payload), digest) + payload


def check_header(header: bytes, version: int = WIRE_VERSION) -> int:
    """Validate a frame header; returns the promised payload length."""
    if len(header) < HEADER_SIZE:
        raise ProtocolError(
            f"frame header truncated: {len(header)} of {HEADER_SIZE} "
            f"bytes", reason="truncated")
    magic, found_version, length, _digest = _HEADER.unpack_from(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} != {MAGIC!r}",
                            reason="bad-magic")
    if found_version != version:
        raise ProtocolError(
            f"wire version {found_version} != {version}",
            reason="version-mismatch")
    if length == 0:
        raise ProtocolError("zero-length frame payload",
                            reason="empty-payload")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte ceiling", reason="oversize")
    return length


def decode_payload(header: bytes, payload: bytes,
                   key: Optional[bytes] = None) -> dict:
    """Checksum-validate *payload* against *header* and parse it."""
    _magic, _version, length, digest = _HEADER.unpack_from(header)
    if len(payload) != length:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes, header promised "
            f"{length}", reason="truncated")
    if not hmac.compare_digest(_frame_digest(payload, key), digest):
        if key:
            raise ProtocolError(
                "frame HMAC mismatch: peer is unkeyed or keyed with a "
                "different secret", reason="auth-mismatch")
        raise ProtocolError("frame payload sha256 mismatch",
                            reason="checksum-mismatch")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}",
                            reason="bad-json") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload is {type(message).__name__}, not an object",
            reason="bad-json")
    return message


def decode_frame(blob: bytes, key: Optional[bytes] = None) -> dict:
    """Decode one complete frame held in memory (tests, corruption)."""
    length = check_header(blob[:HEADER_SIZE])
    payload = blob[HEADER_SIZE:]
    if len(payload) > length:
        raise ProtocolError(
            f"{len(payload) - length} trailing bytes after frame",
            reason="truncated")
    return decode_payload(blob[:HEADER_SIZE], payload, key)


async def read_frame_async(reader: asyncio.StreamReader,
                           key: Optional[bytes] = None
                           ) -> Optional[dict]:
    """Read one frame from an asyncio stream; None on clean EOF.

    Partial reads across frame boundaries are the normal case for TCP
    (``readexactly`` reassembles); EOF *inside* a frame — a peer that
    died mid-send — is a ``truncated`` protocol error, never a hang.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError(
            f"connection closed {len(exc.partial)} bytes into a frame "
            f"header", reason="truncated") from None
    length = check_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)} of {length} bytes "
            f"into a frame payload", reason="truncated") from None
    return decode_payload(header, payload, key)


def read_frame_blocking(read_exactly,
                        key: Optional[bytes] = None) -> Optional[dict]:
    """Read one frame via *read_exactly(n) -> bytes* (sync client side).

    *read_exactly* must return exactly ``n`` bytes, ``b""`` on clean
    EOF before any byte arrives, or raise on timeout/short reads.
    """
    header = read_exactly(HEADER_SIZE)
    if header == b"":
        return None
    length = check_header(header)
    return decode_payload(header, read_exactly(length), key)


# -- envelope bodies ----------------------------------------------------------

#: Builtins a frame body's pickle stream may name.  Containers and
#: scalars (list/dict/tuple/str/int/float/bytes/bool/None) travel as
#: dedicated opcodes and never reach ``find_class``; this list is only
#: the handful of constructors pickle references *by name*.
_SAFE_BUILTINS = frozenset({
    "bytearray", "complex", "frozenset", "range", "set", "slice",
})


class _RestrictedUnpickler(pickle.Unpickler):
    """An unpickler that resolves only ``repro`` globals.

    ``pickle.loads`` on network bytes is arbitrary code execution —
    a stream naming ``os.system`` runs it during load.  Frame bodies
    carry exactly the reproduction's own value types (loops,
    accelerator configs, translation results, typed errors), so the
    global namespace a body may reference is pinned to classes and
    functions *defined in* the ``repro`` package plus a short builtin
    allow-list.  Everything else — other modules, module objects
    reachable as attributes of repro modules (``repro.x.os``), repro
    attributes that merely re-export foreign callables — is a
    ``forbidden-global`` protocol violation.
    """

    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins" and name in _SAFE_BUILTINS:
            return getattr(builtins, name)
        if module == "repro" or module.startswith("repro."):
            obj = super().find_class(module, name)
            defined_in = getattr(obj, "__module__", "") or ""
            if (not isinstance(obj, types.ModuleType)
                    and (defined_in == "repro"
                         or defined_in.startswith("repro."))):
                return obj
        raise pickle.UnpicklingError(
            f"frame body references forbidden global "
            f"{module}.{name}")


def pack_body(obj: Any) -> str:
    """Pickle *obj* into a JSON-safe base64 string."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_body(data: Optional[str]) -> Any:
    """Deserialize a frame body through the restricted unpickler."""
    if data is None:
        return None
    try:
        blob = base64.b64decode(data.encode("ascii"))
    except Exception as exc:  # noqa: BLE001 — anything here is protocol
        raise ProtocolError(f"undecodable frame body: {exc}",
                            reason="bad-json") from None
    try:
        return _RestrictedUnpickler(io.BytesIO(blob)).load()
    except pickle.UnpicklingError as exc:
        if "forbidden global" in str(exc):
            raise ProtocolError(str(exc),
                                reason="forbidden-global") from None
        raise ProtocolError(f"undecodable frame body: {exc}",
                            reason="bad-json") from None
    except Exception as exc:  # noqa: BLE001 — anything here is protocol
        raise ProtocolError(f"undecodable frame body: {exc}",
                            reason="bad-json") from None


# -- envelopes ----------------------------------------------------------------

def request(op: str, req_id: int, body: Any = None, *,
            session: Optional[str] = None,
            idempotency_key: Optional[str] = None,
            deadline_s: Optional[float] = None,
            **extra: Any) -> dict:
    message = {"type": "request", "op": op, "id": req_id}
    if body is not None:
        message["body"] = pack_body(body)
    if session is not None:
        message["session"] = session
    if idempotency_key is not None:
        message["idempotency_key"] = idempotency_key
    if deadline_s is not None:
        message["deadline_s"] = deadline_s
    message.update(extra)
    return message


def ok_response(req_id: Optional[int], body: Any = None) -> dict:
    message = {"type": "response", "id": req_id, "ok": True}
    if body is not None:
        message["body"] = pack_body(body)
    return message


def error_response(req_id: Optional[int], exc: BaseException) -> dict:
    """Encode *exc* as a typed error envelope.

    Structured :class:`~repro.errors.ReproError` failures cross the
    wire losslessly as a pickled body (the client re-raises the exact
    instance); the JSON envelope still names the kind, message and
    ``retry_after`` so non-Python tooling can act on rejections.
    """
    error: dict = {
        "kind": getattr(exc, "kind", "error"),
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after:
        error["retry_after"] = round(float(retry_after), 6)
    message = {"type": "response", "id": req_id, "ok": False,
               "error": error}
    if isinstance(exc, ReproError):
        try:
            message["body"] = pack_body(exc)
        except Exception:  # noqa: BLE001 — unpicklable details: envelope only
            pass
    return message


#: Error kinds the client re-raises as their typed classes even when
#: the pickled body is absent (a non-Python or minimal server).
_ERROR_CLASSES = {
    "admission-rejected": AdmissionRejected,
    "service-overload": ServiceOverload,
    "session-budget": SessionBudgetExceeded,
    "service-closed": ServiceClosed,
    "shard-moved": ShardMovedError,
    "protocol": ProtocolError,
}


def raise_error(message: dict) -> None:
    """Re-raise the failure carried by an error response envelope."""
    body = message.get("body")
    if body is not None:
        exc = unpack_body(body)
        if isinstance(exc, BaseException):
            raise exc
    error = message.get("error") or {}
    kind = error.get("kind", "error")
    cls = _ERROR_CLASSES.get(kind, ServiceError)
    exc = cls(error.get("message", f"remote {kind} failure"))
    retry_after = error.get("retry_after")
    if retry_after is not None:
        exc.retry_after = float(retry_after)
    raise exc

"""The framed, checksummed JSON wire protocol of the loop service.

Every message on a service connection — request or response — travels
as one frame reusing the PR 3 disk-cache frame discipline
(:mod:`repro.resilience.integrity`), with its own magic:

    ``RVNW`` | version (u32) | payload length (u64) | sha256(payload)
    | payload

The payload is a UTF-8 JSON object.  Binary request/response bodies
(loops, accelerator configs, translation results) ride inside the JSON
envelope as base64-encoded pickles under the ``"body"`` key, so the
*envelope* — op, request id, session, idempotency key, error kind,
``retry_after`` hint — is a checkable, language-agnostic contract
(the ILA posture from PAPERS.md) while the bodies stay exact Python
values.

Every violation is a typed :class:`~repro.errors.ProtocolError` with a
stable ``reason`` tag mirroring the cache-integrity taxonomy:
``bad-magic``, ``version-mismatch``, ``truncated``,
``checksum-mismatch``, ``empty-payload``, ``oversize``, ``bad-json``.
A protocol error means the stream may no longer be frame-aligned; both
peers respond by closing the connection (the client reconnects and
resubmits — safe, because single-flight dedup on the transcache digest
makes identical translations exactly-once).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import pickle
import struct
from typing import Any, Optional

from repro.errors import (
    AdmissionRejected,
    ProtocolError,
    ReproError,
    ServiceClosed,
    ServiceError,
    ServiceOverload,
    SessionBudgetExceeded,
)

#: Bumped whenever the envelope layout changes; a peer speaking a
#: different version is rejected with reason ``version-mismatch``.
WIRE_VERSION = 1

MAGIC = b"RVNW"
_HEADER = struct.Struct("<4sIQ32s")  # magic, version, length, sha256
HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame's payload: protects both peers from
#: a corrupted length field committing them to a gigabyte read.
MAX_PAYLOAD = 64 << 20


# -- framing ------------------------------------------------------------------

def encode_frame(message: dict, version: int = WIRE_VERSION) -> bytes:
    """Serialise *message* (a JSON-safe dict) into one wire frame."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(MAGIC, version, len(payload), digest) + payload


def check_header(header: bytes, version: int = WIRE_VERSION) -> int:
    """Validate a frame header; returns the promised payload length."""
    if len(header) < HEADER_SIZE:
        raise ProtocolError(
            f"frame header truncated: {len(header)} of {HEADER_SIZE} "
            f"bytes", reason="truncated")
    magic, found_version, length, _digest = _HEADER.unpack_from(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} != {MAGIC!r}",
                            reason="bad-magic")
    if found_version != version:
        raise ProtocolError(
            f"wire version {found_version} != {version}",
            reason="version-mismatch")
    if length == 0:
        raise ProtocolError("zero-length frame payload",
                            reason="empty-payload")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte ceiling", reason="oversize")
    return length


def decode_payload(header: bytes, payload: bytes) -> dict:
    """Checksum-validate *payload* against *header* and parse it."""
    _magic, _version, length, digest = _HEADER.unpack_from(header)
    if len(payload) != length:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes, header promised "
            f"{length}", reason="truncated")
    if hashlib.sha256(payload).digest() != digest:
        raise ProtocolError("frame payload sha256 mismatch",
                            reason="checksum-mismatch")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}",
                            reason="bad-json") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload is {type(message).__name__}, not an object",
            reason="bad-json")
    return message


def decode_frame(blob: bytes) -> dict:
    """Decode one complete frame held in memory (tests, corruption)."""
    length = check_header(blob[:HEADER_SIZE])
    payload = blob[HEADER_SIZE:]
    if len(payload) > length:
        raise ProtocolError(
            f"{len(payload) - length} trailing bytes after frame",
            reason="truncated")
    return decode_payload(blob[:HEADER_SIZE], payload)


async def read_frame_async(reader: asyncio.StreamReader
                           ) -> Optional[dict]:
    """Read one frame from an asyncio stream; None on clean EOF.

    Partial reads across frame boundaries are the normal case for TCP
    (``readexactly`` reassembles); EOF *inside* a frame — a peer that
    died mid-send — is a ``truncated`` protocol error, never a hang.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError(
            f"connection closed {len(exc.partial)} bytes into a frame "
            f"header", reason="truncated") from None
    length = check_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)} of {length} bytes "
            f"into a frame payload", reason="truncated") from None
    return decode_payload(header, payload)


def read_frame_blocking(read_exactly) -> Optional[dict]:
    """Read one frame via *read_exactly(n) -> bytes* (sync client side).

    *read_exactly* must return exactly ``n`` bytes, ``b""`` on clean
    EOF before any byte arrives, or raise on timeout/short reads.
    """
    header = read_exactly(HEADER_SIZE)
    if header == b"":
        return None
    length = check_header(header)
    return decode_payload(header, read_exactly(length))


# -- envelope bodies ----------------------------------------------------------

def pack_body(obj: Any) -> str:
    """Pickle *obj* into a JSON-safe base64 string."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_body(data: Optional[str]) -> Any:
    if data is None:
        return None
    try:
        return pickle.loads(base64.b64decode(data.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 — anything here is protocol
        raise ProtocolError(f"undecodable frame body: {exc}",
                            reason="bad-json") from None


# -- envelopes ----------------------------------------------------------------

def request(op: str, req_id: int, body: Any = None, *,
            session: Optional[str] = None,
            idempotency_key: Optional[str] = None,
            deadline_s: Optional[float] = None,
            **extra: Any) -> dict:
    message = {"type": "request", "op": op, "id": req_id}
    if body is not None:
        message["body"] = pack_body(body)
    if session is not None:
        message["session"] = session
    if idempotency_key is not None:
        message["idempotency_key"] = idempotency_key
    if deadline_s is not None:
        message["deadline_s"] = deadline_s
    message.update(extra)
    return message


def ok_response(req_id: Optional[int], body: Any = None) -> dict:
    message = {"type": "response", "id": req_id, "ok": True}
    if body is not None:
        message["body"] = pack_body(body)
    return message


def error_response(req_id: Optional[int], exc: BaseException) -> dict:
    """Encode *exc* as a typed error envelope.

    Structured :class:`~repro.errors.ReproError` failures cross the
    wire losslessly as a pickled body (the client re-raises the exact
    instance); the JSON envelope still names the kind, message and
    ``retry_after`` so non-Python tooling can act on rejections.
    """
    error: dict = {
        "kind": getattr(exc, "kind", "error"),
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after:
        error["retry_after"] = round(float(retry_after), 6)
    message = {"type": "response", "id": req_id, "ok": False,
               "error": error}
    if isinstance(exc, ReproError):
        try:
            message["body"] = pack_body(exc)
        except Exception:  # noqa: BLE001 — unpicklable details: envelope only
            pass
    return message


#: Error kinds the client re-raises as their typed classes even when
#: the pickled body is absent (a non-Python or minimal server).
_ERROR_CLASSES = {
    "admission-rejected": AdmissionRejected,
    "service-overload": ServiceOverload,
    "session-budget": SessionBudgetExceeded,
    "service-closed": ServiceClosed,
    "protocol": ProtocolError,
}


def raise_error(message: dict) -> None:
    """Re-raise the failure carried by an error response envelope."""
    body = message.get("body")
    if body is not None:
        exc = unpack_body(body)
        if isinstance(exc, BaseException):
            raise exc
    error = message.get("error") or {}
    kind = error.get("kind", "error")
    cls = _ERROR_CLASSES.get(kind, ServiceError)
    exc = cls(error.get("message", f"remote {kind} failure"))
    retry_after = error.get("retry_after")
    if retry_after is not None:
        exc.retry_after = float(retry_after)
    raise exc

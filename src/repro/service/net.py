"""Asyncio TCP transport for :class:`~repro.service.server.LoopService`.

``NetServer`` makes the in-process service reachable over a socket:
one asyncio event loop (running on a dedicated thread, so the blocking
dispatcher/pool machinery underneath is untouched) accepts
connections, reads framed requests (:mod:`repro.service.wire`),
submits them to the wrapped ``LoopService`` and writes framed
responses back.  Everything that can go wrong on the wire is handled
without trusting the peer:

* a **protocol violation** (bad magic, checksum mismatch, truncation)
  closes the connection after a best-effort typed error frame — the
  stream can no longer be assumed frame-aligned;
* a **slow-loris client** (bytes trickling in, or none at all) is cut
  off by ``idle_timeout_s`` and recorded as a ``slow-client``
  incident;
* **admission rejections** cross the wire as typed error envelopes
  carrying the ``retry_after`` hint, so clients back off instead of
  hammering;
* **untrusted peers** never reach ``pickle``: bodies decode through
  the restricted unpickler, and a non-loopback bind is refused unless
  an ``auth_secret`` upgrades frame checksums to per-frame HMAC (see
  the :mod:`repro.service.wire` trust model);
* the seeded network chaos campaign's **wire faults**
  (:func:`repro.faults.infra.claim_net_fault`) are applied on the
  response path — abort mid-frame, corrupt, truncate, stall, drop —
  each recorded as an incident at the moment it fires.

Connections are tracked for the lifetime of the server;
``active_connections()`` must be zero after ``stop()`` (the chaos
campaign's zero-orphaned-connections assertion).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs, perf
from repro.errors import ProtocolError, ReproError, TransportError
from repro.faults import infra
from repro.resilience.incidents import record_incident
from repro.service import wire
from repro.service.server import LoopService, ServiceConfig


@dataclass(frozen=True)
class NetConfig:
    """How the TCP front end listens and protects itself."""

    host: str = "127.0.0.1"
    #: 0 = pick a free ephemeral port (read it back from ``.port``).
    port: int = 0
    #: Max seconds a connection may sit idle (or trickle bytes inside
    #: a single frame) before it is closed — the slow-loris guard.
    idle_timeout_s: float = 60.0
    #: Shared secret turning per-frame checksums into HMAC-SHA256
    #: authentication (see the :mod:`repro.service.wire` trust model).
    #: Mandatory for any non-loopback ``host``: the wire carries
    #: pickled bodies, so an unauthenticated reachable port would hand
    #: request execution to anyone who can connect.
    auth_secret: Optional[str] = None
    #: The wrapped service's configuration.
    service: ServiceConfig = field(default_factory=ServiceConfig)


def is_loopback_host(host: str) -> bool:
    """Whether *host* can only be reached from this machine."""
    return (host in ("localhost", "::1", "")
            or host.startswith("127."))


def _latency_bucket_ms(elapsed_ms: float) -> int:
    """Power-of-two bucketing (matches the service latency metric)."""
    bucket = 1
    while bucket < elapsed_ms and bucket < 1 << 20:
        bucket <<= 1
    return bucket


class NetServer:
    """The loop service behind a length-framed, checksummed TCP port.

    An optional *router* (duck-typed; see
    :class:`repro.service.cluster.ShardRouter`) makes the server one
    shard of a cluster: it gets first look at every request (ownership
    checks, shard-map updates, injected shard faults) and contributes
    the shard id + map to ``hello`` responses, without this module
    importing the cluster layer.
    """

    def __init__(self, config: NetConfig = NetConfig(),
                 router=None) -> None:
        self.config = config
        self.router = router
        self.service = LoopService(config.service)
        self._key = wire.frame_key(config.auth_secret)
        self.host = config.host
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._conn_tasks: set = set()
        self._active: set[int] = set()
        self._conn_seq = 0
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "NetServer":
        """Bind, boot the wrapped service, serve on a daemon thread.

        Refuses a non-loopback bind without an ``auth_secret``: the
        wire carries pickled bodies, so exposure beyond this machine
        requires per-frame HMAC authentication (the trust model in
        :mod:`repro.service.wire`).
        """
        if self._thread is not None:
            return self
        if not is_loopback_host(self.config.host) and self._key is None:
            raise TransportError(
                f"refusing to bind non-loopback {self.config.host!r} "
                f"without an auth secret: set NetConfig.auth_secret "
                f"(serve --secret / REPRO_SERVICE_SECRET) or bind "
                f"loopback")
        self.service.start()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-net-server",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise TransportError("network server failed to start in 30s")
        if self._boot_error is not None:
            raise self._boot_error
        return self

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def stop(self, drain: bool = True):
        """Close the listener and every connection, drain the service.

        Returns the wrapped service's
        :class:`~repro.service.server.ServiceStats`.  Idempotent.
        """
        if self._stopped:
            return self.service.stats
        self._stopped = True
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # event loop already closed (boot failed/crashed)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            if self._thread.is_alive():
                record_incident(
                    "service-stall", "net",
                    "network server thread still running after the "
                    "30s stop window")
        return self.service.close(drain=drain)

    def active_connections(self) -> int:
        """Open connections right now (0 after a clean ``stop()``)."""
        return len(self._active)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — reported below
            if self._ready.is_set():
                # Crashed after start() returned: nobody is waiting on
                # _boot_error any more, so the incident log is the
                # surface operators will actually read.
                obs.inc("net.server_crashes")
                record_incident(
                    "transport", "net",
                    f"network server crashed after start: "
                    f"{type(exc).__name__}: {exc}")
            else:
                self._boot_error = TransportError(
                    f"network server crashed: {exc}")
                self._ready.set()
        finally:
            # A dead thread's loop must never be poked by stop().
            self._loop = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._accept, self.config.host, self.config.port)
        except OSError as exc:
            self._boot_error = TransportError(
                f"cannot bind {self.config.host}:{self.config.port}: "
                f"{exc}")
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop_event.wait()
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    # -- connection handling -----------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_seq += 1
        conn = self._conn_seq
        self._active.add(conn)
        obs.inc("net.connections.opened")
        obs.set_gauge("net.connections.active", len(self._active))
        try:
            with obs.span("net.connection", component="net",
                          connection=conn):
                await self._serve_connection(conn, reader, writer)
        except asyncio.CancelledError:
            pass  # server stopping: close below
        finally:
            self._active.discard(conn)
            self._conn_tasks.discard(task)
            obs.inc("net.connections.closed")
            obs.set_gauge("net.connections.active", len(self._active))
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(self, conn: int,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                message = await asyncio.wait_for(
                    wire.read_frame_async(reader, self._key),
                    timeout=self.config.idle_timeout_s)
            except asyncio.TimeoutError:
                obs.inc("net.slow_client_closed")
                record_incident(
                    "slow-client", "net",
                    f"connection {conn} made no frame progress for "
                    f"{self.config.idle_timeout_s:.1f}s; closed",
                    connection=conn)
                return
            except ProtocolError as exc:
                obs.inc("net.protocol_errors")
                record_incident(
                    "protocol", "net",
                    f"connection {conn}: {exc}", connection=conn,
                    reason=exc.reason)
                # Best-effort typed report; the stream is not
                # frame-aligned any more, so close either way.
                with contextlib.suppress(Exception):
                    writer.write(wire.encode_frame(
                        wire.error_response(None, exc), key=self._key))
                    await writer.drain()
                return
            except (ConnectionResetError, OSError):
                return
            if message is None:
                return  # clean EOF between frames
            if not await self._serve_request(conn, message, writer):
                return

    async def _serve_request(self, conn: int, message: dict,
                             writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; returns False to close the connection."""
        req_id = message.get("id")
        op = str(message.get("op", "?"))
        started = time.perf_counter()
        try:
            response = await self._dispatch(message)
        except ReproError as exc:
            obs.inc(f"net.errors.{exc.kind}")
            response = wire.error_response(req_id, exc)
        except Exception as exc:  # noqa: BLE001 — report, don't die
            obs.inc("net.errors.internal")
            response = wire.error_response(req_id, exc)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.observe(f"net.latency_ms.{op}", _latency_bucket_ms(elapsed_ms))
        obs.inc("net.requests")
        return await self._send(conn, writer, response, op)

    async def _dispatch(self, message: dict) -> dict:
        if message.get("type") != "request":
            raise ProtocolError(
                f"expected a request envelope, got "
                f"{message.get('type')!r}", reason="bad-json")
        op = message.get("op")
        req_id = message.get("id")
        session_name = str(message.get("session") or "net")
        if self.router is not None:
            early = await self.router.intercept(op, message)
            if early is not None:
                return early
        if op == "ping":
            return wire.ok_response(req_id, {"pong": True})
        if op == "artifact-fetch":
            # Registry serve: a peer shard missed locally and asks for
            # our copy.  Answered right here on the asyncio thread —
            # a stats-neutral cache peek, never a translation, never a
            # dispatcher slot — so mutually-registered shards cannot
            # deadlock each other's request pipelines.
            key = wire.unpack_body(message.get("body"))
            entry = None
            if isinstance(key, str):
                entry = perf.translation_cache().peek(key)
            if entry is not None:
                obs.inc("aot.registry_serves")
            else:
                obs.inc("aot.registry_serve_misses")
            return wire.ok_response(req_id, entry)
        if op == "hello":
            opts = wire.unpack_body(message.get("body")) or {}
            session = self.service.get_or_open_session(session_name,
                                                       **opts)
            body = {"session": session.name,
                    "priority": session.priority}
            if self.router is not None:
                body["shard"] = self.router.hello_info()
            return wire.ok_response(req_id, body)
        if op == "stats":
            return wire.ok_response(req_id, self.stats_snapshot())
        session = self.service.get_or_open_session(session_name)
        body = wire.unpack_body(message.get("body"))
        with obs.span("net.request", component="net", op=op,
                      session=session_name):
            if op == "translate":
                loop, accelerator, options = body
                future = session.translate(loop, accelerator, options)
            elif op == "run_loop":
                loop, scalars, seed = body
                future = session.run_loop(loop, scalars=scalars,
                                          seed=seed)
            elif op == "figure":
                future = session.run_figure(body)
            elif op == "suite":
                config, benchmarks, annotate = body
                future = session.run_suite(config, benchmarks=benchmarks,
                                           annotate=annotate)
            else:
                raise ProtocolError(f"unknown op {op!r}",
                                    reason="bad-json")
            result = await asyncio.wrap_future(future)
        return wire.ok_response(req_id, result)

    def stats_snapshot(self) -> dict:
        """Live service/admission/obs counters (the ``stats`` wire op).

        The cluster supervisor and the stats CLI scrape this from each
        shard — counters live in the shard's own process, so the wire
        is the only way to aggregate them fleet-wide (the exactly-once
        ``translator.core_runs`` accounting in the cluster chaos
        campaign depends on it).
        """
        body = {
            "service": self.service.stats.as_dict(),
            "admission": self.service._admission.stats.as_dict(),
            "counters": dict(obs.metrics_snapshot().get("counters", {})),
            "active_connections": len(self._active),
        }
        if self.router is not None:
            body["shard"] = self.router.describe()
        return body

    # -- response path (where wire faults land) ----------------------------

    async def _send(self, conn: int, writer: asyncio.StreamWriter,
                    message: dict, op: str) -> bool:
        frame = wire.encode_frame(message, key=self._key)
        spec = infra.claim_net_fault()
        if spec is not None:
            return await self._apply_net_fault(conn, spec, writer,
                                               frame, op)
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionResetError, OSError):
            return False
        return True

    async def _apply_net_fault(self, conn: int,
                               spec: infra.InfraFaultSpec,
                               writer: asyncio.StreamWriter,
                               frame: bytes, op: str) -> bool:
        """Sabotage this response per *spec*; incident at fire time."""
        mode = spec.mode
        obs.inc(f"net.fault.{mode.value}")
        record_incident(
            mode.value, "netfault",
            f"injected {mode.value} on {op} response over connection "
            f"{conn} ({spec.token})", token=spec.token, op=op,
            connection=conn)
        if mode is infra.InfraFaultMode.NET_DROP:
            return True  # response vanishes; client deadline trips
        if mode is infra.InfraFaultMode.NET_RESET:
            with contextlib.suppress(Exception):
                writer.write(frame[:max(1, len(frame) // 2)])
                await writer.drain()
                writer.transport.abort()
            return False
        if mode is infra.InfraFaultMode.NET_TRUNCATE:
            with contextlib.suppress(Exception):
                writer.write(frame[:max(1, len(frame) // 3)])
                await writer.drain()
            return False  # graceful close mid-frame
        if mode is infra.InfraFaultMode.NET_CORRUPT:
            corrupted = bytearray(frame)
            corrupted[wire.HEADER_SIZE] ^= 0xFF  # first payload byte
            with contextlib.suppress(Exception):
                writer.write(bytes(corrupted))
                await writer.drain()
            return True  # stream stays aligned; client will close
        if mode is infra.InfraFaultMode.NET_STALL:
            await asyncio.sleep(spec.delay_s or 1.0)
            with contextlib.suppress(Exception):
                writer.write(frame)
                await writer.drain()
            return True
        return True  # unknown mode: deliver normally

"""Functional interpreter for baseline-ISA loops.

This is the semantic ground truth of the reproduction: the loop
accelerator machine (:mod:`repro.accelerator.machine`) must produce
bit-identical register and memory results for every loop it accepts,
which the integration and property tests assert.

Integer arithmetic wraps to 64-bit two's complement, matching a 64-bit
baseline processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.cpu.memory import Memory, Value
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operand, Operation, Reg

_MASK = (1 << 64) - 1


def wrap64(value: int) -> int:
    """Wrap *value* to a signed 64-bit integer."""
    value &= _MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _shift_amount(value: int) -> int:
    return int(value) & 63


def _as_bits(value: int) -> int:
    return int(value) & _MASK


def _trunc_div(n: int, d: int) -> int:
    """Sign-correct truncating (round-toward-zero) integer division.

    Exact at any magnitude — ``int(n / d)`` detours through a float and
    silently corrupts quotients once operands exceed 2**53.
    """
    q = abs(n) // abs(d)
    return -q if (n < 0) != (d < 0) else q


def _trunc_rem(n: int, d: int) -> int:
    """Remainder matching :func:`_trunc_div` (sign follows the dividend)."""
    return n - _trunc_div(n, d) * d


class TrapError(RuntimeError):
    """Raised for conditions the hardware would trap on (e.g. CALL)."""


@dataclass
class ExecResult:
    """Outcome of running a loop to completion.

    Attributes:
        iterations: Number of iterations executed (including the final
            one whose branch fell through).
        regs: Final register file contents.
        live_outs: Values of the loop's declared live-out registers.
        dynamic_ops: Total operations executed (squashed predicated ops
            still count — they occupied an issue slot).
    """

    iterations: int
    regs: dict[Reg, Value]
    live_outs: dict[Reg, Value]
    dynamic_ops: int


class Interpreter:
    """Executes loops over a :class:`Memory`.

    ``mode`` selects the loop-driver implementation: ``"compiled"``
    runs bodies through the per-op closure tables of
    :mod:`repro.cpu.compiled` (bit-identical, much faster on hot
    loops); ``"reference"`` forces the original op-by-op path, which
    remains the semantic ground truth.  The default follows the global
    performance-engine switch (:mod:`repro.perf`).  ``execute_op`` is
    always the reference implementation regardless of mode.
    """

    def __init__(self, memory: Optional[Memory] = None,
                 mode: Optional[str] = None) -> None:
        self.memory = memory if memory is not None else Memory()
        if mode is None:
            from repro import perf
            mode = "compiled" if perf.engine_enabled() else "reference"
        if mode not in ("compiled", "reference"):
            raise ValueError(f"unknown interpreter mode {mode!r}")
        self.mode = mode

    # -- operand evaluation ------------------------------------------------

    @staticmethod
    def _value(regs: Mapping[Reg, Value], operand: Operand) -> Value:
        if isinstance(operand, Imm):
            return operand.value
        try:
            return regs[operand]
        except KeyError:
            raise KeyError(f"register {operand} read before initialisation")

    # -- single-op semantics --------------------------------------------------

    def execute_op(self, op: Operation, regs: dict[Reg, Value]) -> None:
        """Execute one operation, updating *regs* and memory."""
        if op.predicate is not None:
            if not regs.get(op.predicate, 0):
                return
        v = lambda i: self._value(regs, op.srcs[i])
        oc = op.opcode
        result: Optional[Value] = None
        if oc is Opcode.ADD:
            result = wrap64(int(v(0)) + int(v(1)))
        elif oc is Opcode.SUB:
            result = wrap64(int(v(0)) - int(v(1)))
        elif oc is Opcode.NEG:
            result = wrap64(-int(v(0)))
        elif oc is Opcode.ABS:
            result = wrap64(abs(int(v(0))))
        elif oc is Opcode.MIN:
            result = min(int(v(0)), int(v(1)))
        elif oc is Opcode.MAX:
            result = max(int(v(0)), int(v(1)))
        elif oc is Opcode.MUL:
            result = wrap64(int(v(0)) * int(v(1)))
        elif oc is Opcode.DIV:
            d = int(v(1))
            result = 0 if d == 0 else wrap64(_trunc_div(int(v(0)), d))
        elif oc is Opcode.REM:
            d = int(v(1))
            n = int(v(0))
            result = 0 if d == 0 else wrap64(_trunc_rem(n, d))
        elif oc is Opcode.AND:
            result = wrap64(_as_bits(int(v(0))) & _as_bits(int(v(1))))
        elif oc is Opcode.OR:
            result = wrap64(_as_bits(int(v(0))) | _as_bits(int(v(1))))
        elif oc is Opcode.XOR:
            result = wrap64(_as_bits(int(v(0))) ^ _as_bits(int(v(1))))
        elif oc is Opcode.NOT:
            result = wrap64(~int(v(0)))
        elif oc is Opcode.SHL:
            result = wrap64(int(v(0)) << _shift_amount(int(v(1))))
        elif oc is Opcode.SHR:
            result = wrap64(int(v(0)) >> _shift_amount(int(v(1))))
        elif oc is Opcode.SHRU:
            result = wrap64(_as_bits(int(v(0))) >> _shift_amount(int(v(1))))
        elif oc is Opcode.CMPEQ:
            result = int(v(0) == v(1))
        elif oc is Opcode.CMPNE:
            result = int(v(0) != v(1))
        elif oc is Opcode.CMPLT:
            result = int(v(0) < v(1))
        elif oc is Opcode.CMPLE:
            result = int(v(0) <= v(1))
        elif oc is Opcode.CMPGT:
            result = int(v(0) > v(1))
        elif oc is Opcode.CMPGE:
            result = int(v(0) >= v(1))
        elif oc is Opcode.SELECT:
            result = v(1) if v(0) else v(2)
        elif oc in (Opcode.MOV, Opcode.LDI):
            result = v(0)
        elif oc is Opcode.FADD:
            result = float(v(0)) + float(v(1))
        elif oc is Opcode.FSUB:
            result = float(v(0)) - float(v(1))
        elif oc is Opcode.FMUL:
            result = float(v(0)) * float(v(1))
        elif oc is Opcode.FDIV:
            d = float(v(1))
            result = 0.0 if d == 0.0 else float(v(0)) / d
        elif oc is Opcode.FNEG:
            result = -float(v(0))
        elif oc is Opcode.FABS:
            result = abs(float(v(0)))
        elif oc is Opcode.FMIN:
            result = min(float(v(0)), float(v(1)))
        elif oc is Opcode.FMAX:
            result = max(float(v(0)), float(v(1)))
        elif oc is Opcode.FCMPLT:
            result = int(float(v(0)) < float(v(1)))
        elif oc is Opcode.FCMPLE:
            result = int(float(v(0)) <= float(v(1)))
        elif oc is Opcode.FCMPEQ:
            result = int(float(v(0)) == float(v(1)))
        elif oc is Opcode.ITOF:
            result = float(int(v(0)))
        elif oc is Opcode.FTOI:
            result = wrap64(int(float(v(0))))
        elif oc in (Opcode.LOAD, Opcode.FLOAD):
            addr = int(v(0)) + int(v(1))
            result = self.memory.read(addr)
        elif oc in (Opcode.STORE, Opcode.FSTORE):
            addr = int(v(0)) + int(v(1))
            self.memory.write(addr, v(2))
        elif oc is Opcode.BR:
            pass  # handled by the loop driver
        elif oc is Opcode.JUMP:
            pass
        elif oc in (Opcode.CALL, Opcode.BRL):
            raise TrapError(f"op{op.opid}: calls cannot be interpreted "
                            f"inside a loop body")
        elif oc is Opcode.CCA_OP:
            # A collapsed subgraph executes its inner ops atomically.
            for inner in op.inner:
                self.execute_op(inner, regs)
            return
        else:  # pragma: no cover - exhaustive over the ISA
            raise NotImplementedError(oc)
        if result is not None and op.dests:
            regs[op.dests[0]] = result

    # -- loop driver --------------------------------------------------------------

    def run_loop(self, loop: Loop, live_in_values: Mapping[Reg, Value],
                 max_iterations: int = 1_000_000) -> ExecResult:
        """Execute *loop* until its loop-back branch falls through.

        Args:
            loop: The loop to run.
            live_in_values: Initial values for every live-in register
                (array bases, scalar inputs, the induction start value).
            max_iterations: Safety bound against non-terminating loops.
        """
        if self.mode == "compiled":
            from repro.cpu.compiled import compile_loop, run_compiled
            return run_compiled(loop, compile_loop(loop), self.memory,
                                dict(live_in_values), max_iterations)
        regs: dict[Reg, Value] = dict(live_in_values)
        iterations = 0
        dynamic_ops = 0
        while True:
            iterations += 1
            taken = False
            for op in loop.body:
                dynamic_ops += 1
                if op.opcode is Opcode.BR:
                    cond = self._value(regs, op.srcs[0]) if op.srcs else 0
                    taken = bool(cond)
                    break
                self.execute_op(op, regs)
            if not taken:
                break
            if iterations >= max_iterations:
                raise TrapError(f"loop {loop.name!r} exceeded "
                                f"{max_iterations} iterations")
        live_outs = {r: regs[r] for r in loop.live_outs if r in regs}
        return ExecResult(iterations=iterations, regs=regs,
                          live_outs=live_outs, dynamic_ops=dynamic_ops)


def run_cfg(interp: Interpreter, cfg, regs: dict[Reg, Value],
            max_steps: int = 5_000_000) -> dict[Reg, Value]:
    """Execute a control flow graph functionally.

    Follows the block convention of :class:`repro.ir.cfg.BasicBlock`: a
    conditional ``BR`` takes ``successors[0]`` when its condition is
    non-zero and ``successors[1]`` otherwise; everything else falls
    through to ``successors[0]``.  Used as ground truth when testing
    CFG-level transforms (if-conversion, inlining).
    """
    from repro.ir.opcodes import Opcode as _Op

    label = cfg.entry
    steps = 0
    while True:
        block = cfg.blocks[label]
        next_label: Optional[str] = None
        for op in block.ops:
            steps += 1
            if steps > max_steps:
                raise TrapError("CFG execution exceeded step budget")
            if op.opcode is _Op.BR:
                cond = interp._value(regs, op.srcs[0]) if op.srcs else 0
                if cond:
                    next_label = block.successors[0]
                else:
                    next_label = (block.successors[1]
                                  if len(block.successors) > 1 else None)
                break
            if op.opcode is _Op.JUMP:
                next_label = block.successors[0]
                break
            interp.execute_op(op, regs)
        if next_label is None:
            next_label = block.successors[0] if block.successors else None
        if next_label is None:
            return regs
        label = next_label


def standard_live_ins(loop: Loop, memory: Memory,
                      scalars: Optional[Mapping[str, Value]] = None
                      ) -> dict[Reg, Value]:
    """Conventional live-in binding: array bases from *memory*,
    counter-style registers to 0, user scalars from *scalars*.
    """
    scalars = dict(scalars or {})
    values: dict[Reg, Value] = {}
    array_names = {a.name for a in loop.arrays}
    for reg in loop.live_ins:
        if reg.name in array_names:
            values[reg] = memory.base_of(reg.name)
        elif reg.name in scalars:
            raw = scalars[reg.name]
            values[reg] = float(raw) if reg.space == "fp" else raw
        else:
            values[reg] = 0.0 if reg.space == "fp" else 0
    return values

"""In-order scalar pipeline timing model.

Models the baseline processors of the evaluation (Section 4.3):

* ``ARM11``-like single-issue core (the speedup baseline),
* ``Cortex-A8``-like dual-issue core (the "2-Issue" bar of Figure 10),
* a hypothetical quad-issue core (the "4-Issue" bar).

The model is an in-order scoreboard: operations issue in program order,
at most ``issue_width`` per cycle, stalling for operand readiness (RAW)
and for structural hazards on integer units, FP units and memory ports.
Loop timing is measured in steady state by simulating warm iterations,
so cross-iteration stalls through recurrences are captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.loop import Loop
from repro.ir.opcodes import (
    DEFAULT_LATENCY,
    LatencyModel,
    Opcode,
    ResourceClass,
    info,
)
from repro.ir.ops import Reg


@dataclass(frozen=True)
class CPUConfig:
    """Scalar core parameters.

    ``taken_branch_penalty`` models pipeline refill on the loop-back
    branch; short for these cores because the loop branch is trivially
    predicted.
    """

    name: str
    issue_width: int
    int_units: int
    fp_units: int
    mem_ports: int
    taken_branch_penalty: int = 0
    area_mm2: float = 0.0

    def units_for(self, resource: ResourceClass) -> int:
        if resource is ResourceClass.FP:
            return self.fp_units
        if resource is ResourceClass.MEM:
            return self.mem_ports
        if resource is ResourceClass.BRANCH:
            return 1
        return self.int_units


#: Single-issue embedded core, 8-stage pipeline, no FPU in the real part;
#: we grant it one FP unit so FP benchmarks have a defined baseline
#: (documented substitution — see DESIGN.md).  4.34 mm^2 at 90 nm.
ARM11 = CPUConfig(name="ARM11", issue_width=1, int_units=1, fp_units=1,
                  mem_ports=1, taken_branch_penalty=1, area_mm2=4.34)

#: Dual-issue, 13-stage pipeline, 10.2 mm^2 at 90 nm.
CORTEX_A8 = CPUConfig(name="Cortex-A8", issue_width=2, int_units=2,
                      fp_units=1, mem_ports=1, taken_branch_penalty=1,
                      area_mm2=10.2)

#: Hypothetical quad-issue Cortex-A8 with larger L2 (Section 4.3);
#: 14.0 mm^2 at 90 nm.
QUAD_ISSUE = CPUConfig(name="4-Issue", issue_width=4, int_units=4,
                       fp_units=2, mem_ports=2, taken_branch_penalty=1,
                       area_mm2=14.0)


class InOrderPipeline:
    """Cycle-level timing of loops on an in-order scalar core."""

    def __init__(self, config: CPUConfig,
                 latency_model: LatencyModel = DEFAULT_LATENCY) -> None:
        self.config = config
        self.latency_model = latency_model

    # -- core issue model -------------------------------------------------

    def _simulate(self, loop: Loop, iterations: int) -> list[int]:
        """Issue *iterations* repetitions of the body in order.

        Returns the cycle at which each iteration's branch issued —
        differencing gives per-iteration cost.
        """
        cfg = self.config
        ready: dict[Reg, int] = {}
        # busy[cycle] tracks per-resource usage; dict keyed by cycle since
        # loop bodies are small and schedules sparse.
        issue_used: dict[int, int] = {}
        unit_used: dict[tuple[int, ResourceClass], int] = {}
        cycle = 0
        branch_cycles: list[int] = []
        for _ in range(iterations):
            for op in loop.body:
                resource = info(op.opcode).resource
                if resource is ResourceClass.CCA:
                    # Scalar cores execute the collapsed subgraph as its
                    # constituent RISC ops; callers should not time
                    # CCA-mapped loops on a CPU, but handle it sanely.
                    resource = ResourceClass.INT
                earliest = cycle
                for reg in op.src_regs():
                    earliest = max(earliest, ready.get(reg, 0))
                t = earliest
                while True:
                    if issue_used.get(t, 0) < cfg.issue_width and \
                            unit_used.get((t, resource), 0) < cfg.units_for(resource):
                        break
                    t += 1
                issue_used[t] = issue_used.get(t, 0) + 1
                unit_used[(t, resource)] = unit_used.get((t, resource), 0) + 1
                latency = self.latency_model.latency(op.opcode)
                for dest in op.dests:
                    ready[dest] = t + latency
                cycle = t  # in-order: later ops issue no earlier
                if op.opcode is Opcode.BR:
                    branch_cycles.append(t)
                    cycle = t + 1 + cfg.taken_branch_penalty
        return branch_cycles

    def _timing_key(self, loop: Loop, kind: str, extra) -> tuple:
        """Content-addressed identity of one timing query.

        The simulation is a pure function of (core config, latency
        model, loop body), so every ``InOrderPipeline`` instance in the
        process — one per :class:`~repro.vm.runtime.VirtualMachine`,
        i.e. one per (sweep point x benchmark) — can share results.
        """
        from repro.perf.digest import cpu_key, loop_digest
        return (cpu_key(self.config, self.latency_model),
                loop_digest(loop), kind, extra)

    def steady_cycles_per_iteration(self, loop: Loop,
                                    warm: int = 4, measure: int = 8) -> float:
        """Steady-state cycles per loop iteration."""
        from repro import perf
        key = None
        if perf.engine_enabled():
            key = self._timing_key(loop, "steady", (warm, measure))
            cached = perf.cycles_cache.get(key)
            if cached is not None:
                return cached
        branches = self._simulate(loop, warm + measure)
        if len(branches) < warm + measure:
            raise ValueError(f"loop {loop.name!r} has no loop-back branch")
        span = branches[warm + measure - 1] - branches[warm - 1]
        result = span / measure
        if key is not None:
            perf.cycles_cache[key] = result
        return result

    def loop_cycles(self, loop: Loop, trip_count: Optional[int] = None) -> float:
        """Total cycles to run *loop* for *trip_count* iterations."""
        trips = loop.trip_count if trip_count is None else trip_count
        if trips <= 0:
            return 0.0
        from repro import perf
        key = None
        if perf.engine_enabled():
            key = self._timing_key(loop, "loop", trips)
            cached = perf.cycles_cache.get(key)
            if cached is not None:
                return cached
        per_iter = self.steady_cycles_per_iteration(loop)
        # First iteration pays cold scheduling; approximate with one
        # extra body latency via a 1-iteration simulation.
        first = self._simulate(loop, 1)[0] + 1
        result = first + per_iter * (trips - 1)
        if key is not None:
            perf.cycles_cache[key] = result
        return result

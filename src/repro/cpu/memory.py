"""Flat physical memory model.

The accelerator operates on physical addresses (Section 2.1: "The
accelerators also operate using physical addresses, so that no address
translation is needed"), so both the scalar interpreter and the loop
accelerator machine share this simple element-addressed memory.  One
address holds one element (int or double); the stream model, not byte
layout, is what the experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.ir.loop import ArrayDecl

Value = Union[int, float]


class Memory:
    """Sparse element-addressed memory with array allocation support."""

    def __init__(self) -> None:
        self._cells: dict[int, Value] = {}
        self._next_base = 0x1000
        self._arrays: dict[str, tuple[int, int]] = {}  # name -> (base, length)
        self.load_count = 0
        self.store_count = 0

    # -- allocation -----------------------------------------------------------

    def allocate(self, name: str, length: int, base: int | None = None) -> int:
        """Reserve *length* elements for array *name*; returns its base."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already allocated")
        if base is None:
            base = self._next_base
        self._next_base = max(self._next_base, base + length + 64)
        self._arrays[name] = (base, length)
        return base

    def allocate_arrays(self, arrays: Iterable[ArrayDecl]) -> dict[str, int]:
        """Allocate every array, sharing bases inside alias groups."""
        bases: dict[str, int] = {}
        group_base: dict[str, int] = {}
        for arr in arrays:
            if arr.may_alias is not None and arr.may_alias in group_base:
                base = group_base[arr.may_alias]
                self._arrays[arr.name] = (base, arr.length)
            else:
                base = self.allocate(arr.name, arr.length)
                if arr.may_alias is not None:
                    group_base[arr.may_alias] = base
            bases[arr.name] = base
        return bases

    def base_of(self, name: str) -> int:
        return self._arrays[name][0]

    # -- access ----------------------------------------------------------------

    def read(self, addr: int) -> Value:
        self.load_count += 1
        return self._cells.get(int(addr), 0)

    def write(self, addr: int, value: Value) -> None:
        self.store_count += 1
        self._cells[int(addr)] = value

    def peek(self, addr: int) -> Value:
        """Read without counting (for test assertions)."""
        return self._cells.get(int(addr), 0)

    def write_array(self, name: str, values: Sequence[Value]) -> None:
        base, length = self._arrays[name]
        if len(values) > length:
            raise ValueError(f"{len(values)} values exceed array "
                             f"{name!r} length {length}")
        for i, v in enumerate(values):
            self._cells[base + i] = v

    def read_array(self, name: str, count: int | None = None) -> list[Value]:
        base, length = self._arrays[name]
        n = length if count is None else count
        return [self._cells.get(base + i, 0) for i in range(n)]

    def snapshot(self) -> dict[int, Value]:
        """A copy of all touched cells, for equivalence checking."""
        return dict(self._cells)

    def clone(self) -> "Memory":
        """Deep copy (same allocations, same contents, fresh counters)."""
        other = Memory()
        other._cells = dict(self._cells)
        other._next_base = self._next_base
        other._arrays = dict(self._arrays)
        return other

    def restore_from(self, other: "Memory") -> None:
        """Adopt *other*'s cell contents (commit or roll back a clone).

        The guarded runtime executes kernels on clones and commits
        whichever clone the verdict blesses; access counters stay local.
        """
        self._cells = dict(other._cells)
        self._next_base = max(self._next_base, other._next_base)
        self._arrays = dict(other._arrays)

"""Compiled loop bodies: the interpreter's per-op closure fast path.

:meth:`repro.cpu.interpreter.Interpreter.execute_op` re-discovers each
operation's semantics on every dynamic execution: a ~40-arm ``if/elif``
chain over the opcode, operand wrappers rebuilt per op, predicate and
destination checks in the loop.  For a hot loop every one of those
decisions is invariant across iterations, so this module makes them
exactly once per loop: :func:`compile_loop` lowers each operation into
a closure with its opcode semantics, operand accessors, predicate
check and destination write bound at compile time, and
:func:`run_compiled` drives the closure table with the same iteration /
dynamic-op accounting as the reference ``run_loop``.

The reference interpreter remains the semantic ground truth: the
compiled path must be bit-identical on registers, memory and trip
counts (asserted by ``tests/test_compiled_equivalence.py`` and
cross-checkable at runtime via ``repro.vm.guard``).  Disable globally
with ``REPRO_ENGINE=0`` or per-interpreter with ``mode="reference"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cpu.interpreter import (
    ExecResult,
    TrapError,
    _as_bits,
    _shift_amount,
    _trunc_div,
    _trunc_rem,
    wrap64,
)
from repro.cpu.memory import Memory, Value
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operand, Operation, Reg

#: A compiled operation: mutates *regs* and *memory* in place.
Step = Callable[[dict, Memory], None]
#: Reads one operand out of the register file.
Getter = Callable[[dict], Value]

_COMPILED_ATTR = "_veal_compiled"


def _getter(operand: Operand) -> Getter:
    """Operand accessor with the binding decided at compile time."""
    if isinstance(operand, Imm):
        const = operand.value
        return lambda regs: const
    reg = operand

    def read(regs, _r=reg):
        try:
            return regs[_r]
        except KeyError:
            raise KeyError(
                f"register {_r} read before initialisation") from None
    return read


def _dest_writer(op: Operation,
                 compute: Callable[[dict, Memory], Value]) -> Step:
    """Bind the destination write (or the discard) at compile time."""
    if op.dests:
        dest = op.dests[0]

        def step(regs, memory, _d=dest, _c=compute):
            regs[_d] = _c(regs, memory)
        return step

    def effect_only(regs, memory, _c=compute):
        _c(regs, memory)
    return effect_only


def _compile_value_op(op: Operation) -> Step:
    """Compile one non-memory, non-control operation."""
    oc = op.opcode
    g = [_getter(s) for s in op.srcs]

    if oc is Opcode.ADD:
        a, b = g
        fn = lambda r, m: wrap64(int(a(r)) + int(b(r)))
    elif oc is Opcode.SUB:
        a, b = g
        fn = lambda r, m: wrap64(int(a(r)) - int(b(r)))
    elif oc is Opcode.NEG:
        a, = g
        fn = lambda r, m: wrap64(-int(a(r)))
    elif oc is Opcode.ABS:
        a, = g
        fn = lambda r, m: wrap64(abs(int(a(r))))
    elif oc is Opcode.MIN:
        a, b = g
        fn = lambda r, m: min(int(a(r)), int(b(r)))
    elif oc is Opcode.MAX:
        a, b = g
        fn = lambda r, m: max(int(a(r)), int(b(r)))
    elif oc is Opcode.MUL:
        a, b = g
        fn = lambda r, m: wrap64(int(a(r)) * int(b(r)))
    elif oc is Opcode.DIV:
        a, b = g

        def fn(r, m, _a=a, _b=b):
            d = int(_b(r))
            return 0 if d == 0 else wrap64(_trunc_div(int(_a(r)), d))
    elif oc is Opcode.REM:
        a, b = g

        def fn(r, m, _a=a, _b=b):
            d = int(_b(r))
            return 0 if d == 0 else wrap64(_trunc_rem(int(_a(r)), d))
    elif oc is Opcode.AND:
        a, b = g
        fn = lambda r, m: wrap64(_as_bits(int(a(r))) & _as_bits(int(b(r))))
    elif oc is Opcode.OR:
        a, b = g
        fn = lambda r, m: wrap64(_as_bits(int(a(r))) | _as_bits(int(b(r))))
    elif oc is Opcode.XOR:
        a, b = g
        fn = lambda r, m: wrap64(_as_bits(int(a(r))) ^ _as_bits(int(b(r))))
    elif oc is Opcode.NOT:
        a, = g
        fn = lambda r, m: wrap64(~int(a(r)))
    elif oc is Opcode.SHL:
        a, b = g
        fn = lambda r, m: wrap64(int(a(r)) << _shift_amount(int(b(r))))
    elif oc is Opcode.SHR:
        a, b = g
        fn = lambda r, m: wrap64(int(a(r)) >> _shift_amount(int(b(r))))
    elif oc is Opcode.SHRU:
        a, b = g
        fn = lambda r, m: wrap64(
            _as_bits(int(a(r))) >> _shift_amount(int(b(r))))
    elif oc is Opcode.CMPEQ:
        a, b = g
        fn = lambda r, m: int(a(r) == b(r))
    elif oc is Opcode.CMPNE:
        a, b = g
        fn = lambda r, m: int(a(r) != b(r))
    elif oc is Opcode.CMPLT:
        a, b = g
        fn = lambda r, m: int(a(r) < b(r))
    elif oc is Opcode.CMPLE:
        a, b = g
        fn = lambda r, m: int(a(r) <= b(r))
    elif oc is Opcode.CMPGT:
        a, b = g
        fn = lambda r, m: int(a(r) > b(r))
    elif oc is Opcode.CMPGE:
        a, b = g
        fn = lambda r, m: int(a(r) >= b(r))
    elif oc is Opcode.SELECT:
        a, b, c = g
        fn = lambda r, m: b(r) if a(r) else c(r)
    elif oc in (Opcode.MOV, Opcode.LDI):
        a, = g
        fn = lambda r, m: a(r)
    elif oc is Opcode.FADD:
        a, b = g
        fn = lambda r, m: float(a(r)) + float(b(r))
    elif oc is Opcode.FSUB:
        a, b = g
        fn = lambda r, m: float(a(r)) - float(b(r))
    elif oc is Opcode.FMUL:
        a, b = g
        fn = lambda r, m: float(a(r)) * float(b(r))
    elif oc is Opcode.FDIV:
        a, b = g

        def fn(r, m, _a=a, _b=b):
            d = float(_b(r))
            return 0.0 if d == 0.0 else float(_a(r)) / d
    elif oc is Opcode.FNEG:
        a, = g
        fn = lambda r, m: -float(a(r))
    elif oc is Opcode.FABS:
        a, = g
        fn = lambda r, m: abs(float(a(r)))
    elif oc is Opcode.FMIN:
        a, b = g
        fn = lambda r, m: min(float(a(r)), float(b(r)))
    elif oc is Opcode.FMAX:
        a, b = g
        fn = lambda r, m: max(float(a(r)), float(b(r)))
    elif oc is Opcode.FCMPLT:
        a, b = g
        fn = lambda r, m: int(float(a(r)) < float(b(r)))
    elif oc is Opcode.FCMPLE:
        a, b = g
        fn = lambda r, m: int(float(a(r)) <= float(b(r)))
    elif oc is Opcode.FCMPEQ:
        a, b = g
        fn = lambda r, m: int(float(a(r)) == float(b(r)))
    elif oc is Opcode.ITOF:
        a, = g
        fn = lambda r, m: float(int(a(r)))
    elif oc is Opcode.FTOI:
        a, = g
        fn = lambda r, m: wrap64(int(float(a(r))))
    else:  # pragma: no cover - dispatch covers the full value ISA
        raise NotImplementedError(oc)
    return _dest_writer(op, fn)


def _compile_op(op: Operation) -> Step:
    """Compile one operation, predicate check included."""
    oc = op.opcode
    if oc in (Opcode.LOAD, Opcode.FLOAD):
        a, b = (_getter(s) for s in op.srcs)
        step = _dest_writer(
            op, lambda r, m, _a=a, _b=b: m.read(int(_a(r)) + int(_b(r))))
    elif oc in (Opcode.STORE, Opcode.FSTORE):
        a, b, c = (_getter(s) for s in op.srcs)

        def step(regs, memory, _a=a, _b=b, _c=c):
            memory.write(int(_a(regs)) + int(_b(regs)), _c(regs))
    elif oc in (Opcode.BR, Opcode.JUMP):
        def step(regs, memory):
            pass
    elif oc in (Opcode.CALL, Opcode.BRL):
        opid = op.opid

        def step(regs, memory, _opid=opid):
            raise TrapError(f"op{_opid}: calls cannot be interpreted "
                            f"inside a loop body")
    elif oc is Opcode.CCA_OP:
        inner = [_compile_op(i) for i in op.inner]

        def step(regs, memory, _inner=tuple(inner)):
            for sub in _inner:
                sub(regs, memory)
    else:
        step = _compile_value_op(op)

    if op.predicate is not None:
        pred, body = op.predicate, step

        def step(regs, memory, _p=pred, _b=body):  # noqa: F811
            if not regs.get(_p, 0):
                return
            _b(regs, memory)
    return step


@dataclass
class CompiledLoop:
    """One loop body lowered to a closure table.

    ``steps`` covers the operations up to (and excluding) the loop-back
    branch; ``branch_cond`` reads the branch condition, or is None when
    the body has no conditional ``BR`` — the loop then runs exactly
    once, matching the reference driver (an unconditional ``BR`` reads
    as condition 0 there).  ``ops_per_iteration`` matches the reference
    dynamic-op accounting: every op up to and including the branch.
    """

    loop_name: str
    steps: tuple[Step, ...]
    branch_cond: Optional[Getter]
    ops_per_iteration: int


def compile_loop(loop: Loop) -> CompiledLoop:
    """Lower *loop* once; memoised on the loop instance.

    Loops are immutable by convention (transforms create new objects
    via ``rebuild``/``copy``), so instance-attached memoisation is
    safe; the attribute is excluded from pickling (closures do not
    cross process boundaries — workers recompile on first use).
    """
    cached = loop.__dict__.get(_COMPILED_ATTR)
    if cached is not None:
        return cached

    steps: list[Step] = []
    branch_cond: Optional[Getter] = None
    ops = 0
    for op in loop.body:
        ops += 1
        if op.opcode is Opcode.BR:
            branch_cond = _getter(op.srcs[0]) if op.srcs else None
            break
        steps.append(_compile_op(op))
    compiled = CompiledLoop(
        loop_name=loop.name, steps=tuple(steps),
        branch_cond=branch_cond, ops_per_iteration=ops)
    loop.__dict__[_COMPILED_ATTR] = compiled
    return compiled


def run_compiled(loop: Loop, compiled: CompiledLoop, memory: Memory,
                 regs: dict[Reg, Value],
                 max_iterations: int = 1_000_000) -> ExecResult:
    """Drive the closure table; mirrors the reference ``run_loop``."""
    steps = compiled.steps
    cond = compiled.branch_cond
    iterations = 0
    dynamic_ops = 0
    while True:
        iterations += 1
        for step in steps:
            step(regs, memory)
        dynamic_ops += compiled.ops_per_iteration
        taken = bool(cond(regs)) if cond is not None else False
        if not taken:
            break
        if iterations >= max_iterations:
            raise TrapError(f"loop {loop.name!r} exceeded "
                            f"{max_iterations} iterations")
    live_outs = {r: regs[r] for r in loop.live_outs if r in regs}
    return ExecResult(iterations=iterations, regs=regs,
                      live_outs=live_outs, dynamic_ops=dynamic_ops)

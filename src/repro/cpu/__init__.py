"""Scalar baseline processor: functional interpreter and timing models."""

from repro.cpu.interpreter import (
    ExecResult,
    Interpreter,
    TrapError,
    standard_live_ins,
    wrap64,
)
from repro.cpu.memory import Memory, Value
from repro.cpu.pipeline import (
    ARM11,
    CORTEX_A8,
    CPUConfig,
    InOrderPipeline,
    QUAD_ISSUE,
)

__all__ = [
    "ARM11", "CORTEX_A8", "CPUConfig", "ExecResult", "InOrderPipeline",
    "Interpreter", "Memory", "QUAD_ISSUE", "TrapError", "Value",
    "standard_live_ins", "wrap64",
]

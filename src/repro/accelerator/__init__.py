"""Loop accelerator: configuration, structural models, machine, area."""

from repro.accelerator.addrgen import (
    AddressGenerator,
    ResolvedStream,
    distribute_streams,
    resolve_pattern,
)
from repro.accelerator.area import AreaBreakdown, accelerator_area
from repro.accelerator.config import INFINITE_LA, LAConfig, PROPOSED_LA, UNBOUNDED
from repro.accelerator.fifo import StreamFIFO
from repro.accelerator.machine import (
    AcceleratorFault,
    AcceleratorRun,
    KernelImage,
    LoopAccelerator,
)
from repro.accelerator.jit import (
    SpecializationUnsupported,
    SpecializedKernel,
    execute_pipelined,
    specialize,
)
from repro.accelerator.pipeline_executor import (
    OverlappedRun,
    execute_overlapped,
)
from repro.accelerator.regfile import RegisterFile

__all__ = [
    "AcceleratorFault", "AcceleratorRun", "AddressGenerator",
    "AreaBreakdown", "INFINITE_LA", "KernelImage", "LAConfig",
    "LoopAccelerator", "OverlappedRun", "PROPOSED_LA", "RegisterFile",
    "ResolvedStream", "SpecializationUnsupported", "SpecializedKernel",
    "StreamFIFO", "UNBOUNDED", "accelerator_area", "distribute_streams",
    "execute_overlapped", "execute_pipelined", "resolve_pattern",
    "specialize",
]

"""Loop accelerator configuration space.

Section 3.2's proposed generalized design: "1 CCA, 2 integer units, 2
double-precision floating-point units, 16 floating-point and integer
registers, 16 load memory streams (time-multiplexed among 4 address
generators), 8 store memory streams (time-multiplexed among 2 address
generators), and a maximum II of 16.  This is sufficient for attaining
83% of the speedup possible using a hypothetical loop accelerator with
infinite resources."

The design-space experiments (Figures 3 and 4) sweep each field
individually against :data:`INFINITE_LA`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cca.model import CCAConfig, DEFAULT_CCA
from repro.scheduler.mii import CCA_UNIT, FP_UNIT, INT_UNIT, LOAD_GEN, STORE_GEN

#: Stand-in for "unbounded" in the infinite-resource baseline.
UNBOUNDED = 1 << 20


@dataclass(frozen=True)
class LAConfig:
    """Parameters of one loop accelerator instance.

    Attributes:
        num_int_units: Integer FUs (execute arith/logic/shift/mul).
        num_fp_units: Fully pipelined double-precision FUs.
        num_ccas: CCA instances (0 disables CCA mapping).
        cca: Shape of each CCA.
        num_int_regs / num_fp_regs: Register file capacities for
            live-ins, live-outs, constants and cross-stage temporaries.
        load_streams / store_streams: Maximum distinct reference
            patterns per direction.
        load_addr_gens / store_addr_gens: Address generators the streams
            are time-multiplexed onto; these bound memory issue slots
            per cycle (footnote 2: streams != memory ports).
        max_ii: Control-store depth — "each FU needs to be able to
            execute II different instructions, and thus maximum
            supported II determines the size of the control structure."
        bus_latency: System-bus cycles for processor<->LA transfers
            (fixed 10 cycles in the paper, same as L2 access).
        code_cache_entries: Translated loops retained by the VM's
            software code cache (16 in Section 4.3, ~48 KB).
        supports_speculation: Hardware support for speculative memory
            accesses, enabling while-loops and loops with side exits
            [21, 24].  The paper precludes this "to minimize the
            architectural impact outside the accelerator itself"
            (Section 2.2); the flag exists so the cost of that decision
            can be measured (see ``repro.experiments.speculation``).
    """

    name: str = "LA"
    num_int_units: int = 2
    num_fp_units: int = 2
    num_ccas: int = 1
    cca: CCAConfig = DEFAULT_CCA
    num_int_regs: int = 16
    num_fp_regs: int = 16
    load_streams: int = 16
    store_streams: int = 8
    load_addr_gens: int = 4
    store_addr_gens: int = 2
    max_ii: int = 16
    bus_latency: int = 10
    code_cache_entries: int = 16
    supports_speculation: bool = False

    def units(self) -> dict[str, int]:
        """Resource pools in the scheduler's vocabulary."""
        return {
            INT_UNIT: self.num_int_units,
            FP_UNIT: self.num_fp_units,
            CCA_UNIT: self.num_ccas,
            LOAD_GEN: self.load_addr_gens,
            STORE_GEN: self.store_addr_gens,
        }

    def with_(self, **changes) -> "LAConfig":
        """A copy with *changes* applied (for design-space sweeps)."""
        return replace(self, **changes)


#: The generalized design proposed in Section 3.2.
PROPOSED_LA = LAConfig(name="VEAL-proposed")

#: The infinite-resource baseline of the design space exploration:
#: "loops are modulo scheduled onto a machine with unlimited registers,
#: FUs, memory ports, etc."  No CCA — the infinite machine has unlimited
#: plain integer units, which subsume it.
INFINITE_LA = LAConfig(
    name="infinite",
    num_int_units=UNBOUNDED,
    num_fp_units=UNBOUNDED,
    num_ccas=0,
    num_int_regs=UNBOUNDED,
    num_fp_regs=UNBOUNDED,
    load_streams=UNBOUNDED,
    store_streams=UNBOUNDED,
    load_addr_gens=UNBOUNDED,
    store_addr_gens=UNBOUNDED,
    max_ii=UNBOUNDED,
)

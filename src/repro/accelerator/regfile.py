"""The accelerator's memory-mapped register file.

"Input data that is not streamed into the accelerator, such as constants
or scalar inputs, are written into a register file.  Typically, this
register file is memory mapped and must be initialized before invoking
the accelerator." (Section 2.1.)  Scalar outputs "are read directly from
the memory mapped register file upon loop completion" (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Value = Union[int, float]


class RegisterFile:
    """A fixed-capacity register file with write/read accounting."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self._values: dict[int, Value] = {}
        self.writes = 0
        self.reads = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(
                f"{self.name} register index {index} out of range "
                f"(capacity {self.capacity})")

    def write(self, index: int, value: Value) -> None:
        self._check(index)
        self._values[index] = value
        self.writes += 1

    def read(self, index: int) -> Value:
        self._check(index)
        self.reads += 1
        return self._values.get(index, 0)

    def initialize(self, values: dict[int, Value]) -> int:
        """Memory-mapped initialisation before invocation.

        Returns the number of bus writes performed, which the timing
        model charges against the system bus.
        """
        for index, value in values.items():
            self.write(index, value)
        return len(values)

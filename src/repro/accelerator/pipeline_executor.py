"""Event-driven overlapped execution of a modulo schedule.

:class:`~repro.accelerator.machine.LoopAccelerator` executes loops
iteration-by-iteration and derives timing from the schedule — sound,
because a validated schedule cannot change dataflow values.  This module
goes the other way: it executes the software pipeline *as the hardware
would*, issuing every scheduled operation at its absolute cycle
``t(op) + k * II`` with values resolved through per-iteration dataflow
contexts (the executable form of modulo variable expansion).  Memory
operations commit in true global-time order across overlapped
iterations.

Running both executors and the scalar interpreter over the same data and
demanding bit-identical results is the strongest correctness statement
in the repository: the schedule, the dependence distances, the
memory-ordering edges and the register rotation all have to be right
simultaneously.

As a by-product the executor measures what a timing formula cannot: real
per-resource utilization of the kernel (how full Figure 5's reservation
table actually runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.accelerator.machine import AcceleratorFault, KernelImage
from repro.cpu.interpreter import Interpreter
from repro.cpu.memory import Memory, Value
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operation, Reg
from repro.scheduler.mii import sched_resource


@dataclass
class OverlappedRun:
    """Result of an overlapped (pipelined) execution."""

    iterations: int
    cycles: int
    live_outs: dict[Reg, Value]
    max_inflight_iterations: int
    utilization: dict[str, float] = field(default_factory=dict)


class _DataflowResolver:
    """Resolves register values across overlapped iteration contexts.

    ``value_of[(opid, k)]`` holds the register environment *delta* op
    ``opid`` produced in iteration ``k``.  Reads resolve through the
    loop's textual def-use structure: the nearest preceding definition in
    the same iteration, else the final definition one iteration back,
    else the live-in value.
    """

    def __init__(self, loop: Loop, live_ins: Mapping[Reg, Value]) -> None:
        self.loop = loop
        self.live_ins = dict(live_ins)
        self.values: dict[tuple[int, int], dict[Reg, Value]] = {}
        # producer[(position, reg)] = (producer_opid, distance)
        self._producer: dict[tuple[int, Reg], tuple[int, int]] = {}
        last_def: dict[Reg, int] = {}
        final_def: dict[Reg, int] = {}
        for op in loop.body:
            for d in op.dests:
                final_def[d] = op.opid
        for index, op in enumerate(loop.body):
            regs = set(op.src_regs())
            for reg in regs:
                if reg in last_def:
                    self._producer[(index, reg)] = (last_def[reg], 0)
                elif reg in final_def:
                    self._producer[(index, reg)] = (final_def[reg], 1)
            for d in op.dests:
                last_def[d] = op.opid
        self._index = {op.opid: i for i, op in enumerate(loop.body)}

    def read(self, position: int, reg: Reg, k: int) -> Value:
        """Value of *reg* as read at body *position* in iteration *k*."""
        producer = self._producer.get((position, reg))
        if producer is None:
            return self._live_in(reg)
        opid, distance = producer
        source_iter = k - distance
        if source_iter < 0:
            return self._live_in(reg)
        env = self.values.get((opid, source_iter))
        if env is None or reg not in env:
            raise AcceleratorFault(
                f"value of {reg} (op{opid}, iteration {source_iter}) read "
                f"before it was produced — schedule ordering bug")
        return env[reg]

    def _live_in(self, reg: Reg) -> Value:
        if reg in self.live_ins:
            return self.live_ins[reg]
        raise AcceleratorFault(f"register {reg} has no producer and no "
                               f"live-in value")

    def write(self, opid: int, k: int, reg: Reg, value: Value) -> None:
        self.values.setdefault((opid, k), {})[reg] = value

    def operand(self, position: int, operand, k: int) -> Value:
        if isinstance(operand, Imm):
            return operand.value
        return self.read(position, operand, k)


def _precompute_unscheduled(resolver: _DataflowResolver,
                            interp: Interpreter, loop: Loop,
                            schedule_times: dict[int, int],
                            trips: int) -> None:
    """Evaluate the control/address slices for every iteration upfront.

    These ops live on the dedicated hardware (address generators, loop
    control) with no schedule slot; their values are pure functions of
    iteration-start state — the affine-pattern guarantee means none of
    them ever reads an FU or memory result, so they can be rolled
    forward iteratively before the datapath events run.
    """
    unscheduled = [op for op in loop.body
                   if op.opid not in schedule_times
                   and op.opcode is not Opcode.BR]
    for k in range(trips):
        for op in unscheduled:
            position = resolver._index[op.opid]
            regs: dict[Reg, Value] = {}
            for reg in set(op.src_regs()):
                regs[reg] = resolver.read(position, reg, k)
            interp.execute_op(op, regs)
            resolver.values[(op.opid, k)] = {d: regs[d] for d in op.dests
                                             if d in regs}


def _fault_site(op: Operation) -> str:
    """Classify where a produced value physically lives for injection.

    CCA outputs come straight off the combined array, load results sit
    in the stream FIFOs, and every other FU result lands in the rotating
    register file.
    """
    if op.opcode is Opcode.CCA_OP:
        return "cca"
    if op.is_load:
        return "fifo"
    return "regfile"


def execute_overlapped(image: KernelImage, memory: Memory,
                       live_in_values: Mapping[Reg, Value],
                       trip_count: Optional[int] = None,
                       fault_hook: Optional[Callable[..., Value]] = None
                       ) -> OverlappedRun:
    """Execute *image* with true software-pipeline overlap.

    Restrictions: fixed-trip loops only (a speculative while-loop would
    need store buffering to undo over-fetched iterations, which this
    executor does not model).

    ``fault_hook`` is the fault-injection seam: when given, every value
    a scheduled op writes into machine state passes through
    ``fault_hook(site, op, iteration, reg, value)`` — ``site`` is
    ``"regfile"``, ``"fifo"`` or ``"cca"`` — and the (possibly
    corrupted) return value is what downstream consumers observe.  The
    differential guard (:mod:`repro.vm.guard`) exists to catch exactly
    these corruptions.
    """
    loop = image.loop
    schedule = image.schedule
    ii = schedule.ii
    trips = loop.trip_count if trip_count is None else trip_count
    if trips <= 0:
        return OverlappedRun(0, 0, {}, 0)

    resolver = _DataflowResolver(loop, live_in_values)
    interp = Interpreter(memory)
    _precompute_unscheduled(resolver, interp, loop, schedule.times, trips)

    # Event list: every scheduled op of every iteration at its absolute
    # cycle, ordered by (cycle, iteration, body position) — the body
    # position tiebreak keeps same-cycle memory ops in program order,
    # which the distance-aware memory edges already guarantee is safe.
    events: list[tuple[int, int, int, Operation]] = []
    for op in loop.body:
        t = schedule.times.get(op.opid)
        if t is None:
            continue
        for k in range(trips):
            events.append((t + k * ii, k, resolver._index[op.opid], op))
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    busy: dict[str, int] = {}
    last_completion = 0
    active: set[int] = set()
    max_inflight = 0
    iteration_last_event: dict[int, int] = {}
    for t, k, position, op in events:
        iteration_last_event[k] = max(iteration_last_event.get(k, 0), t)

    for t, k, position, op in events:
        active.add(k)
        active = {kk for kk in active if iteration_last_event[kk] >= t}
        max_inflight = max(max_inflight, len(active))
        regs: dict[Reg, Value] = {}
        for reg in set(op.src_regs()):
            regs[reg] = resolver.read(position, reg, k)
        interp.execute_op(op, regs)
        env: dict[Reg, Value] = {}
        for d in op.dests:
            if d in regs:
                env[d] = regs[d]
            else:
                # Squashed predicated op: the register keeps its prior
                # value — copy it through this context so later readers
                # resolve correctly.
                try:
                    env[d] = resolver.read(position, d, k)
                except AcceleratorFault:
                    pass  # never initialised and never read later
        if fault_hook is not None and env:
            site = _fault_site(op)
            for d in list(env):
                env[d] = fault_hook(site, op, k, d, env[d])
        resolver.values[(op.opid, k)] = env
        resource = sched_resource(op)
        busy[resource] = busy.get(resource, 0) + 1
        last_completion = max(last_completion,
                              t + image.dfg.latency(op.opid))

    # Live-outs come from the final iteration's (or live-in) values.
    live_outs: dict[Reg, Value] = {}
    for reg in loop.live_outs:
        producer = None
        for op in loop.body:
            if reg in op.dests:
                producer = op.opid
        if producer is None:
            if reg in resolver.live_ins:
                live_outs[reg] = resolver.live_ins[reg]
            continue
        env = resolver.values.get((producer, trips - 1), {})
        if reg in env:
            live_outs[reg] = env[reg]

    units = schedule.units
    utilization = {}
    total_cycles = max(last_completion, (trips - 1) * ii
                       + schedule.completion_time(image.dfg))
    for resource, count in busy.items():
        capacity = units.get(resource, 0) * ii * trips
        if capacity:
            utilization[resource] = count / capacity
    return OverlappedRun(iterations=trips, cycles=total_cycles,
                         live_outs=live_outs,
                         max_inflight_iterations=max_inflight,
                         utilization=utilization)

"""Analytical die-area model (90 nm standard cell).

The paper's estimates (Section 3.2) were collected with Cadence tools
and an IBM 90 nm library: the proposed accelerator consumes 3.8 mm^2,
of which the two double-precision FPUs take 2.38 mm^2; an ARM11 is
4.34 mm^2 and a Cortex-A8 10.2 mm^2.  We fit simple per-component
constants to those anchors so sweeps over the configuration space
produce area estimates with the right relative magnitudes — the
conclusions only depend on ratios (e.g. "the loop accelerator could be
added ... for less than the cost of a second simple core").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import LAConfig, UNBOUNDED

# Component constants (mm^2, 90 nm), fitted to the paper's anchors.
FP_UNIT_MM2 = 1.19          # 2 units = 2.38 mm^2 (paper)
INT_UNIT_MM2 = 0.085        # simple ALU with multiplier
CCA_MM2 = 0.22              # 15-op combinational array + routing
REGISTER_MM2 = 0.004        # per 64-bit register incl. ports
LOAD_GEN_MM2 = 0.045        # address generator + FIFO head
STORE_GEN_MM2 = 0.045
STREAM_STATE_MM2 = 0.007    # base/stride/count state per stream
CONTROL_PER_II_MM2 = 0.016  # control store scales with max II
FIXED_OVERHEAD_MM2 = 0.18   # bus interface, decoders, misc


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of one accelerator configuration."""

    fp_units: float
    int_units: float
    ccas: float
    registers: float
    addr_gens: float
    stream_state: float
    control: float
    fixed: float

    @property
    def total(self) -> float:
        return (self.fp_units + self.int_units + self.ccas + self.registers
                + self.addr_gens + self.stream_state + self.control
                + self.fixed)


def accelerator_area(config: LAConfig) -> AreaBreakdown:
    """Estimate the die area of *config* in mm^2 (90 nm).

    Raises ValueError for unbounded (infinite baseline) configurations,
    which have no physical realisation.
    """
    for value in (config.num_int_units, config.num_fp_units,
                  config.load_streams, config.store_streams,
                  config.max_ii, config.num_int_regs, config.num_fp_regs):
        if value >= UNBOUNDED:
            raise ValueError("cannot estimate area of an unbounded design")
    return AreaBreakdown(
        fp_units=FP_UNIT_MM2 * config.num_fp_units,
        int_units=INT_UNIT_MM2 * config.num_int_units,
        ccas=CCA_MM2 * config.num_ccas,
        registers=REGISTER_MM2 * (config.num_int_regs + config.num_fp_regs),
        addr_gens=LOAD_GEN_MM2 * config.load_addr_gens
        + STORE_GEN_MM2 * config.store_addr_gens,
        stream_state=STREAM_STATE_MM2 * (config.load_streams
                                         + config.store_streams),
        control=CONTROL_PER_II_MM2 * config.max_ii,
        fixed=FIXED_OVERHEAD_MM2,
    )

"""Address generators.

"At the top of the accelerator ... address generators stream data into
the accelerator.  The address patterns typically follow a simple,
deterministic pattern ... Address generators can be time multiplexed to
fetch multiple streams." (Section 2.1.)

An :class:`AddressGenerator` is programmed with one or more resolved
stream patterns (base + stride); each call to :meth:`address` yields the
iteration-k address of a stream.  The machine model cross-checks every
address the datapath computes against the generator's prediction, which
is an end-to-end validation of the stream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.streams import StreamPattern
from repro.ir.ops import Reg


@dataclass(frozen=True)
class ResolvedStream:
    """A stream pattern with its base bound to a concrete address.

    ``base`` is the pattern's affine base evaluated against the
    accelerator register file at invocation time (array base registers
    plus any scalar terms).
    """

    stream_id: int
    base: int
    stride: int
    is_store: bool

    def address(self, iteration: int) -> int:
        """Address this stream touches on loop iteration *iteration*."""
        return self.base + self.stride * iteration


def resolve_pattern(pattern: StreamPattern, stream_id: int,
                    live_ins: Mapping[Reg, object]) -> ResolvedStream:
    """Bind *pattern*'s symbolic base to initial register values."""
    base = pattern.base.const
    for (space, name), coeff in pattern.base.terms:
        reg = Reg(name, space)
        if reg not in live_ins:
            raise KeyError(f"stream base needs live-in {reg} which was "
                           f"not provided")
        base += coeff * int(live_ins[reg])
    return ResolvedStream(stream_id=stream_id, base=base,
                          stride=pattern.stride, is_store=pattern.is_store)


class AddressGenerator:
    """One physical generator, time-multiplexed over several streams.

    The generator sustains one access per cycle; with ``len(streams)``
    streams mapped onto it, each stream is serviced once per
    ``len(streams)`` cycles, so the modulo scheduler must have
    ``II >= ceil(streams / generators)`` for full-rate streaming —
    exactly the time-multiplexing headroom Section 3.1 describes for
    large, high-II loops.
    """

    def __init__(self, gen_id: int) -> None:
        self.gen_id = gen_id
        self.streams: list[ResolvedStream] = []
        self.issued = 0

    def attach(self, stream: ResolvedStream) -> None:
        self.streams.append(stream)

    @property
    def occupancy(self) -> int:
        return len(self.streams)

    def address(self, stream_id: int, iteration: int) -> int:
        for stream in self.streams:
            if stream.stream_id == stream_id:
                self.issued += 1
                return stream.address(iteration)
        raise KeyError(f"stream {stream_id} not attached to generator "
                       f"{self.gen_id}")


def distribute_streams(streams: list[ResolvedStream],
                       num_generators: int) -> list[AddressGenerator]:
    """Round-robin streams over generators (the hardware's static mux)."""
    if not streams:
        return []
    if num_generators < 1:
        raise ValueError("streams present but no address generators")
    gens = [AddressGenerator(g) for g in range(num_generators)]
    for index, stream in enumerate(streams):
        gens[index % len(gens)].attach(stream)
    return gens

"""FIFO buffers between the memory streams and the function units.

"When data is streamed in from the memory system, it is placed in FIFOs
that are accessed by function units." (Section 2.1.)  The machine model
uses one input FIFO per load stream and one output FIFO per store
stream; occupancy statistics let tests confirm the decoupling actually
buffers data ahead of the compute pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.cpu.memory import Value


class StreamFIFO:
    """A bounded FIFO carrying one stream's elements."""

    def __init__(self, stream_id: int, capacity: int = 8) -> None:
        self.stream_id = stream_id
        self.capacity = capacity
        self._queue: deque[Value] = deque()
        self.max_occupancy = 0
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, value: Value) -> None:
        if self.full:
            raise OverflowError(
                f"stream {self.stream_id}: FIFO overflow (capacity "
                f"{self.capacity})")
        self._queue.append(value)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> Value:
        if self.empty:
            raise IndexError(f"stream {self.stream_id}: FIFO underflow")
        self.pops += 1
        return self._queue.popleft()

    def peek(self) -> Value:
        if self.empty:
            raise IndexError(f"stream {self.stream_id}: FIFO underflow")
        return self._queue[0]

"""The loop accelerator machine: functional + cycle-level execution.

Executes a translated loop (a :class:`KernelImage`) against a
:class:`~repro.cpu.memory.Memory`:

* **Functionally** — iteration by iteration with full predication
  semantics, producing bit-identical results to the scalar interpreter
  (the software-pipelined overlap cannot change values because the
  schedule provably respects every dependence; ``validate_schedule``
  guarantees that, and the equivalence tests check it end to end).
* **Cycle-level timing** — iteration *k* of the kernel launches at
  ``k * II``; the loop completes when the last iteration's last result
  retires, so ``kernel = (N - 1) * II + span``.  Invocation pays the
  memory-mapped register-file initialisation and two system-bus
  synchronisations (Section 3: "include synchronization overheads from
  copying results to and from the accelerator over a 10 cycle system
  bus").
* **Structural checks** — every address the datapath would compute is
  cross-checked against the programmed address generators, and load
  data flows through per-stream FIFOs whose occupancy is tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.accelerator.addrgen import (
    ResolvedStream,
    distribute_streams,
    resolve_pattern,
)
from repro.accelerator.config import LAConfig
from repro.accelerator.fifo import StreamFIFO
from repro.accelerator.regfile import RegisterFile
from repro.analysis.partition import LoopPartition
from repro.analysis.streams import StreamAnalysis
from repro.cpu.interpreter import Interpreter
from repro.cpu.memory import Memory, Value
from repro.ir.dfg import DataflowGraph
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Reg
from repro.scheduler.regalloc import RegisterAssignment
from repro.scheduler.rotation import PhysicalAssignment
from repro.scheduler.schedule import ModuloSchedule


# Re-exported from the structured failure taxonomy; historically this
# class was defined here and importers still reach it via this module.
from repro.errors import AcceleratorFault  # noqa: E402  (re-export)


@dataclass
class KernelImage:
    """Everything the VM installs into the code cache for one loop.

    Attributes:
        loop: The CCA-mapped loop body (compound ops included).
        dfg: Dataflow graph of that body.
        partition: control/address/compute classification.
        schedule: The modulo schedule of the compute partition.
        streams: Stream analysis (patterns per memory opid).
        registers: Operand mapping into the LA register files.
        config: The accelerator this image was compiled for.
        rotation: Physical placement of cross-stage values (modulo
            variable expansion); None for hand-built images.
        digest: The transcache content digest this image was cached
            under; the specialization tier (:mod:`repro.accelerator.jit`)
            keys its compiled-function cache on it so service workers
            and ``run_loop`` cache hints reuse one compilation.  None
            for hand-built or uncached images (the jit derives a
            content key itself).
    """

    loop: Loop
    dfg: DataflowGraph
    partition: LoopPartition
    schedule: ModuloSchedule
    streams: StreamAnalysis
    registers: RegisterAssignment
    config: LAConfig
    rotation: Optional[PhysicalAssignment] = None
    digest: Optional[str] = None

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def stage_count(self) -> int:
        return self.schedule.stage_count

    def control_words(self) -> int:
        """Size of the LA control image, in 32-bit words.

        Each FU needs one instruction slot per kernel cycle (Section
        3.1: maximum supported II determines the size of the control
        structure), plus per-stream configuration.
        """
        fu_count = (self.config.num_int_units + self.config.num_fp_units
                    + self.config.num_ccas)
        stream_count = (self.streams.num_load_streams
                        + self.streams.num_store_streams)
        return self.ii * fu_count + 3 * stream_count


@dataclass
class AcceleratorRun:
    """Result of one accelerator invocation."""

    iterations: int
    kernel_cycles: int
    overhead_cycles: int
    live_outs: dict[Reg, Value]
    fifo_max_occupancy: dict[int, int] = field(default_factory=dict)
    addresses_checked: int = 0

    @property
    def total_cycles(self) -> int:
        return self.kernel_cycles + self.overhead_cycles


class LoopAccelerator:
    """A loop accelerator instance attached to the system bus."""

    def __init__(self, config: LAConfig) -> None:
        self.config = config
        self.int_regs = RegisterFile("int", config.num_int_regs)
        self.fp_regs = RegisterFile("fp", config.num_fp_regs)
        self.invocations = 0

    # -- admission ------------------------------------------------------------

    def admits(self, image: KernelImage) -> Optional[str]:
        """Why this accelerator cannot run *image*, or None if it can."""
        if image.ii > self.config.max_ii:
            return (f"II {image.ii} exceeds maximum supported II "
                    f"{self.config.max_ii}")
        if image.streams.num_load_streams > self.config.load_streams:
            return (f"{image.streams.num_load_streams} load streams exceed "
                    f"the {self.config.load_streams} supported")
        if image.streams.num_store_streams > self.config.store_streams:
            return (f"{image.streams.num_store_streams} store streams exceed "
                    f"the {self.config.store_streams} supported")
        if image.registers.int_regs > self.config.num_int_regs:
            return "integer register demand exceeds the register file"
        if image.registers.fp_regs > self.config.num_fp_regs:
            return "floating-point register demand exceeds the register file"
        return None

    # -- timing-only estimation ---------------------------------------------

    def estimate(self, image: KernelImage,
                 trip_count: Optional[int] = None) -> AcceleratorRun:
        """Cycle estimate without functional execution.

        Design-space sweeps translate thousands of (loop, config) pairs;
        the kernel timing is fully determined by the schedule, so the
        functional pass (which exists to prove correctness) can be
        skipped.  Produces the same cycle counts `invoke` reports.
        """
        reason = self.admits(image)
        if reason is not None:
            raise AcceleratorFault(reason)
        loop = image.loop
        trips = loop.trip_count if trip_count is None else trip_count
        scalar_ins = sum(1 for reg in image.registers.mapping
                         if reg in set(loop.live_ins))
        kernel = image.schedule.kernel_cycles(trips, image.dfg)
        overhead = (2 * self.config.bus_latency + scalar_ins
                    + len(loop.live_outs))
        return AcceleratorRun(iterations=trips, kernel_cycles=kernel,
                              overhead_cycles=overhead, live_outs={})

    # -- invocation ------------------------------------------------------------

    def invoke(self, image: KernelImage, memory: Memory,
               live_in_values: Mapping[Reg, Value],
               trip_count: Optional[int] = None) -> AcceleratorRun:
        """Run *image* for *trip_count* iterations.

        The invocation is atomic (Section 2.1): exceptions either wait
        or abort, so there is no mid-loop architectural state to model.
        """
        reason = self.admits(image)
        if reason is not None:
            raise AcceleratorFault(reason)
        self.invocations += 1
        loop = image.loop
        trips = loop.trip_count if trip_count is None else trip_count

        # Memory-mapped register file initialisation.
        int_writes = 0
        fp_writes = 0
        for reg, phys in image.registers.mapping.items():
            if reg in live_in_values:
                if reg.space == "fp":
                    self.fp_regs.write(min(phys, self.config.num_fp_regs - 1),
                                       live_in_values[reg])
                    fp_writes += 1
                else:
                    self.int_regs.write(min(phys, self.config.num_int_regs - 1),
                                        live_in_values[reg])
                    int_writes += 1

        # Program the address generators.
        load_streams: list[ResolvedStream] = []
        store_streams: list[ResolvedStream] = []
        pattern_stream_id: dict[int, int] = {}
        seen: dict[tuple, int] = {}
        for op in loop.body:
            if not op.is_memory:
                continue
            pattern = image.streams.patterns.get(op.opid)
            if pattern is None:
                raise AcceleratorFault(
                    f"op{op.opid}: no stream pattern — loop should have "
                    f"been rejected")
            key = pattern.key()
            if key not in seen:
                stream_id = len(seen)
                seen[key] = stream_id
                resolved = resolve_pattern(pattern, stream_id, live_in_values)
                (store_streams if pattern.is_store else load_streams).append(
                    resolved)
            pattern_stream_id[op.opid] = seen[key]
        resolved_by_id = {s.stream_id: s
                          for s in load_streams + store_streams}
        load_gens = distribute_streams(load_streams,
                                       self.config.load_addr_gens)
        fifos = {s.stream_id: StreamFIFO(s.stream_id)
                 for s in load_streams}

        # Functional execution with address cross-checking.
        interp = Interpreter(memory)
        regs: dict[Reg, Value] = dict(live_in_values)
        addresses_checked = 0
        iterations = 0
        for k in range(trips):
            iterations += 1
            taken = False
            for op in loop.body:
                if op.opcode is Opcode.BR:
                    taken = bool(interp._value(regs, op.srcs[0]))
                    break
                if op.is_memory:
                    stream = resolved_by_id[pattern_stream_id[op.opid]]
                    expected = stream.address(k)
                    actual = int(interp._value(regs, op.srcs[0]))
                    if len(op.srcs) > 1:
                        actual += int(interp._value(regs, op.srcs[1]))
                    if actual != expected:
                        raise AcceleratorFault(
                            f"op{op.opid} iteration {k}: datapath address "
                            f"{actual} != address generator {expected}")
                    addresses_checked += 1
                    if op.is_load:
                        fifo = fifos[stream.stream_id]
                        if fifo.full:
                            fifo.pop()  # oldest element was consumed
                        fifo.push(memory.peek(expected))
                interp.execute_op(op, regs)
            if not taken:
                break

        live_outs = {r: regs[r] for r in loop.live_outs if r in regs}

        kernel = image.schedule.kernel_cycles(iterations, image.dfg)
        overhead = (2 * self.config.bus_latency
                    + int_writes + fp_writes + len(loop.live_outs))
        return AcceleratorRun(
            iterations=iterations,
            kernel_cycles=kernel,
            overhead_cycles=overhead,
            live_outs=live_outs,
            fifo_max_occupancy={sid: f.max_occupancy
                                for sid, f in fifos.items()},
            addresses_checked=addresses_checked,
        )

"""Kernel specialization: compile a modulo schedule into one function.

The third engine tier (``REPRO_ENGINE=2``).  The overlapped executor
(:mod:`repro.accelerator.pipeline_executor`) pays event-queue dispatch
for every scheduled op of every iteration; this module instead emits the
whole software pipeline as *generated Python source* — compiled once per
(image, trip count) with :func:`compile`/``exec`` — and caches the
function in-process keyed on the translation digest.

Codegen shape (one function per scheduled loop):

* **prologue / steady state / epilogue** — the schedule's ``j``-windows
  (iteration ``k``, stage ``s`` executes in window ``j = k + s``) are
  emitted in ascending order; within a window, ops are ordered by
  ``(cycle within II, iteration, body position)``, which provably equals
  the event executor's global ``(absolute cycle, k, position)`` order,
  so memory commits in the identical global order.  Windows ``j < SC``
  and the final ``SC - 1`` windows are unrolled statically (they contain
  live-in reads resp. partial stages); the steady state runs as a loop
  unrolled ``S`` times per trip.
* **modulo variable expansion** — each value lives in one of
  ``S = stage_count + 1`` rotating register-set slots, renamed to the
  local variable ``v{opid}_{dest}_{k mod S}`` (one extra slot keeps a
  distance-1 read tail alive across the wrap).
* **strength-reduced streams** — the unscheduled address/control slice
  is eliminated entirely: every memory op's address is its affine stream
  pattern, materialised as a base local plus per-iteration increments
  (``a += stride * S`` once per unrolled steady trip).
* **closed-form timing** — cycles, max inflight iterations and
  per-resource utilization are computed from schedule arithmetic at
  specialization time, term-for-term identical to what the event
  executor measures, so figure text stays byte-identical.

Anything the specializer cannot prove it can reproduce bit-identically
falls back to the reference executors (negative-cached per image), and a
guard cross-check mismatch routes through the PR 1 deopt/blacklist path:
the reference interpreter remains ground truth.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro import obs
from repro.accelerator.machine import (AcceleratorFault, AcceleratorRun,
                                       KernelImage)
from repro.accelerator.pipeline_executor import (OverlappedRun,
                                                 execute_overlapped)
from repro.cpu.interpreter import (_as_bits, _shift_amount, _trunc_div,
                                   _trunc_rem, wrap64)
from repro.cpu.memory import Memory, Value
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operation, Reg
from repro.scheduler.mii import sched_resource


class SpecializationUnsupported(Exception):
    """The image has a shape the specializer does not reproduce exactly."""


@dataclass
class SpecializedKernel:
    """One compiled loop: the generated function plus closed-form facts."""

    loop_name: str
    source: str
    fn: Callable
    trips: int
    #: Positional live-in parameters of ``fn`` (after the cells dict).
    params: tuple[Reg, ...]
    #: Live-out registers produced by the function, in return order.
    out_regs: tuple[Reg, ...]
    #: Live-ins that must be present in the runtime mapping (parameters
    #: plus stream-base registers); a missing one falls back to the
    #: reference executor, which reports the fault identically.
    required: frozenset
    #: Closed-form OverlappedRun facts.
    cycles: int
    max_inflight: int
    utilization: dict[str, float]
    #: Closed-form AcceleratorRun facts (vm.run_loop tier).
    n_mem_ops: int
    load_stream_ops: dict[int, int] = field(default_factory=dict)

    def run(self, memory: Memory, live_ins: Mapping[Reg, Value]
            ) -> dict[Reg, Value]:
        """Execute over *memory*; returns the produced live-outs."""
        values = self.fn(memory._cells,
                         *[live_ins[reg] for reg in self.params])
        outs = dict(zip(self.out_regs, values))
        return outs


# -- in-process code cache ----------------------------------------------------

#: key -> SpecializedKernel, or None for a negative (unsupported) entry.
#: Ordered LRU: hits move to the back, eviction pops the front.  The
#: key embeds the trip count, so a long-lived service seeing varying
#: trips for one loop would otherwise grow this without bound.
_code_cache: "OrderedDict[tuple, Optional[SpecializedKernel]]" = OrderedDict()
#: loop name -> keys, for guard-driven invalidation; ``_key_loop`` is
#: the reverse map so LRU eviction can clean the per-loop sets.
_loop_keys: dict[str, set] = {}
_key_loop: dict[tuple, str] = {}
_stats = {"compiled": 0, "hits": 0, "unsupported": 0, "deopts": 0,
          "evicted": 0}

#: Max cached kernels (``REPRO_JIT_CACHE`` / :func:`set_code_cache_limit`
#: override).  Negative (unsupported) entries count too — they are tiny,
#: but an unbounded negative set is still a leak.
DEFAULT_CODE_CACHE_LIMIT = 256
JIT_CACHE_ENV = "REPRO_JIT_CACHE"

_code_cache_limit_override: Optional[int] = None

#: Test seam: when set, applied to the specialized live-outs as
#: ``hook(loop_name, live_outs) -> live_outs`` so guard tests can force
#: a cross-check mismatch without touching real machine state.
_test_corruption: Optional[Callable[[str, dict], dict]] = None


def set_test_corruption(hook: Optional[Callable[[str, dict], dict]]) -> None:
    global _test_corruption
    _test_corruption = hook


def set_code_cache_limit(limit: Optional[int]) -> None:
    """Process-wide cap override (None restores env/default); applies
    on the next insert — existing entries are not evicted eagerly."""
    global _code_cache_limit_override
    _code_cache_limit_override = (None if limit is None
                                  else max(1, int(limit)))


def code_cache_limit() -> int:
    if _code_cache_limit_override is not None:
        return _code_cache_limit_override
    raw = os.environ.get(JIT_CACHE_ENV)
    if raw:
        # Permissive like REPRO_JOBS: Settings.from_env rejects loudly.
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_CODE_CACHE_LIMIT


def _forget_key(key: tuple) -> None:
    """Unlink *key* from the per-loop invalidation index."""
    loop_name = _key_loop.pop(key, None)
    if loop_name is not None:
        keys = _loop_keys.get(loop_name)
        if keys is not None:
            keys.discard(key)
            if not keys:
                _loop_keys.pop(loop_name, None)


def _evict_to_limit() -> None:
    limit = code_cache_limit()
    while len(_code_cache) > limit:
        key, _kernel = _code_cache.popitem(last=False)
        _forget_key(key)
        _stats["evicted"] += 1
        obs.inc("jit.code_cache_evicted")
    obs.set_gauge("jit.code_cache_size", len(_code_cache))


def clear_code_cache() -> None:
    _code_cache.clear()
    _loop_keys.clear()
    _key_loop.clear()
    obs.set_gauge("jit.code_cache_size", 0)


def code_cache_stats() -> dict:
    return dict(_stats, entries=len(_code_cache),
                limit=code_cache_limit())


def invalidate_loop(loop_name: str) -> int:
    """Drop every compiled kernel for *loop_name* (guard deopt path)."""
    keys = _loop_keys.pop(loop_name, set())
    dropped = 0
    for key in keys:
        _key_loop.pop(key, None)
        if _code_cache.pop(key, None) is not None:
            dropped += 1
    if dropped:
        _stats["deopts"] += dropped
        obs.inc("vm.specialize_deopt", dropped)
    obs.set_gauge("jit.code_cache_size", len(_code_cache))
    return dropped


def _image_key(image: KernelImage, trips: int) -> tuple:
    """Cache key: transcache digest when the translator attached one,
    else a content digest — plus the facts the digest does not pin
    (trip specialization and the caller-config unit pools)."""
    digest = getattr(image, "digest", None)
    if digest is None:
        from repro.perf.digest import digest_of, loop_digest
        schedule = image.schedule
        digest = digest_of(
            "jit-image", loop_digest(image.loop), schedule.ii,
            sorted(schedule.times.items()),
            schedule.completion_time(image.dfg))
    units = tuple(sorted(image.schedule.units.items()))
    return (digest, trips, units)


def kernel_for(image: KernelImage, trips: int
               ) -> Optional[SpecializedKernel]:
    """The compiled kernel for (image, trips), or None if unsupported."""
    key = _image_key(image, trips)
    if key in _code_cache:
        _stats["hits"] += 1
        _code_cache.move_to_end(key)
        return _code_cache[key]
    started = time.perf_counter()
    try:
        kernel = specialize(image, trips)
        _stats["compiled"] += 1
        obs.inc("translator.units.specialize",
                len(kernel.source.splitlines()))
    except SpecializationUnsupported:
        kernel = None
        _stats["unsupported"] += 1
    except Exception:
        # A codegen crash must never take down the reference path.
        kernel = None
        _stats["unsupported"] += 1
    obs.observe("jit.compile_ms",
                (time.perf_counter() - started) * 1000.0)
    _code_cache[key] = kernel
    _loop_keys.setdefault(image.loop.name, set()).add(key)
    _key_loop[key] = image.loop.name
    _evict_to_limit()
    return kernel


# -- codegen ------------------------------------------------------------------

#: opcode -> expression template over operand expressions a, b, c.
#: Every template is copied verbatim from Interpreter.execute_op so the
#: compiled arithmetic is bit-identical to the reference semantics.
_BINARY = {
    Opcode.ADD: "__w(int({a}) + int({b}))",
    Opcode.SUB: "__w(int({a}) - int({b}))",
    Opcode.MUL: "__w(int({a}) * int({b}))",
    Opcode.MIN: "min(int({a}), int({b}))",
    Opcode.MAX: "max(int({a}), int({b}))",
    Opcode.AND: "__w(__bits(int({a})) & __bits(int({b})))",
    Opcode.OR: "__w(__bits(int({a})) | __bits(int({b})))",
    Opcode.XOR: "__w(__bits(int({a})) ^ __bits(int({b})))",
    Opcode.SHL: "__w(int({a}) << __sh(int({b})))",
    Opcode.SHR: "__w(int({a}) >> __sh(int({b})))",
    Opcode.SHRU: "__w(__bits(int({a})) >> __sh(int({b})))",
    Opcode.CMPEQ: "int({a} == {b})",
    Opcode.CMPNE: "int({a} != {b})",
    Opcode.CMPLT: "int({a} < {b})",
    Opcode.CMPLE: "int({a} <= {b})",
    Opcode.CMPGT: "int({a} > {b})",
    Opcode.CMPGE: "int({a} >= {b})",
    Opcode.FADD: "float({a}) + float({b})",
    Opcode.FSUB: "float({a}) - float({b})",
    Opcode.FMUL: "float({a}) * float({b})",
    Opcode.FMIN: "min(float({a}), float({b}))",
    Opcode.FMAX: "max(float({a}), float({b}))",
    Opcode.FCMPLT: "int(float({a}) < float({b}))",
    Opcode.FCMPLE: "int(float({a}) <= float({b}))",
    Opcode.FCMPEQ: "int(float({a}) == float({b}))",
}

_UNARY = {
    Opcode.NEG: "__w(-int({a}))",
    Opcode.ABS: "__w(abs(int({a})))",
    Opcode.NOT: "__w(~int({a}))",
    Opcode.MOV: "{a}",
    Opcode.LDI: "{a}",
    Opcode.FNEG: "-float({a})",
    Opcode.FABS: "abs(float({a}))",
    Opcode.ITOF: "float(int({a}))",
    Opcode.FTOI: "__w(int(float({a})))",
}

_HELPERS = {"__w": wrap64, "__sh": _shift_amount, "__bits": _as_bits,
            "__tdiv": _trunc_div, "__trem": _trunc_rem}


def _value_expr(op: Operation, operands: list[str]) -> str:
    """The result expression for a pure value op (no memory, no CCA)."""
    oc = op.opcode
    if oc in _BINARY:
        return _BINARY[oc].format(a=operands[0], b=operands[1])
    if oc in _UNARY:
        return _UNARY[oc].format(a=operands[0])
    if oc is Opcode.DIV:
        return (f"(0 if int({operands[1]}) == 0 else "
                f"__w(__tdiv(int({operands[0]}), int({operands[1]}))))")
    if oc is Opcode.REM:
        return (f"(0 if int({operands[1]}) == 0 else "
                f"__w(__trem(int({operands[0]}), int({operands[1]}))))")
    if oc is Opcode.FDIV:
        return (f"(0.0 if float({operands[1]}) == 0.0 else "
                f"float({operands[0]}) / float({operands[1]}))")
    if oc is Opcode.SELECT:
        return f"({operands[1]} if {operands[0]} else {operands[2]})"
    raise SpecializationUnsupported(f"opcode {oc} has no template")


class _Codegen:
    """Builds the specialized source for one (image, trips) pair."""

    def __init__(self, image: KernelImage, trips: int) -> None:
        self.image = image
        self.loop = image.loop
        self.schedule = image.schedule
        self.ii = image.schedule.ii
        self.trips = trips
        self.sc = max(1, image.schedule.stage_count)
        #: Register-set slots; one more than the stage count so a
        #: distance-1 read of the oldest in-flight iteration is never
        #: clobbered by the newest one reusing its slot.
        self.s = self.sc + 1
        self.lines: list[str] = []
        self.params: list[Reg] = []
        self._param_index: dict[Reg, int] = {}
        self.required: set[Reg] = set()
        self._temp = 0
        # Mirror of _DataflowResolver's producer map: nearest preceding
        # in-body def (distance 0), else the final def (distance 1).
        self._producer: dict[tuple[int, Reg], tuple[int, int]] = {}
        self._index = {op.opid: i for i, op in enumerate(self.loop.body)}
        self._by_id = {op.opid: op for op in self.loop.body}
        last_def: dict[Reg, int] = {}
        final_def: dict[Reg, int] = {}
        for op in self.loop.body:
            for d in op.dests:
                final_def[d] = op.opid
        for index, op in enumerate(self.loop.body):
            for reg in set(op.src_regs()):
                if reg in last_def:
                    self._producer[(index, reg)] = (last_def[reg], 0)
                elif reg in final_def:
                    self._producer[(index, reg)] = (final_def[reg], 1)
            for d in op.dests:
                last_def[d] = op.opid
        # Memory ops need an affine stream pattern; the unscheduled
        # address/control slice is eliminated on the strength of it.
        self._patterns = {}
        for op in self.loop.body:
            if op.is_memory:
                pattern = image.streams.patterns.get(op.opid)
                if pattern is None:
                    raise SpecializationUnsupported(
                        f"op{op.opid}: no affine stream pattern")
                self._patterns[op.opid] = pattern

    # -- small helpers ----------------------------------------------------

    def _live_in(self, reg: Reg) -> str:
        self.required.add(reg)
        if reg not in self._param_index:
            self._param_index[reg] = len(self.params)
            self.params.append(reg)
        return f"L{self._param_index[reg]}"

    def _var(self, opid: int, reg: Reg, slot: int) -> str:
        op = self._by_id[opid]
        try:
            ri = op.dests.index(reg)
        except ValueError:
            raise SpecializationUnsupported(
                f"op{opid}: producer does not define {reg}")
        return f"v{opid}_{ri}_{slot}"

    def _resolve(self, position: int, reg: Reg, k: Optional[int],
                 slot_phase: Optional[int] = None) -> str:
        """Expression for *reg* read at body *position*, iteration *k*.

        ``k`` is the concrete iteration in unrolled regions; in the
        steady-state template ``k`` is None and ``slot_phase`` is the
        static ``k mod S`` of the reading instance.
        """
        producer = self._producer.get((position, reg))
        if producer is None:
            return self._live_in(reg)
        opid, distance = producer
        if opid not in self.schedule.times:
            # Offloadable (eliminated) producer: the partition guarantees
            # such values feed only addresses and the branch, so a value
            # read landing here is a shape we do not reproduce.
            raise SpecializationUnsupported(
                f"op{opid}: value read of an unscheduled producer")
        if k is not None:
            source = k - distance
            if source < 0:
                return self._live_in(reg)
            return self._var(opid, reg, source % self.s)
        return self._var(opid, reg, (slot_phase - distance) % self.s)

    def _operand(self, position: int, operand, k: Optional[int],
                 slot_phase: Optional[int] = None) -> str:
        if isinstance(operand, Imm):
            return repr(operand.value)
        return self._resolve(position, operand, k, slot_phase)

    def _addr(self, op: Operation, k: Optional[int],
              steady_offset: Optional[int] = None) -> str:
        """Address expression: stream base plus folded stride offsets."""
        pattern = self._patterns[op.opid]
        if k is not None:
            off = pattern.stride * k
            return f"b{op.opid} + {off}" if off else f"b{op.opid}"
        off = pattern.stride * steady_offset
        return f"a{op.opid} + {off}" if off else f"a{op.opid}"

    # -- per-instance emission -------------------------------------------

    def _emit_instance(self, op: Operation, k: Optional[int],
                       slot_phase: Optional[int] = None,
                       steady_offset: Optional[int] = None,
                       indent: str = "    ") -> None:
        """Emit op's iteration-*k* instance (or the steady template)."""
        position = self._index[op.opid]
        oc = op.opcode
        if oc in (Opcode.BR, Opcode.JUMP):
            return
        if oc in (Opcode.CALL, Opcode.BRL):
            raise SpecializationUnsupported(f"op{op.opid}: {oc} traps")
        phase = k % self.s if k is not None else slot_phase
        pred = (None if op.predicate is None else
                self._resolve(position, op.predicate, k, slot_phase))

        def dest_var(ri: int) -> str:
            return f"v{op.opid}_{ri}_{phase}"

        def prior(reg: Reg) -> str:
            # Squashed predicated op: the executor copies the value the
            # register would resolve to *as if read at this position*.
            return self._resolve(position, reg, k, slot_phase)

        if oc in (Opcode.STORE, Opcode.FSTORE):
            addr = self._addr(op, k, steady_offset)
            val = self._operand(position, op.srcs[2], k, slot_phase)
            if pred is None:
                self.lines.append(f"{indent}__cells[{addr}] = {val}")
            else:
                self.lines.append(
                    f"{indent}if {pred}: __cells[{addr}] = {val}")
            for ri, d in enumerate(op.dests):  # stores define nothing
                self.lines.append(f"{indent}{dest_var(ri)} = {prior(d)}")
            return
        if oc in (Opcode.LOAD, Opcode.FLOAD):
            if not op.dests:
                raise SpecializationUnsupported(
                    f"op{op.opid}: load without destination")
            addr = self._addr(op, k, steady_offset)
            expr = f"__cells.get({addr}, 0)"
            if pred is not None:
                expr = f"({expr} if {pred} else {prior(op.dests[0])})"
            self.lines.append(f"{indent}{dest_var(0)} = {expr}")
            for ri in range(1, len(op.dests)):
                self.lines.append(
                    f"{indent}{dest_var(ri)} = {prior(op.dests[ri])}")
            return
        if oc is Opcode.CCA_OP:
            self._emit_compound(op, k, slot_phase, pred, indent)
            return
        # Pure value op.
        operands = [self._operand(position, s, k, slot_phase)
                    for s in op.srcs]
        expr = _value_expr(op, operands)
        if not op.dests:
            return  # result discarded, no side effects
        if pred is not None:
            expr = f"({expr} if {pred} else {prior(op.dests[0])})"
        self.lines.append(f"{indent}{dest_var(0)} = {expr}")
        for ri in range(1, len(op.dests)):
            self.lines.append(
                f"{indent}{dest_var(ri)} = {prior(op.dests[ri])}")

    def _emit_compound(self, op: Operation, k: Optional[int],
                       slot_phase: Optional[int], pred: Optional[str],
                       indent: str) -> None:
        """CCA compound: inner ops over a compile-time binding map."""
        position = self._index[op.opid]
        phase = k % self.s if k is not None else slot_phase
        binding: dict[Reg, str] = {}
        for reg in set(op.src_regs()):
            binding[reg] = self._resolve(position, reg, k, slot_phase)
        body: list[str] = []
        inner_indent = indent + ("    " if pred is not None else "")
        for inner in op.inner:
            if inner.opcode is Opcode.CCA_OP or inner.is_memory:
                raise SpecializationUnsupported(
                    f"op{op.opid}: unsupported inner op {inner.opcode}")
            ipred = None
            if inner.predicate is not None:
                if inner.predicate not in binding:
                    continue  # regs.get(pred, 0) == 0: statically squashed
                ipred = binding[inner.predicate]
            operands = []
            for s in inner.srcs:
                if isinstance(s, Imm):
                    operands.append(repr(s.value))
                elif s in binding:
                    operands.append(binding[s])
                else:
                    raise SpecializationUnsupported(
                        f"op{op.opid}: inner read of unbound {s}")
            expr = _value_expr(inner, operands)
            if not inner.dests:
                continue
            dest = inner.dests[0]
            if ipred is not None:
                if dest not in binding:
                    raise SpecializationUnsupported(
                        f"op{op.opid}: predicated inner def of unbound "
                        f"{dest}")
                expr = f"({expr} if {ipred} else {binding[dest]})"
            name = f"c{op.opid}_{self._temp}"
            self._temp += 1
            body.append(f"{inner_indent}{name} = {expr}")
            binding[dest] = name
        publishes = []
        for ri, d in enumerate(op.dests):
            value = binding.get(d)
            if value is None:
                value = self._resolve(position, d, k, slot_phase)
            publishes.append((f"v{op.opid}_{ri}_{phase}", value))
        if pred is None:
            self.lines.extend(body)
            for var, value in publishes:
                self.lines.append(f"{indent}{var} = {value}")
            return
        self.lines.append(f"{indent}if {pred}:")
        self.lines.extend(body)
        for var, value in publishes:
            self.lines.append(f"{inner_indent}{var} = {value}")
        self.lines.append(f"{indent}else:")
        for ri, d in enumerate(op.dests):
            fallback = self._resolve(position, d, k, slot_phase)
            self.lines.append(
                f"{inner_indent}v{op.opid}_{ri}_{phase} = {fallback}")

    # -- window scheduling -------------------------------------------------

    def _window_ops(self, j: int) -> list[tuple[int, int, Operation]]:
        """Scheduled instances of window *j*: (cycle, k, op), in the
        executor's (absolute cycle, iteration, position) order."""
        out = []
        for op in self.loop.body:
            t = self.schedule.times.get(op.opid)
            if t is None:
                continue
            s, cyc = divmod(t, self.ii)
            k = j - s
            if 0 <= k < self.trips:
                out.append(((cyc, k, self._index[op.opid]), k, op))
        out.sort(key=lambda e: e[0])
        return [(e[0][0], e[1], e[2]) for e in out]

    def _steady_template(self) -> list[tuple[int, int, Operation]]:
        """(cycle, stage, op) for one full steady window, in order."""
        out = []
        for op in self.loop.body:
            t = self.schedule.times.get(op.opid)
            if t is None:
                continue
            s, cyc = divmod(t, self.ii)
            out.append(((cyc, -s, self._index[op.opid]), s, op))
        out.sort(key=lambda e: e[0])
        return [(e[0][0], e[1], e[2]) for e in out]

    # -- whole-function generation ----------------------------------------

    def generate(self) -> tuple[str, list[Reg], list[Reg]]:
        trips, sc, s = self.trips, self.sc, self.s
        total = trips + sc - 1
        body = self.lines
        # Stream bases (placeholders are patched in after the body is
        # generated, once the live-in parameter list is final).
        prelude_mark = len(body)

        ramp_end = min(sc, total)           # windows [0, ramp_end)
        steady_lo, steady_hi = sc, trips    # windows [sc, trips)
        for j in range(ramp_end):
            body.append(f"    # window {j}")
            for _cyc, k, op in self._window_ops(j):
                self._emit_instance(op, k=k)
        if steady_hi > steady_lo:
            template = self._steady_template()
            n_steady = steady_hi - steady_lo
            n_full, rem = divmod(n_steady, s)
            steady_ops = {op.opid for _c, _s, op in template
                          if op.is_memory}
            if n_full:
                for opid in sorted(steady_ops):
                    op = self._by_id[opid]
                    stride = self._patterns[opid].stride
                    t = self.schedule.times[opid]
                    first_k = sc - t // self.ii
                    off = stride * first_k
                    init = f"b{opid} + {off}" if off else f"b{opid}"
                    body.append(f"    a{opid} = {init}")
                body.append(f"    for _ in range({n_full}):")
                for r in range(s):
                    body.append(f"        # steady phase {r}")
                    for _cyc, stage, op in template:
                        phase = (sc + r - stage) % s
                        self._emit_instance(
                            op, k=None, slot_phase=phase,
                            steady_offset=r, indent="        ")
                for opid in sorted(steady_ops):
                    stride = self._patterns[opid].stride
                    body.append(f"        a{opid} += {stride * s}")
            # Remainder windows keep static iterations: their slot
            # phases (sc + r - stage) mod S are independent of n_full.
            for r in range(rem):
                j = steady_lo + n_full * s + r
                body.append(f"    # window {j} (steady remainder)")
                for _cyc, k, op in self._window_ops(j):
                    self._emit_instance(op, k=k)
        for j in range(max(sc, trips), total):
            body.append(f"    # window {j} (epilogue)")
            for _cyc, k, op in self._window_ops(j):
                self._emit_instance(op, k=k)

        # Live-outs: the textually last producer's final-iteration value.
        out_regs: list[Reg] = []
        returns: list[str] = []
        for reg in self.loop.live_outs:
            producer = None
            for op in self.loop.body:
                if reg in op.dests:
                    producer = op.opid
            if producer is None:
                continue  # live-in passthrough, handled by the wrapper
            if producer not in self.schedule.times:
                raise SpecializationUnsupported(
                    f"live-out {reg} produced by unscheduled op{producer}")
            if reg in out_regs:
                continue
            out_regs.append(reg)
            returns.append(self._var(producer, reg, (trips - 1) % s))
        body.append(f"    return ({', '.join(returns)}{',' if returns else ''})")

        # Stream-base prelude, now that the parameter list is final.
        prelude: list[str] = []
        emitted_bases: set[int] = set()
        for op in self.loop.body:
            if op.opid in self._patterns and op.opid not in emitted_bases:
                emitted_bases.add(op.opid)
                pattern = self._patterns[op.opid]
                terms = [str(pattern.base.const)]
                for (space, name), coeff in pattern.base.terms:
                    param = self._live_in(Reg(name, space))
                    terms.append(f"{coeff} * int({param})" if coeff != 1
                                 else f"int({param})")
                prelude.append(f"    b{op.opid} = " + " + ".join(terms))
        params = ", ".join(f"L{i}" for i in range(len(self.params)))
        header = [f"def __specialized(__cells{', ' if params else ''}"
                  f"{params}):"]
        source = "\n".join(header + body[:prelude_mark] + prelude
                           + body[prelude_mark:]) + "\n"
        return source, list(self.params), out_regs


def _closed_form_facts(image: KernelImage, trips: int
                       ) -> tuple[int, int, dict[str, float]]:
    """Cycles, max inflight and utilization, exactly as the event
    executor computes them (term for term, so float division over the
    same integers yields bit-identical values)."""
    schedule = image.schedule
    ii = schedule.ii
    times = schedule.times
    if times:
        mx = max(t + image.dfg.latency(opid) for opid, t in times.items())
        last_completion = (trips - 1) * ii + mx
        span = max(times.values()) - min(times.values())
        max_inflight = min(trips, span // ii + 1)
    else:
        last_completion = 0
        max_inflight = 0
    cycles = max(last_completion,
                 (trips - 1) * ii + schedule.completion_time(image.dfg))
    # busy counts in the executor's first-occurrence order: each op's
    # first event is its k=0 instance at absolute cycle t.
    index = {op.opid: i for i, op in enumerate(image.loop.body)}
    scheduled = sorted(
        (op for op in image.loop.body if op.opid in times),
        key=lambda op: (times[op.opid], index[op.opid]))
    busy: dict[str, int] = {}
    for op in scheduled:
        resource = sched_resource(op)
        busy[resource] = busy.get(resource, 0) + trips
    units = schedule.units
    utilization: dict[str, float] = {}
    for resource, count in busy.items():
        capacity = units.get(resource, 0) * ii * trips
        if capacity:
            utilization[resource] = count / capacity
    return cycles, max_inflight, utilization


def specialize(image: KernelImage, trips: int) -> SpecializedKernel:
    """Compile *image* at trip count *trips* into one Python function.

    Raises :class:`SpecializationUnsupported` for shapes the generated
    code cannot reproduce bit-identically (the caller falls back to the
    reference executors).
    """
    if trips <= 0:
        raise SpecializationUnsupported("non-positive trip count")
    loop = image.loop
    if loop.annotations.get("while_loop"):
        raise SpecializationUnsupported("while loop: trips are speculative")
    gen = _Codegen(image, trips)
    source, params, out_regs = gen.generate()
    namespace = dict(_HELPERS)
    code = compile(source, f"<specialized {loop.name}>", "exec")
    exec(code, namespace)
    fn = namespace["__specialized"]
    cycles, max_inflight, utilization = _closed_form_facts(image, trips)
    # Stream bases are required live-ins too (resolve_pattern raises on
    # a missing one); collect load-stream fan-in for the closed-form
    # FIFO occupancy of the vm.run_loop tier.
    required = frozenset(gen.required)
    seen: dict[tuple, int] = {}
    load_stream_ops: dict[int, int] = {}
    n_mem_ops = 0
    for op in loop.body:
        if not op.is_memory:
            continue
        n_mem_ops += 1
        pattern = gen._patterns[op.opid]
        key = pattern.key()
        if key not in seen:
            seen[key] = len(seen)
        if op.is_load:
            sid = seen[key]
            load_stream_ops[sid] = load_stream_ops.get(sid, 0) + 1
    return SpecializedKernel(
        loop_name=loop.name, source=source, fn=fn, trips=trips,
        params=tuple(params), out_regs=tuple(out_regs),
        required=required, cycles=cycles, max_inflight=max_inflight,
        utilization=utilization, n_mem_ops=n_mem_ops,
        load_stream_ops=load_stream_ops)


# -- tier dispatch ------------------------------------------------------------

def execute_pipelined(image: KernelImage, memory: Memory,
                      live_in_values: Mapping[Reg, Value],
                      trip_count: Optional[int] = None,
                      fault_hook=None) -> OverlappedRun:
    """Tier-aware drop-in for :func:`execute_overlapped`.

    At engine level >= 2 (and with no fault hook — injection is an
    event-level seam only the event executor honours) the specialized
    kernel runs instead of the event simulation; every unsupported or
    failing case falls back to the reference executor, which reports
    faults identically.
    """
    from repro import perf
    trips = image.loop.trip_count if trip_count is None else trip_count
    if (perf.engine_level() < 2 or fault_hook is not None or trips <= 0):
        return execute_overlapped(image, memory, live_in_values,
                                  trip_count, fault_hook)
    kernel = kernel_for(image, trips)
    if kernel is None or not kernel.required <= set(live_in_values):
        return execute_overlapped(image, memory, live_in_values,
                                  trip_count, fault_hook)
    try:
        live_outs = kernel.run(memory, live_in_values)
    except AcceleratorFault:
        raise
    except Exception:
        # Generated-code failure: permanent deopt for this loop, then
        # the reference executor decides what the real outcome is.
        invalidate_loop(image.loop.name)
        return execute_overlapped(image, memory, live_in_values,
                                  trip_count, fault_hook)
    for reg in image.loop.live_outs:
        if reg not in live_outs and reg in live_in_values:
            producer = any(reg in op.dests for op in image.loop.body)
            if not producer:
                live_outs[reg] = live_in_values[reg]
    if _test_corruption is not None:
        live_outs = _test_corruption(image.loop.name, dict(live_outs))
    obs.inc("vm.specialized")
    return OverlappedRun(iterations=trips, cycles=kernel.cycles,
                         live_outs=live_outs,
                         max_inflight_iterations=kernel.max_inflight,
                         utilization=dict(kernel.utilization))


def invoke_specialized(accelerator, image: KernelImage, memory: Memory,
                       live_in_values: Mapping[Reg, Value],
                       trip_count: Optional[int] = None
                       ) -> Optional[AcceleratorRun]:
    """Specialized stand-in for ``LoopAccelerator.invoke``.

    Returns None when the image (or this trip count) is not specialized
    — the caller must then take the reference ``invoke`` path.  The
    accounting facts (register-file writes, address checks, FIFO
    occupancy, kernel/overhead cycles) are closed forms of the same
    quantities the iteration-by-iteration machine measures.
    """
    from repro import perf
    if perf.engine_level() < 2:
        return None
    if accelerator.admits(image) is not None:
        return None  # reference invoke raises the identical fault
    loop = image.loop
    trips = loop.trip_count if trip_count is None else trip_count
    if trips <= 0:
        return None
    kernel = kernel_for(image, trips)
    if kernel is None or not kernel.required <= set(live_in_values):
        return None
    try:
        live_outs = kernel.run(memory, live_in_values)
    except AcceleratorFault:
        raise
    except Exception:
        invalidate_loop(loop.name)
        return None
    accelerator.invocations += 1
    int_writes = 0
    fp_writes = 0
    config = accelerator.config
    for reg, phys in image.registers.mapping.items():
        if reg in live_in_values:
            if reg.space == "fp":
                accelerator.fp_regs.write(
                    min(phys, config.num_fp_regs - 1), live_in_values[reg])
                fp_writes += 1
            else:
                accelerator.int_regs.write(
                    min(phys, config.num_int_regs - 1), live_in_values[reg])
                int_writes += 1
    for reg in loop.live_outs:
        if reg not in live_outs and reg in live_in_values:
            live_outs[reg] = live_in_values[reg]
    if _test_corruption is not None:
        live_outs = _test_corruption(loop.name, dict(live_outs))
    obs.inc("vm.specialized")
    kernel_cycles = image.schedule.kernel_cycles(trips, image.dfg)
    overhead = (2 * config.bus_latency + int_writes + fp_writes
                + len(loop.live_outs))
    fifo_max = {sid: min(count * trips, 8)
                for sid, count in kernel.load_stream_ops.items()}
    return AcceleratorRun(
        iterations=trips, kernel_cycles=kernel_cycles,
        overhead_cycles=overhead, live_outs=live_outs,
        fifo_max_occupancy=fifo_max,
        addresses_checked=kernel.n_mem_ops * trips)

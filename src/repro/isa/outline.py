"""Procedural abstraction of CCA subgraphs (Figure 9(b), literally).

"Statically a compiler can identify this subgraph and insert a
branch-and-link instruction to a new function containing those ops.
Then, the dynamic translator can recognize these simple function calls
and attempt to map the instructions onto whatever CCAs are available in
the LA.  If a statically identified subgraph cannot be executed as a
single unit on available CCAs, the ops can still be executed
independently."

:func:`outline_cca` rewrites the loop body so each identified subgraph
becomes a ``BRL`` to an outlined mini-function (the transformation shown
between Figure 9(a) and 9(b)); :func:`expand_brl` is what the VM does on
arrival — splice the callee back inline and remember the grouping as a
subgraph hint.  ``expand(outline(loop))`` is semantically the identity,
and the recovered hints drive the cheap static-CCA translation path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cca.model import CCAConfig, DEFAULT_CCA
from repro.ir.dfg import build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation
from repro.analysis.partition import partition_loop
from repro.cca.mapper import map_cca

BRL_PREFIX = "cca_fn_"


@dataclass
class OutlinedLoop:
    """A loop whose CCA subgraphs are hidden behind BRL calls.

    Attributes:
        loop: The rewritten body (BRL ops in place of the subgraphs).
        functions: Callee name -> the outlined ops, in dataflow order.
            Parameters and results are communicated through the original
            registers, exactly like the paper's figure (the callee reads
            and writes the caller's registers; there is no ABI).
    """

    loop: Loop
    functions: dict[str, list[Operation]] = field(default_factory=dict)


def outline_cca(loop: Loop, cca: CCAConfig = DEFAULT_CCA) -> OutlinedLoop:
    """Statically identify CCA subgraphs and outline them behind BRLs."""
    dfg = build_dfg(loop)
    part = partition_loop(loop, dfg)
    mapping = map_cca(loop, dfg, config=cca, candidate_opids=part.compute)
    if not mapping.subgraphs:
        return OutlinedLoop(loop=loop.rebuild(), functions={})

    functions: dict[str, list[Operation]] = {}
    body: list[Operation] = []
    ids = itertools.count(max(op.opid for op in loop.body) + 1)
    # mapping.loop already has the compounds placed correctly; replace
    # each compound with a BRL and move its inner ops to a function.
    for op in mapping.loop.body:
        if op.opcode is not Opcode.CCA_OP:
            body.append(op.copy())
            continue
        name = f"{BRL_PREFIX}{len(functions)}"
        functions[name] = [inner.copy() for inner in op.inner]
        brl = Operation(next(ids), Opcode.BRL,
                        dests=list(op.dests), srcs=list(op.srcs),
                        comment=f"call {name}")
        body.append(brl)
    outlined = loop.rebuild(body=body)
    return OutlinedLoop(loop=outlined, functions=functions)


def expand_brl(outlined: OutlinedLoop) -> tuple[Loop, list[list[int]]]:
    """The VM's arrival-time inverse: inline every BRL callee.

    Returns the flat baseline-ISA loop plus the recovered subgraph op
    groups (ready to feed the static-CCA translation path, or to be
    ignored entirely on a machine with no CCA).
    """
    body: list[Operation] = []
    subgraphs: list[list[int]] = []
    for op in outlined.loop.body:
        if op.opcode is Opcode.BRL and op.comment.startswith("call "):
            name = op.comment[len("call "):]
            callee = outlined.functions.get(name)
            if callee is None:
                raise KeyError(f"BRL target {name!r} has no outlined body")
            group = []
            for inner in callee:
                body.append(inner.copy())
                group.append(inner.opid)
            subgraphs.append(group)
        else:
            body.append(op.copy())
    loop = outlined.loop.rebuild(body=body)
    return loop, subgraphs

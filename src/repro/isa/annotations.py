"""Static, binary-compatible annotations (Figure 9).

The hybrid static/dynamic strategy hoists the two most expensive
translation phases into the static compiler and encodes their results
in the binary without breaking compatibility:

* **CCA identification** (Figure 9(b)) — each identified subgraph is
  outlined behind a ``BRL`` (branch-and-link); a VM that has a CCA maps
  the callee's ops onto it, a VM that does not simply executes them
  independently.  "This property means static CCA identification does
  not tie the binary to one particular CCA (or even any CCA at all)."
* **Priority calculation** (Figure 9(c)) — one number per operation in
  a data section directly before the loop; the VM recovers each op's
  priority with a single subtraction from its PC.

We carry both in ``loop.annotations`` (the semantic content of the data
section); :mod:`repro.isa.encoding` provides the byte-level layout.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dependence import refine_memory_edges
from repro.analysis.partition import partition_loop
from repro.analysis.streams import analyze_streams
from repro.cca.mapper import map_cca
from repro.cca.model import CCAConfig, DEFAULT_CCA
from repro.ir.dfg import build_dfg
from repro.ir.loop import Loop
from repro.ir.opcodes import DEFAULT_LATENCY, LatencyModel
from repro.scheduler.mii import compute_mii
from repro.scheduler.priority import height_priority, swing_priority

STATIC_CCA_KEY = "static_cca"            # list[list[int]] of subgraph opids
STATIC_PRIORITY_KEY = "static_priority"  # dict[int, int]: opid -> rank
STATIC_MII_KEY = "static_mii"            # {"res": int, "rec": int}


def _refined_dfg(loop: Loop, latency_model=DEFAULT_LATENCY):
    """DFG with exact affine memory dependences — the same graph the
    dynamic translator schedules against, so static encodings match."""
    dfg = build_dfg(loop, latency_model)
    streams = analyze_streams(loop)
    if streams.ok:
        dfg = refine_memory_edges(loop, dfg, streams)
    return dfg


def annotate_static_cca(loop: Loop,
                        cca: CCAConfig = DEFAULT_CCA) -> Loop:
    """Statically identify CCA subgraphs and record them.

    The loop body itself is unchanged (binary compatible); only the
    annotation — standing in for the procedural abstraction of
    Figure 9(b) — is added.
    """
    dfg = _refined_dfg(loop)
    part = partition_loop(loop, dfg)
    mapping = map_cca(loop, dfg, config=cca, candidate_opids=part.compute)
    subgraphs = [list(sg.opids) for sg in mapping.subgraphs.values()]
    annotated = loop.rebuild()
    annotated.annotations[STATIC_CCA_KEY] = subgraphs
    return annotated


def annotate_static_priority(loop: Loop,
                             cca: Optional[CCAConfig] = DEFAULT_CCA,
                             latency_model: LatencyModel = DEFAULT_LATENCY,
                             kind: str = "swing") -> Loop:
    """Statically compute scheduling priority and record per-op ranks.

    Priorities are computed on the CCA-collapsed form (the form the
    dynamic scheduler will see) at II = RecMII with canonical latencies.
    Recurrence criticality "is largely architecture independent"
    (footnote 3), which is what makes this encoding portable.  Each
    collapsed subgraph's rank is recorded on all of its member ops, so a
    VM whose CCA differs — or is absent — still has a rank for every op
    it ends up scheduling.
    """
    working = loop
    member_of: dict[int, int] = {}
    if cca is not None:
        dfg = _refined_dfg(loop, latency_model)
        part = partition_loop(loop, dfg)
        mapping = map_cca(loop, dfg, config=cca, candidate_opids=part.compute)
        working = mapping.loop
        for compound_id, sg in mapping.subgraphs.items():
            for opid in sg.opids:
                member_of[opid] = compound_id

    dfg_w = _refined_dfg(working, latency_model)
    part_w = partition_loop(working, dfg_w)
    # Priority is computed at the recurrence-constrained II with generic
    # unit counts (resources are architecture specific; recurrences are
    # not).
    from repro.scheduler.mii import compute_rec_mii
    rec_mii = compute_rec_mii(dfg_w, part_w.compute)
    if kind == "swing":
        priority = swing_priority(dfg_w, part_w.compute, rec_mii)
    else:
        priority = height_priority(dfg_w, part_w.compute, rec_mii)

    ranks: dict[int, int] = {}
    for opid, rank in priority.rank.items():
        members = [m for m, c in member_of.items() if c == opid]
        if members:
            for m in members:
                ranks[m] = rank
        else:
            ranks[opid] = rank
    # Non-compute ops (control/address) get rank -1: handled by
    # dedicated hardware, never scheduled.
    for op in loop.body:
        ranks.setdefault(op.opid, -1)

    annotated = loop.rebuild(annotations=dict(loop.annotations))
    annotated.annotations[STATIC_PRIORITY_KEY] = ranks
    return annotated


def annotate_static_mii(loop: Loop, units: dict[str, int],
                        cca: Optional[CCAConfig] = DEFAULT_CCA,
                        latency_model: LatencyModel = DEFAULT_LATENCY) -> Loop:
    """Statically compute and record ResMII and RecMII.

    The paper *considers* this encoding and rejects it (Section 4.2,
    "Static ResMII and RecMII Calculation"): the two loads it saves are
    cheap, but ResMII "is highly architecture dependent; an incorrect
    value would either produce a poor schedule (if ResMII was
    unnecessarily high), or cause scheduling to take much longer (if
    ResMII was too low)".  Implemented here so that tradeoff can be
    measured — see ``repro.experiments.static_tradeoffs``.

    Args:
        units: The resource pools of the accelerator the *compiler*
            targeted — the value baked into the binary.
    """
    working = loop
    if cca is not None:
        dfg = _refined_dfg(loop, latency_model)
        part = partition_loop(loop, dfg)
        working = map_cca(loop, dfg, config=cca,
                          candidate_opids=part.compute).loop
    dfg_w = _refined_dfg(working, latency_model)
    part_w = partition_loop(working, dfg_w)
    from repro.scheduler.mii import compute_rec_mii, compute_res_mii
    res_mii, _per = compute_res_mii(dfg_w, part_w.compute, units)
    rec_mii = compute_rec_mii(dfg_w, part_w.compute)
    annotated = loop.rebuild(annotations=dict(loop.annotations))
    annotated.annotations[STATIC_MII_KEY] = {"res": res_mii, "rec": rec_mii}
    return annotated


def annotate_for_veal(loop: Loop, cca: CCAConfig = DEFAULT_CCA,
                      latency_model: LatencyModel = DEFAULT_LATENCY) -> Loop:
    """Full static preparation: CCA identification + priority encoding."""
    step1 = annotate_static_cca(loop, cca)
    step2 = annotate_static_priority(step1, cca, latency_model)
    step2.annotations.update(step1.annotations)
    return step2

"""Byte-level loop encoding with Figure 9 data sections.

VEAL's whole premise is that the loop lives in the binary in the
*baseline* instruction set, with optional data sections carrying the
statically computed hints:

* Figure 9(c): "placing a single number for each operation in a data
  section before the loop itself ... if a loop has 8 instructions, then
  an operation's priority value is located at PC - 8*instruction_size".
* Figure 9(b): CCA subgraphs outlined behind BRL markers; here encoded
  as a subgraph table in the same data section (the semantic content is
  identical, and :func:`decode_loop` reconstructs the annotations the
  translator consumes).

The format is self-contained and versioned; ``decode(encode(loop))``
round-trips exactly, which the encoding tests verify over the whole
workload suite.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.ir.loop import ArrayDecl, Loop
from repro.ir.opcodes import Opcode
from repro.ir.ops import Imm, Operand, Operation, Reg
from repro.isa.annotations import STATIC_CCA_KEY, STATIC_PRIORITY_KEY

MAGIC = b"VEAL"
VERSION = 2

_OPCODE_INDEX = {op: n for n, op in enumerate(Opcode)}
_OPCODE_BY_INDEX = {n: op for n, op in enumerate(Opcode)}

# Operand tags.
_TAG_INT_REG = 0
_TAG_FP_REG = 1
_TAG_IMM_INT = 2
_TAG_IMM_FLOAT = 3


class EncodingError(ValueError):
    """Malformed VEAL binary image."""


class _Writer:
    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf.append(v & 0xFF)

    def u32(self, v: int) -> None:
        self.buf += struct.pack("<I", v & 0xFFFFFFFF)

    def i64(self, v: int) -> None:
        self.buf += struct.pack("<q", v)

    def f64(self, v: float) -> None:
        self.buf += struct.pack("<d", v)

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.buf += raw


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise EncodingError("truncated image")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def text(self) -> str:
        return self._take(self.u32()).decode("utf-8")


def _write_operand(w: _Writer, operand: Operand) -> None:
    if isinstance(operand, Reg):
        w.u8(_TAG_FP_REG if operand.space == "fp" else _TAG_INT_REG)
        w.text(operand.name)
    elif isinstance(operand.value, float):
        w.u8(_TAG_IMM_FLOAT)
        w.f64(operand.value)
    else:
        w.u8(_TAG_IMM_INT)
        w.i64(operand.value)


def _read_operand(r: _Reader) -> Operand:
    tag = r.u8()
    if tag == _TAG_INT_REG:
        return Reg(r.text(), "int")
    if tag == _TAG_FP_REG:
        return Reg(r.text(), "fp")
    if tag == _TAG_IMM_INT:
        return Imm(r.i64())
    if tag == _TAG_IMM_FLOAT:
        return Imm(r.f64())
    raise EncodingError(f"bad operand tag {tag}")


def _write_op(w: _Writer, op: Operation) -> None:
    w.u32(op.opid)
    w.u8(_OPCODE_INDEX[op.opcode])
    w.u8(len(op.dests))
    for d in op.dests:
        _write_operand(w, d)
    w.u8(len(op.srcs))
    for s in op.srcs:
        _write_operand(w, s)
    w.u8(1 if op.predicate is not None else 0)
    if op.predicate is not None:
        _write_operand(w, op.predicate)
    w.text(op.comment)


def _read_op(r: _Reader) -> Operation:
    opid = r.u32()
    opcode = _OPCODE_BY_INDEX.get(r.u8())
    if opcode is None:
        raise EncodingError("unknown opcode index")
    dests = []
    for _ in range(r.u8()):
        operand = _read_operand(r)
        if not isinstance(operand, Reg):
            raise EncodingError("destination must be a register")
        dests.append(operand)
    srcs = [_read_operand(r) for _ in range(r.u8())]
    predicate: Optional[Reg] = None
    if r.u8():
        operand = _read_operand(r)
        if not isinstance(operand, Reg):
            raise EncodingError("predicate must be a register")
        predicate = operand
    comment = r.text()
    return Operation(opid=opid, opcode=opcode, dests=dests, srcs=srcs,
                     predicate=predicate, comment=comment)


def encode_loop(loop: Loop) -> bytes:
    """Serialise *loop* (including Figure 9 data sections) to bytes."""
    w = _Writer()
    w.buf += MAGIC
    w.u8(VERSION)
    w.text(loop.name)
    w.u32(loop.trip_count)
    w.u32(loop.invocations)

    # Data section 1: static priority words (Figure 9(c)).
    ranks: dict[int, int] = loop.annotations.get(STATIC_PRIORITY_KEY, {})
    w.u32(len(ranks))
    for opid in sorted(ranks):
        w.u32(opid)
        w.i64(ranks[opid])

    # Data section 2: static CCA subgraph table (Figure 9(b)).
    subgraphs: list[list[int]] = loop.annotations.get(STATIC_CCA_KEY, [])
    w.u32(len(subgraphs))
    for sg in subgraphs:
        w.u32(len(sg))
        for opid in sg:
            w.u32(opid)

    # The loop body in the baseline instruction set.
    w.u32(len(loop.body))
    for op in loop.body:
        if op.opcode is Opcode.CCA_OP:
            raise EncodingError(
                "CCA compounds are VM-internal; encode the baseline form")
        _write_op(w, op)

    w.u8(len(loop.live_ins))
    for reg in loop.live_ins:
        _write_operand(w, reg)
    w.u8(len(loop.live_outs))
    for reg in loop.live_outs:
        _write_operand(w, reg)
    w.u8(len(loop.arrays))
    for arr in loop.arrays:
        w.text(arr.name)
        w.u32(arr.length)
        w.u8(1 if arr.is_float else 0)
        w.text(arr.may_alias or "")
    return bytes(w.buf)


def decode_loop(data: bytes) -> Loop:
    """Reconstruct a loop (and its annotations) from bytes."""
    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise EncodingError("bad magic")
    version = r.u8()
    if version != VERSION:
        raise EncodingError(f"unsupported version {version}")
    name = r.text()
    trip_count = r.u32()
    invocations = r.u32()

    ranks: dict[int, int] = {}
    for _ in range(r.u32()):
        opid = r.u32()
        ranks[opid] = r.i64()
    subgraphs: list[list[int]] = []
    for _ in range(r.u32()):
        subgraphs.append([r.u32() for _ in range(r.u32())])

    body = [_read_op(r) for _ in range(r.u32())]

    def read_reg() -> Reg:
        operand = _read_operand(r)
        if not isinstance(operand, Reg):
            raise EncodingError("expected register")
        return operand

    live_ins = [read_reg() for _ in range(r.u8())]
    live_outs = [read_reg() for _ in range(r.u8())]
    arrays = []
    for _ in range(r.u8()):
        arr_name = r.text()
        length = r.u32()
        is_float = bool(r.u8())
        alias = r.text()
        arrays.append(ArrayDecl(arr_name, length, is_float, alias or None))

    loop = Loop(name=name, body=body, live_ins=live_ins,
                live_outs=live_outs, arrays=arrays, trip_count=trip_count,
                invocations=invocations)
    if ranks:
        loop.annotations[STATIC_PRIORITY_KEY] = ranks
    if subgraphs:
        loop.annotations[STATIC_CCA_KEY] = subgraphs
    return loop

"""Binary interface: loop encoding + static annotations (Figure 9)."""

from repro.isa.annotations import (
    STATIC_CCA_KEY,
    STATIC_MII_KEY,
    STATIC_PRIORITY_KEY,
    annotate_for_veal,
    annotate_static_cca,
    annotate_static_mii,
    annotate_static_priority,
)
from repro.isa.encoding import EncodingError, decode_loop, encode_loop
from repro.isa.outline import OutlinedLoop, expand_brl, outline_cca

__all__ = [
    "EncodingError", "OutlinedLoop", "STATIC_CCA_KEY", "STATIC_MII_KEY",
    "STATIC_PRIORITY_KEY", "annotate_for_veal", "annotate_static_cca",
    "annotate_static_mii", "annotate_static_priority", "decode_loop",
    "encode_loop", "expand_brl", "outline_cca",
]

"""Defense-in-depth around the experiment engine (PR 2 infrastructure).

VEAL's contract is that the VM can *always* fall back to the baseline
path when anything between translation and execution misbehaves.  PR 1
delivered that for translated kernels; this package extends it to the
infrastructure the performance engine put on the hot path:

* :mod:`repro.resilience.integrity` — a framed, checksummed, versioned
  on-disk format with atomic temp-file+rename writes and a quarantine
  protocol, used by :mod:`repro.perf.transcache` so a truncated or
  corrupted cache entry is moved aside and rebuilt, never trusted;
* :mod:`repro.resilience.supervisor` — worker supervision for
  :mod:`repro.perf.parallel`: completion heartbeats with a stall
  deadline, crashed-pool detection, bounded retry with exponential
  backoff, salvage of completed partial results, and automatic
  degradation to the serial path — all preserving deterministic merge
  order (results are merged by item index, never completion order);
* :mod:`repro.resilience.incidents` — structured JSONL incident records
  sharing the :mod:`repro.errors` kind-tag taxonomy, so guard deopts
  and infrastructure faults aggregate on one observability surface;
* :mod:`repro.resilience.chaos` — seeded chaos campaigns
  (``python -m repro chaos``) that regenerate the Figure 3/4 sweeps
  while :mod:`repro.faults.infra` injectors kill workers, corrupt cache
  entries and fail I/O, then assert the figure text stayed
  byte-identical, no temp files leaked, and every fault is accounted
  for in the incident log.
"""

from repro.resilience.incidents import (
    Incident,
    IncidentLog,
    incident_log,
    record_incident,
    reset_incident_log,
)
from repro.resilience.integrity import (
    FORMAT_VERSION,
    QUARANTINE_DIRNAME,
    frame,
    quarantine,
    unframe,
    write_atomic,
)
from repro.resilience.supervisor import SupervisorConfig, supervised_map

__all__ = [
    "FORMAT_VERSION",
    "Incident",
    "IncidentLog",
    "QUARANTINE_DIRNAME",
    "SupervisorConfig",
    "frame",
    "incident_log",
    "quarantine",
    "record_incident",
    "reset_incident_log",
    "supervised_map",
    "unframe",
    "write_atomic",
]

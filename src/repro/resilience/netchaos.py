"""Seeded chaos campaigns against the service's network transport.

``python -m repro netchaos`` is the wire-level sibling of
``python -m repro chaos``: where that campaign attacks the machinery
that regenerates figures (worker kills, cache corruption, I/O errors),
this one attacks the *transport* between a :class:`~repro.service.
client.LoopClient` and a :class:`~repro.service.net.NetServer` — reset
connections mid-frame, corrupted and truncated frames, stalled and
dropped responses, a slow-loris client that trickles half a header and
goes silent — and proves the transport layer's guarantees:

* **Zero client-visible corruption**: every request driven through the
  faulty wire returns exactly the result the serial in-process path
  computes (the per-frame checksum turns corruption into reconnects,
  never wrong data), and a figure rendered through the faulty
  transport is byte-identical to the direct rendering;
* **Full accounting**: every wire fault that fired maps to an incident
  record carrying its token, and every client recovery is a
  ``net-retry`` record — nothing is silently swallowed;
* **No debris**: zero orphaned connections after the server stops and
  zero orphaned cache temp files in the campaign workdir.

Campaigns are deterministic in their seed (which faults, which
requests, the client's backoff jitter); the kernel of the proof is the
result comparison, same as every other campaign in this repo.
"""

from __future__ import annotations

import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro import perf
from repro.errors import ReproError
from repro.faults import infra
from repro.resilience import integrity
from repro.resilience.incidents import incident_log, read_jsonl
from repro.service import wire
from repro.service.client import LoopClient, RetryPolicy
from repro.service.loadgen import request_corpus
from repro.service.net import NetConfig, NetServer
from repro.service.server import ServiceConfig
from repro.vm.translator import translate_loop

#: Fault families the campaign must exercise at least once each.
FAMILIES = tuple(mode.value for mode in infra.NET_FAULT_MODES) \
    + ("slow-client",)


@dataclass(frozen=True)
class NetChaosConfig:
    """One seeded network chaos campaign."""

    #: Minimum wire faults to inject across all families.
    faults: int = 20
    seed: int = 2008
    #: Figure rendered through the faulty transport and compared
    #: byte-for-byte against the direct serial rendering.
    figure: str = "fig2"
    #: Campaign scratch space (cache dir, sentinels, incident log);
    #: a fresh temp directory when None.
    workdir: Optional[str] = None
    #: Server slow-loris guard for this campaign (short, so the
    #: slow-client scenario costs seconds, not the production minute).
    idle_timeout_s: float = 2.0
    #: Per-attempt response wait for the campaign client; stalls and
    #: drops must outlast it to actually force a retry.
    attempt_timeout_s: float = 0.6


@dataclass
class NetChaosScenario:
    """One faulted request driven through the transport."""

    index: int
    family: str
    target: str
    #: Faults that actually fired (claimed their sentinel).
    injected: int
    #: Fired faults with a token-matched incident record.
    accounted: int
    #: The client saw exactly the serial path's result.
    correct: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.correct and self.accounted == self.injected


@dataclass
class NetChaosReport:
    config: NetChaosConfig
    scenarios: list[NetChaosScenario] = field(default_factory=list)
    #: Figure through the faulty transport == direct rendering.
    figure_identical: bool = False
    #: Fault-free closing figure through the transport still matches.
    final_figure_identical: bool = False
    orphaned_connections: int = 0
    orphaned_tmp: list[str] = field(default_factory=list)
    client_stats: dict = field(default_factory=dict)
    admission_stats: dict = field(default_factory=dict)
    incident_counts: dict[str, int] = field(default_factory=dict)
    incident_log_path: str = ""

    @property
    def injected(self) -> int:
        return sum(s.injected for s in self.scenarios)

    @property
    def accounted(self) -> int:
        return sum(s.accounted for s in self.scenarios)

    @property
    def by_family(self) -> dict[str, int]:
        table: dict[str, int] = {}
        for s in self.scenarios:
            table[s.family] = table.get(s.family, 0) + s.injected
        return dict(sorted(table.items()))

    @property
    def ok(self) -> bool:
        """Every guarantee held — and enough faults actually fired
        across every family (an empty campaign proves nothing)."""
        return (self.injected >= self.config.faults
                and all(self.by_family.get(f, 0) > 0 for f in FAMILIES)
                and all(s.ok for s in self.scenarios)
                and self.figure_identical
                and self.final_figure_identical
                and self.orphaned_connections == 0
                and not self.orphaned_tmp
                and self.accounted == self.injected)


def _fingerprint(result) -> tuple:
    """The client-visible identity of a translation result."""
    return (result.ok, result.loop_name,
            result.image.schedule.ii if result.ok
            else result.failure_kind,
            result.meter.total_units())


def _token_accounted(records: list[dict], family: str,
                     token: str) -> int:
    return min(1, sum(
        1 for r in records
        if r.get("kind") == family
        and r.get("details", {}).get("token") == token))


def run_netchaos(config: NetChaosConfig = NetChaosConfig(),
                 progress: Optional[Callable[[str], None]] = None
                 ) -> NetChaosReport:
    """Drive one campaign to its fault target; restores all global
    engine state (caches, sinks, injection arming) on the way out."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    from repro import api

    workdir = config.workdir or tempfile.mkdtemp(prefix="repro-netchaos-")
    cache_dir = os.path.join(workdir, "cache")
    state_dir = os.path.join(workdir, "state")
    log_path = os.path.join(workdir, "incidents.jsonl")
    os.makedirs(state_dir, exist_ok=True)

    report = NetChaosReport(config=config, incident_log_path=log_path)
    cache = perf.translation_cache()
    previous_disk = cache.disk_dir
    server: Optional[NetServer] = None
    client: Optional[LoopClient] = None
    try:
        perf.clear_caches()
        cache.attach_disk(cache_dir, strict=True)
        incident_log().configure_sink(log_path)

        note(f"baseline {config.figure} (direct serial path)")
        baseline_figure = api.run_figure(config.figure)

        server = NetServer(NetConfig(
            idle_timeout_s=config.idle_timeout_s,
            service=ServiceConfig(workers=1))).start()
        client = LoopClient(
            server.host, server.port, session="netchaos",
            seed=config.seed, deadline_s=30.0,
            retry=RetryPolicy(
                attempts=6, base_delay_s=0.01, max_delay_s=0.1,
                attempt_timeout_s=config.attempt_timeout_s))

        corpus = request_corpus()
        rng = np.random.default_rng(config.seed)
        net_families = [mode.value for mode in infra.NET_FAULT_MODES]
        seen = len(read_jsonl(log_path))
        scenario_index = 0
        max_scenarios = max(len(FAMILIES), config.faults) * 4
        while (report.injected < config.faults
               or any(report.by_family.get(f, 0) == 0 for f in FAMILIES)) \
                and scenario_index < max_scenarios:
            family = FAMILIES[scenario_index % len(FAMILIES)]
            if (family == "slow-client"
                    and report.by_family.get("slow-client", 0) > 0):
                # One proven slow-loris cutoff is enough; it costs a
                # full idle timeout per scenario.
                family = net_families[scenario_index % len(net_families)]
            note(f"scenario {scenario_index}: {family} "
                 f"({report.injected}/{config.faults} faults)")
            if family == "slow-client":
                scenario = _slowloris_scenario(
                    scenario_index, server, config.idle_timeout_s,
                    log_path, seen)
            else:
                scenario = _wire_fault_scenario(
                    scenario_index, family, client, corpus, state_dir,
                    rng, log_path, seen, config)
            seen = len(read_jsonl(log_path))
            report.scenarios.append(scenario)
            scenario_index += 1

        # The tentpole assertion: a figure rendered *through* the
        # faulty transport — a wire fault armed against its response —
        # must be byte-identical to the direct serial rendering.
        note(f"{config.figure} via client under an injected wire fault")
        spec = infra.InfraFaultSpec(
            mode=infra.InfraFaultMode.NET_TRUNCATE,
            token="net-truncate-figure")
        infra.arm([spec], state_dir)
        try:
            faulted_text = client.run_figure(
                config.figure, deadline_s=1800.0,
                attempt_timeout_s=900.0)
        finally:
            infra.disarm()
        fired = 1 if infra.fired(state_dir, spec.token) else 0
        records = read_jsonl(log_path)[seen:]
        report.figure_identical = faulted_text == baseline_figure
        report.scenarios.append(NetChaosScenario(
            index=scenario_index, family="net-truncate",
            target=f"figure:{config.figure}", injected=fired,
            accounted=_token_accounted(records, "net-truncate",
                                       spec.token),
            correct=report.figure_identical,
            detail="figure response truncated mid-frame; client "
                   "reconnected and resubmitted"))
        seen = len(read_jsonl(log_path))

        note(f"{config.figure} via client, fault-free closing pass")
        report.final_figure_identical = client.run_figure(
            config.figure, deadline_s=1800.0,
            attempt_timeout_s=900.0) == baseline_figure

        report.client_stats = client.stats.as_dict()
        client.close()
        client = None
        stats = server.stop()
        report.admission_stats = dict(stats.admission)
        report.orphaned_connections = server.active_connections()
        server = None

        report.orphaned_tmp = integrity.orphaned_temp_files(cache_dir)
        report.incident_counts = {}
        for record in read_jsonl(log_path):
            kind = record.get("kind", "?")
            report.incident_counts[kind] = \
                report.incident_counts.get(kind, 0) + 1
        return report
    finally:
        infra.disarm()
        if client is not None:
            client.close()
        if server is not None:
            server.stop()
        incident_log().configure_sink(None)
        cache.detach_disk()
        perf.clear_caches()
        if previous_disk is not None:
            cache.attach_disk(previous_disk)


def _wire_fault_scenario(index: int, family: str, client: LoopClient,
                         corpus: list[tuple], state_dir: str, rng,
                         log_path: str, seen: int,
                         config: NetChaosConfig) -> NetChaosScenario:
    """Arm one wire fault against the next response, then drive a
    translate request through it and compare against the serial path."""
    loop, accel, options = corpus[int(rng.integers(0, len(corpus)))]
    mode = infra.InfraFaultMode(family)
    token = f"{family}-{index}"
    # Stalls must outlast the client's per-attempt wait or they are
    # absorbed invisibly instead of forcing a retry.
    delay = (config.attempt_timeout_s * 2.5
             if mode is infra.InfraFaultMode.NET_STALL else None)
    expected = translate_loop(loop, accel, options)
    spec = infra.InfraFaultSpec(mode=mode, token=token, delay_s=delay)
    infra.arm([spec], state_dir)
    detail = ""
    try:
        result = client.translate(loop, accel, options, deadline_s=30.0)
        correct = _fingerprint(result) == _fingerprint(expected)
        if not correct:
            detail = (f"result diverged: {_fingerprint(result)} != "
                      f"{_fingerprint(expected)}")
    except ReproError as exc:
        correct = False
        detail = f"client gave up: {type(exc).__name__}: {exc}"
    finally:
        infra.disarm()
    fired = 1 if infra.fired(state_dir, token) else 0
    records = read_jsonl(log_path)[seen:]
    return NetChaosScenario(
        index=index, family=family, target=loop.name,
        injected=fired,
        accounted=_token_accounted(records, family, token),
        correct=correct,
        detail=detail or f"{token} on {loop.name}"
                         f"{'' if fired else ' (never fired)'}")


def _slowloris_scenario(index: int, server: NetServer,
                        idle_timeout_s: float, log_path: str,
                        seen: int) -> NetChaosScenario:
    """Trickle half a frame header, then go silent; the server must
    cut the connection off at its idle timeout, not hold it forever."""
    closed = False
    started = time.monotonic()
    try:
        with socket.create_connection(
                (server.host, server.port),
                timeout=idle_timeout_s + 10.0) as sock:
            sock.sendall(wire.MAGIC[:2])  # half a magic, then nothing
            sock.settimeout(idle_timeout_s + 10.0)
            try:
                closed = sock.recv(64) == b""
            except socket.timeout:
                closed = False  # server never cut us off: guard failed
            except (ConnectionResetError, OSError):
                closed = True   # an abortive close still counts
    except OSError:
        closed = False
    waited = time.monotonic() - started
    records = read_jsonl(log_path)[seen:]
    accounted = min(1, sum(1 for r in records
                           if r.get("kind") == "slow-client"))
    injected = 1 if closed else 0
    return NetChaosScenario(
        index=index, family="slow-client", target="raw-socket",
        injected=injected, accounted=accounted if closed else 0,
        correct=closed,
        detail=(f"server cut the stalled connection after {waited:.1f}s"
                if closed else
                f"connection NOT closed within {waited:.1f}s"))


def format_netchaos(report: NetChaosReport) -> str:
    """Human-readable campaign summary (CLI output)."""
    config = report.config
    lines = [
        f"Network chaos campaign (seed {config.seed}, "
        f"figure {config.figure})",
        "=" * 66,
        f"  scenarios run         : {len(report.scenarios)}",
        f"  wire faults injected  : {report.injected} "
        f"(target {config.faults})",
        f"  faults accounted      : {report.accounted}/{report.injected}"
        f" in {report.incident_log_path}",
        f"  orphaned connections  : {report.orphaned_connections}",
        f"  orphaned temp files   : {len(report.orphaned_tmp)}",
        f"  figure under faults   : "
        f"{'byte-identical' if report.figure_identical else 'DIVERGED'}",
        f"  figure after campaign : "
        f"{'byte-identical' if report.final_figure_identical else 'DIVERGED'}",
        "",
        "  injected by family:",
    ]
    for family in FAMILIES:
        lines.append(f"    {family:18s} {report.by_family.get(family, 0):4d}")
    lines.append("")
    lines.append("  client recovery:")
    for key, value in sorted(report.client_stats.items()):
        lines.append(f"    {key:18s} {value:4d}")
    lines.append("")
    lines.append("  incident log by kind:")
    for kind, count in sorted(report.incident_counts.items()):
        lines.append(f"    {kind:18s} {count:4d}")
    failed = [s for s in report.scenarios if not s.ok]
    for s in failed:
        lines.append(f"  FAILED: scenario {s.index} ({s.family} on "
                     f"{s.target}): {s.detail}")
    lines.append("")
    if report.ok:
        verdict = ("PASS — zero client-visible corruption, zero "
                   "orphans, every wire fault accounted for")
    elif report.injected < config.faults:
        verdict = (f"FAIL — only {report.injected}/{config.faults} "
                   f"wire faults fired")
    else:
        verdict = "FAIL — transport guarantee violated"
    lines.append("  verdict: " + verdict)
    return "\n".join(lines)

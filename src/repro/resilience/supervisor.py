"""Worker supervision: deadlines, crash recovery, serial degradation.

``supervised_map`` is the fault-tolerant core under
:func:`repro.perf.parallel.parallel_map`.  It owns a pool of worker
processes and enforces, in order of escalation:

1. **Completion heartbeats** — the pool is healthy while futures keep
   completing.  If no task finishes for ``stall_timeout_s`` the pool is
   declared hung (a worker stuck in an uninterruptible state looks
   exactly like this from the parent) and abandoned.
2. **Crash detection** — a worker killed mid-task (OOM killer, SIGKILL,
   segfault) breaks the pool; every completed result is salvaged and
   only the unfinished items are retried.
3. **Bounded retry with exponential backoff** — a fresh pool is built
   after ``backoff_s * 2**(attempt-1)``; after ``max_pool_retries``
   rebuilds the pool is considered unsalvageable.
4. **Serial degradation** — remaining items run in the parent process,
   the same code path as ``--jobs 1``.  Results stay deterministic
   because they are merged by item *index*, never completion order.

Task-level exceptions (the function itself raised) are different in
kind: they are deterministic, so retrying is pointless — the original
exception is re-raised immediately as a typed
:class:`~repro.errors.WorkerTaskError` with the originating item
attached.  Every recovery action is recorded in the incident log
(:mod:`repro.resilience.incidents`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import obs
from repro.errors import WorkerTaskError
from repro.resilience.incidents import record_incident


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs (env-overridable for campaigns and CI)."""

    #: Pool declared hung after this long with no task completing.
    stall_timeout_s: float = 120.0
    #: Fresh pools built after a crash/stall before degrading to serial.
    max_pool_retries: int = 2
    #: First-retry backoff; doubles per subsequent retry.
    backoff_s: float = 0.25
    #: Heartbeat poll interval.
    poll_s: float = 0.05

    @staticmethod
    def from_env() -> "SupervisorConfig":
        def _float(name: str, default: float) -> float:
            try:
                return float(os.environ.get(name, default))
            except ValueError:
                return default

        return SupervisorConfig(
            stall_timeout_s=_float("REPRO_STALL_TIMEOUT_S", 120.0),
            max_pool_retries=int(_float("REPRO_POOL_RETRIES", 2)),
            backoff_s=_float("REPRO_POOL_BACKOFF_S", 0.25))


def describe_item(label_of: Optional[Callable[[int], str]],
                  index: int) -> str:
    if label_of is None:
        return f"item {index}"
    try:
        return label_of(index)
    except Exception:
        return f"item {index}"


def raise_task_error(exc: BaseException, index: int,
                     label_of: Optional[Callable[[int], str]]):
    """Re-raise a task's exception in typed form with its item attached.

    Every fan-out level contributes its own context — a benchmark
    failing inside sweep point x=8 chains ``"IEx[x=8]"`` around
    ``"benchmark epic"`` — so the ``__cause__`` chain reads like a
    stack of sweep coordinates down to the real exception, whose own
    ``kind`` survives on the innermost link.
    """
    point = describe_item(label_of, index)
    kind = getattr(exc, "kind", type(exc).__name__)
    raise WorkerTaskError(
        f"sweep task failed at {point}: [{kind}] {exc}",
        item_index=index, point=point) from exc


def _run_serial(task: Callable[[int], object], indices: Sequence[int],
                results: list, done: list,
                label_of: Optional[Callable[[int], str]]) -> None:
    for index in indices:
        try:
            results[index] = task(index)
        except Exception as exc:
            raise_task_error(exc, index, label_of)
        done[index] = True


def supervised_map(task: Callable[[int], object], count: int, jobs: int,
                   config: Optional[SupervisorConfig] = None,
                   initializer: Optional[Callable[[], None]] = None,
                   label_of: Optional[Callable[[int], str]] = None
                   ) -> list:
    """Run ``task(i)`` for ``i in range(count)`` under supervision.

    ``task`` must be picklable (the caller pre-flights the payload);
    the returned list is indexed by item, whatever order tasks finished
    or how many pools it took.
    """
    config = config or SupervisorConfig.from_env()
    results: list = [None] * count
    done = [False] * count
    attempt = 0
    while True:
        pending = [i for i in range(count) if not done[i]]
        if not pending:
            return results
        if attempt > config.max_pool_retries:
            record_incident(
                "retry-exhausted", "parallel",
                f"pool retry budget ({config.max_pool_retries}) spent; "
                f"degrading {len(pending)} remaining items to serial",
                remaining=len(pending), attempts=attempt)
            record_incident(
                "serial-fallback", "parallel",
                f"running {len(pending)} items serially after pool "
                f"failures", remaining=len(pending))
            _run_serial(task, pending, results, done, label_of)
            return results
        if attempt > 0:
            time.sleep(config.backoff_s * (2 ** (attempt - 1)))
        verdict = _one_pool_pass(task, pending, jobs, config, initializer,
                                 results, done, label_of)
        if verdict == "pool-unavailable":
            record_incident(
                "serial-fallback", "parallel",
                f"process pool unavailable; running {len(pending)} items "
                f"serially", remaining=len(pending))
            _run_serial(task, pending, results, done, label_of)
            return results
        if verdict == "ok":
            continue  # loop exits via the not-pending check
        # crashed / stalled: salvage what completed, retry the rest.
        attempt += 1
        remaining = sum(1 for i in range(count) if not done[i])
        salvaged = len(pending) - remaining
        obs.inc("supervisor.pool_retries")
        obs.inc("supervisor.items_salvaged", salvaged)
        kind = "worker-lost" if verdict == "crashed" else "worker-timeout"
        record_incident(
            kind, "parallel",
            f"pool {verdict} on attempt {attempt} "
            f"({salvaged}/{len(pending)} results salvaged); "
            f"retrying {remaining} items",
            attempt=attempt, salvaged=salvaged, remaining=remaining,
            backoff_s=config.backoff_s * (2 ** (attempt - 1))
            if attempt <= config.max_pool_retries else None)


def _one_pool_pass(task, pending, jobs, config, initializer,
                   results, done, label_of) -> str:
    """One pool lifetime; returns ``ok`` / ``crashed`` / ``stalled`` /
    ``pool-unavailable``.  Completed results are written into
    *results* as they arrive, so a later verdict loses nothing."""
    try:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), initializer=initializer)
    except (OSError, ValueError, ImportError):
        return "pool-unavailable"
    futures = {}
    verdict = "ok"
    try:
        try:
            for index in pending:
                futures[pool.submit(task, index)] = index
        except (OSError, RuntimeError, BrokenProcessPool):
            if not futures:
                return "pool-unavailable"
            verdict = "crashed"
        not_done = set(futures)
        last_progress = time.monotonic()
        while not_done and verdict == "ok":
            finished, not_done = wait(not_done, timeout=config.poll_s)
            if finished:
                last_progress = time.monotonic()
            elif (time.monotonic() - last_progress
                    > config.stall_timeout_s):
                verdict = "stalled"
                break
            for future in finished:
                index = futures[future]
                try:
                    results[index] = future.result()
                except (BrokenProcessPool, CancelledError):
                    verdict = "crashed"
                    break
                except Exception as exc:
                    raise_task_error(exc, index, label_of)
                done[index] = True
        return verdict
    finally:
        # A broken/hung pool must not block the parent: abandon it.
        pool.shutdown(wait=(verdict == "ok"), cancel_futures=True)
